"""Continuous query-log streaming: the firehose ingest mode.

:class:`QueryLogStreamer` tails a JSONL query log into a
:class:`~repro.session.LineageSession` in micro-batches:

* each batch consumes only the bytes appended since the last poll
  (:class:`~repro.sources.query_log.LogTailer` — torn final lines are left
  for the next poll, rotation/truncation restarts clean);
* statements are keyed by **content hash** before they reach the engine:
  a re-executed statement whose text is unchanged is absorbed at the cost
  of one hash — most production log traffic never touches the parser;
* genuinely changed definitions flow through ``session.refresh(changes)``,
  so only the dirty set (the changed names plus their transitive DAG
  dependents) is re-extracted per batch;
* after every applied batch the **resume offset** is persisted atomically
  (``<log>.offset.json``: byte offset + line count + prefix digest).  A
  restarted streamer verifies the digest by replaying the consumed prefix,
  re-applies it as *one* bootstrap batch (warm-spliced from the store),
  and continues from the offset.  A log that was rotated or truncated
  fails the digest check and is re-ingested from scratch;
* when a name's definition changes, the **superseded** canonical content
  hashes are flagged in the store
  (:meth:`~repro.store.LineageStore.mark_superseded`), making the stale
  records preferential eviction candidates for ``store.gc(max_entries=…)``
  — optionally run in-line every ``compact_every`` batches.

Crash-safety contract: the offset is written *after* the refresh that
consumed the batch, so a crash between the two replays the batch on
resume.  Replays are idempotent — re-applying a statement whose hash is
already current is a no-op, and the store absorbs re-extractions as warm
hits — so the end-state graph after SIGKILL + resume is byte-identical to
an uninterrupted run (and to a one-shot batch load of the same log).
"""

import json
import os
import time

from .sources.base import content_hash
from .sources.query_log import LogTailer, _timestamp_key

#: schema version of the persisted offset file.
OFFSET_VERSION = 1


def default_offset_path(log_path):
    """Where the resume offset lives by default: next to the log."""
    return os.fspath(log_path) + ".offset.json"


def _load_offset(path):
    """The persisted offset payload, or ``None`` (tolerant: a missing,
    unreadable or version-skewed file just means a cold start)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            return None
        if int(payload.get("version", -1)) != OFFSET_VERSION:
            return None
        return payload
    except (OSError, ValueError, TypeError):
        return None


class QueryLogStreamer:
    """Stream a JSONL query log into a session, micro-batch by micro-batch.

    Parameters
    ----------
    session:
        The :class:`~repro.session.LineageSession` to feed.  A sourceless
        session is the natural shape (the first batch bootstraps it); a
        session with prior state is refreshed incrementally.
    log:
        Path of the JSONL log file to tail.
    batch_statements:
        Maximum raw log lines consumed per :meth:`step` (default 1000).
    offset_path:
        Where to persist the resume offset (default:
        ``<log>.offset.json``).
    resume:
        Load and verify the persisted offset on the first step, replaying
        the consumed prefix as one bootstrap batch (default True).
    compact_max_entries:
        When set (and the session has a store), run
        ``store.gc(max_entries=compact_max_entries)`` every
        ``compact_every`` applied batches — superseded-definition records
        are evicted ahead of the LRU cutoff.
    compact_every:
        Batch interval of the in-line compaction (default 50).
    """

    def __init__(self, session, log, *, batch_statements=1000,
                 offset_path=None, resume=True,
                 compact_max_entries=None, compact_every=50):
        path = os.fspath(log)
        if not isinstance(path, str) or "\n" in path:
            raise ValueError("stream_log() takes a log file path, not inline text")
        self.session = session
        self.log_path = path
        self.batch_statements = max(1, int(batch_statements))
        self.offset_path = (
            os.fspath(offset_path) if offset_path is not None
            else default_offset_path(path)
        )
        self.resume_enabled = bool(resume)
        self.compact_max_entries = compact_max_entries
        self.compact_every = max(1, int(compact_every))
        self._tailer = LogTailer(path)
        #: name -> (ts_key, line_number, sql) of the chronologically-latest
        #: definition seen (ties broken by line number)
        self._winner_ts = {}
        #: name -> (line_number, sql) of the file-order-latest definition
        self._winner_line = {}
        #: False once any record's timestamp failed to parse — from then on
        #: (and retroactively) file order decides, matching parse_query_log
        self._all_keyed = True
        #: name -> source-text hash currently applied to the session
        self._applied = {}
        self._saved_offset = None   # byte_offset last persisted
        self._resume_checked = False
        # counters (exposed via .stats)
        self.batches = 0
        self.statements = 0
        self.applied_statements = 0
        self.skipped_statements = 0
        self.resets = 0
        self.resumed_lines = 0
        self.compactions = 0
        self.superseded_marked = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    @property
    def result(self):
        """The session's current extraction result (``None`` before any)."""
        return self.session.result

    @property
    def stats(self):
        elapsed = max(time.monotonic() - self._started, 1e-9)
        total = self.statements
        return {
            "batches": self.batches,
            "statements": total,
            "applied": self.applied_statements,
            "skipped": self.skipped_statements,
            "warm_hit_ratio": round(self.skipped_statements / total, 4) if total else 0.0,
            "resets": self.resets,
            "resumed_lines": self.resumed_lines,
            "compactions": self.compactions,
            "superseded_marked": self.superseded_marked,
            "elapsed_s": round(elapsed, 3),
            "stmt_per_s": round(total / elapsed, 1),
            "byte_offset": self._tailer.position.byte_offset,
            "line_count": self._tailer.position.line_count,
            "offset_path": self.offset_path,
        }

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _maybe_resume(self):
        if self._resume_checked:
            return
        self._resume_checked = True
        if not self.resume_enabled:
            return
        payload = _load_offset(self.offset_path)
        if payload is None:
            return
        try:
            byte_offset = int(payload["byte_offset"])
            line_count = int(payload["line_count"])
            prefix_sha256 = str(payload["prefix_sha256"])
        except (KeyError, TypeError, ValueError):
            return
        if byte_offset <= 0 or line_count <= 0:
            return
        # verify by replay: re-read exactly the consumed prefix and compare
        # the running digest — a rotated/truncated/rewritten log cannot
        # match, and the replayed records double as the bootstrap corpus
        records, _reset = self._tailer.read(max_lines=line_count)
        position = self._tailer.position
        if (
            position.byte_offset != byte_offset
            or position.line_count != line_count
            or position.prefix_sha256 != prefix_sha256
        ):
            self._tailer.reset()
            return
        dirty = self._absorb(records)
        changes = self._pending_changes(dirty)
        if changes:
            self._apply(changes)
        self.resumed_lines = line_count
        self._saved_offset = byte_offset

    # ------------------------------------------------------------------
    # Batch mechanics
    # ------------------------------------------------------------------
    def _absorb(self, records):
        """Fold ``records`` into the per-name winner maps; returns the set
        of names whose effective definition may have changed."""
        dirty = set()
        for record in records:
            key = _timestamp_key(record.timestamp)
            if key is None and self._all_keyed:
                # one unparseable timestamp flips the whole log to file
                # order (parse_query_log parity) — every name's effective
                # winner may change, so mark them all dirty
                self._all_keyed = False
                dirty.update(self._winner_line)
                dirty.update(self._applied)
            name = record.name
            self._winner_line[name] = (record.line_number, record.sql)
            if key is not None:
                best = self._winner_ts.get(name)
                if best is None or (key, record.line_number) >= (best[0], best[1]):
                    self._winner_ts[name] = (key, record.line_number, record.sql)
            dirty.add(name)
        return dirty

    def _effective_sql(self, name):
        if self._all_keyed:
            winner = self._winner_ts.get(name)
            if winner is not None:
                return winner[2]
        winner = self._winner_line.get(name)
        return winner[1] if winner is not None else None

    def _pending_changes(self, names):
        """The ``{name: sql-or-None}`` delta the session has not seen yet."""
        changes = {}
        for name in names:
            sql = self._effective_sql(name)
            if sql is None:
                if name in self._applied:
                    changes[name] = None
                continue
            if self._applied.get(name) != content_hash(sql):
                changes[name] = sql
        return changes

    def _apply(self, changes):
        """Refresh the session with ``changes`` and mark superseded hashes."""
        previous = self.session.result
        prev_hashes = dict(previous.source_hashes) if previous is not None else {}
        result = self.session.refresh(changes)
        for name, sql in changes.items():
            if sql is None:
                self._applied.pop(name, None)
            else:
                self._applied[name] = content_hash(sql)
        store = self.session.store
        if store is not None and prev_hashes:
            live = set(result.source_hashes.values())
            superseded = {
                old for name in changes
                for old in (prev_hashes.get(name),)
                if old is not None and old not in live
            }
            if superseded:
                self.superseded_marked += store.mark_superseded(superseded)
        return result

    def _save_offset(self):
        position = self._tailer.position
        if position.byte_offset == self._saved_offset:
            return
        payload = dict(position.to_dict())
        payload["version"] = OFFSET_VERSION
        payload["log"] = os.path.abspath(self.log_path)
        payload["saved_at"] = time.time()
        tmp = self.offset_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.offset_path)
        self._saved_offset = position.byte_offset

    def _maybe_compact(self):
        if self.compact_max_entries is None:
            return
        store = self.session.store
        if store is None:
            return
        if self.batches % self.compact_every == 0:
            store.gc(max_entries=self.compact_max_entries)
            self.compactions += 1

    def step(self, *, consume_tail=False):
        """Consume one micro-batch; returns a per-batch report dict.

        ``consume_tail`` additionally parses a final line without a
        trailing newline (quiescent-log replay; never used while a
        producer may still be appending to that line).  The resume offset
        is persisted *after* the refresh — an interrupted batch replays.
        """
        self._maybe_resume()
        records, reset = self._tailer.read(max_lines=self.batch_statements)
        dirty = set()
        if reset:
            # the log was rotated/truncated: the session must restart
            # clean — every previously applied name is a removal candidate
            # unless the new log (re-)defines it
            self.resets += 1
            dirty.update(self._applied)
            self._winner_ts = {}
            self._winner_line = {}
            self._all_keyed = True
        dirty |= self._absorb(records)
        consumed = len(records)
        tail_consumed = 0
        if consume_tail and not records:
            tail = self._tailer.peek_tail()
            if tail is not None:
                dirty |= self._absorb([tail])
                consumed += 1
                tail_consumed = 1
        changes = self._pending_changes(dirty)
        if changes:
            self._apply(changes)
        self.statements += consumed
        self.applied_statements += len(changes)
        self.skipped_statements += consumed - min(len(changes), consumed)
        if consumed or reset:
            self.batches += 1
        self._save_offset()
        if changes:
            self._maybe_compact()
        return {
            "consumed": consumed,
            "applied": len(changes),
            "reset": reset,
            "tail": tail_consumed,
            "byte_offset": self._tailer.position.byte_offset,
            "line_count": self._tailer.position.line_count,
        }

    def run(self, *, follow=False, poll_interval=0.25, max_batches=None,
            stop=None, on_batch=None):
        """Drive :meth:`step` until the log is drained (or forever).

        ``follow=False`` (default) replays the log to EOF — including a
        final unterminated line — and returns; ``follow=True`` keeps
        polling every ``poll_interval`` seconds until ``stop`` (a
        ``threading.Event``) is set or ``max_batches`` productive batches
        have been consumed.  ``on_batch(report)`` is invoked after every
        productive batch.  Returns :attr:`stats`.
        """
        self._maybe_resume()
        while True:
            if stop is not None and stop.is_set():
                break
            report = self.step(consume_tail=not follow)
            if report["consumed"] or report["reset"]:
                if on_batch is not None:
                    on_batch(report)
                if max_batches is not None and self.batches >= max_batches:
                    break
                # an unterminated final line can never be committed to the
                # offset, so a tail-only batch is the end of the drain —
                # looping again would re-consume the same tail forever
                if not report["tail"]:
                    continue
            if not follow:
                break
            if stop is not None:
                if stop.wait(poll_interval):
                    break
            else:
                time.sleep(poll_interval)
        return self.stats
