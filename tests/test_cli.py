"""Tests for the command-line interface."""

import io
import json
import subprocess
import sys

import pytest

from repro.cli import build_parser, run
from repro.datasets import example1, retail


@pytest.fixture
def example1_file(tmp_path):
    path = tmp_path / "customer.sql"
    path.write_text(example1.QUERY_LOG)
    return str(path)


@pytest.fixture
def catalog_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(retail.BASE_TABLE_DDL)
    return str(path)


def run_cli(*argv):
    buffer = io.StringIO()
    code = run(list(argv), stdout=buffer)
    return code, buffer.getvalue()


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["input.sql"])
        assert args.format == "text"
        assert args.strict is False
        assert args.no_stack is False

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["models/", "--dbt", "--strict", "--no-stack", "--format", "json",
             "--impact", "web.page", "--catalog", "ddl.sql", "--output", "out/"]
        )
        assert args.dbt and args.strict and args.no_stack
        assert args.impact == "web.page"

    def test_invalid_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.sql", "--format", "yaml"])


class TestExecution:
    def test_text_output(self, example1_file):
        code, output = run_cli(example1_file)
        assert code == 0
        assert "webinfo (view)" in output
        assert "wpage <- web.page" in output

    def test_json_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "json")
        assert code == 0
        payload = json.loads(output)
        assert "relations" in payload

    def test_stats_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "stats")
        assert code == 0
        assert "num_views: 3" in output

    def test_dot_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "dot")
        assert output.startswith("digraph")

    def test_html_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "html")
        assert output.startswith("<!DOCTYPE html>")

    def test_impact_analysis(self, example1_file):
        code, output = run_cli(example1_file, "--impact", "web.page")
        assert code == 0
        assert "webinfo.wpage" in output
        assert "impacted tables:  info, webact, webinfo" in output

    def test_upstream_analysis(self, example1_file):
        code, output = run_cli(example1_file, "--upstream", "info.wpage")
        assert "web.page" in output

    def test_output_directory(self, example1_file, tmp_path):
        out_dir = tmp_path / "out"
        code, _ = run_cli(example1_file, "--output", str(out_dir))
        assert (out_dir / "lineagex.json").exists()
        assert (out_dir / "lineagex.html").exists()

    def test_catalog_flag(self, tmp_path, catalog_file):
        sql = tmp_path / "views.sql"
        sql.write_text("CREATE VIEW v AS SELECT * FROM customers")
        code, output = run_cli(str(sql), "--catalog", catalog_file)
        assert code == 0
        assert "email" in output  # star expanded through the catalog schema

    def test_directory_input(self, tmp_path):
        (tmp_path / "a_model.sql").write_text("SELECT t.x FROM t")
        (tmp_path / "b_model.sql").write_text("SELECT u.y FROM u")
        code, output = run_cli(str(tmp_path))
        assert code == 0
        assert "a_model" in output and "b_model" in output

    def test_dbt_mode(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "stg.sql").write_text("SELECT w.page FROM {{ source('raw', 'web') }} w")
        (models / "report.sql").write_text("SELECT s.page FROM {{ ref('stg') }} s")
        code, output = run_cli(str(tmp_path), "--dbt")
        assert code == 0
        assert "report" in output and "raw.web" in output

    def test_strict_mode_propagates(self, tmp_path):
        sql = tmp_path / "ambiguous.sql"
        sql.write_text(
            "CREATE TABLE a (k integer); CREATE TABLE b (k integer);"
            "CREATE VIEW v AS SELECT k FROM a, b"
        )
        from repro.core.errors import AmbiguousColumnError

        with pytest.raises(AmbiguousColumnError):
            run_cli(str(sql), "--strict")

    def test_module_invocation(self, example1_file):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", example1_file, "--format", "stats"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "num_views: 3" in completed.stdout
