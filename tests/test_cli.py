"""Tests for the command-line interface."""

import io
import json
import subprocess
import sys

import pytest

from repro.cli import build_parser, run
from repro.datasets import example1, retail


@pytest.fixture
def example1_file(tmp_path):
    path = tmp_path / "customer.sql"
    path.write_text(example1.QUERY_LOG)
    return str(path)


@pytest.fixture
def catalog_file(tmp_path):
    path = tmp_path / "schema.sql"
    path.write_text(retail.BASE_TABLE_DDL)
    return str(path)


def run_cli(*argv):
    buffer = io.StringIO()
    code = run(list(argv), stdout=buffer)
    return code, buffer.getvalue()


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args(["input.sql"])
        assert args.format == "text"
        assert args.strict is False
        assert args.no_stack is False

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["models/", "--dbt", "--strict", "--no-stack", "--format", "json",
             "--impact", "web.page", "--catalog", "ddl.sql", "--output", "out/"]
        )
        assert args.dbt and args.strict and args.no_stack
        assert args.impact == "web.page"

    def test_invalid_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.sql", "--format", "yaml"])


class TestExecution:
    def test_text_output(self, example1_file):
        code, output = run_cli(example1_file)
        assert code == 0
        assert "webinfo (view)" in output
        assert "wpage <- web.page" in output

    def test_json_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "json")
        assert code == 0
        payload = json.loads(output)
        assert "relations" in payload

    def test_stats_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "stats")
        assert code == 0
        assert "num_views: 3" in output

    def test_dot_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "dot")
        assert output.startswith("digraph")

    def test_html_output(self, example1_file):
        code, output = run_cli(example1_file, "--format", "html")
        assert output.startswith("<!DOCTYPE html>")

    def test_impact_analysis(self, example1_file):
        code, output = run_cli(example1_file, "--impact", "web.page")
        assert code == 0
        assert "webinfo.wpage" in output
        assert "impacted tables:  info, webact, webinfo" in output

    def test_upstream_analysis(self, example1_file):
        code, output = run_cli(example1_file, "--upstream", "info.wpage")
        assert "web.page" in output

    def test_output_directory(self, example1_file, tmp_path):
        out_dir = tmp_path / "out"
        code, _ = run_cli(example1_file, "--output", str(out_dir))
        assert (out_dir / "lineagex.json").exists()
        assert (out_dir / "lineagex.html").exists()

    def test_catalog_flag(self, tmp_path, catalog_file):
        sql = tmp_path / "views.sql"
        sql.write_text("CREATE VIEW v AS SELECT * FROM customers")
        code, output = run_cli(str(sql), "--catalog", catalog_file)
        assert code == 0
        assert "email" in output  # star expanded through the catalog schema

    def test_directory_input(self, tmp_path):
        (tmp_path / "a_model.sql").write_text("SELECT t.x FROM t")
        (tmp_path / "b_model.sql").write_text("SELECT u.y FROM u")
        code, output = run_cli(str(tmp_path))
        assert code == 0
        assert "a_model" in output and "b_model" in output

    def test_dbt_mode(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "stg.sql").write_text("SELECT w.page FROM {{ source('raw', 'web') }} w")
        (models / "report.sql").write_text("SELECT s.page FROM {{ ref('stg') }} s")
        code, output = run_cli(str(tmp_path), "--dbt")
        assert code == 0
        assert "report" in output and "raw.web" in output

    def test_strict_mode_propagates(self, tmp_path):
        sql = tmp_path / "ambiguous.sql"
        sql.write_text(
            "CREATE TABLE a (k integer); CREATE TABLE b (k integer);"
            "CREATE VIEW v AS SELECT k FROM a, b"
        )
        from repro.core.errors import AmbiguousColumnError

        with pytest.raises(AmbiguousColumnError):
            run_cli(str(sql), "--strict")

    def test_module_invocation(self, example1_file):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", example1_file, "--format", "stats"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        assert "num_views: 3" in completed.stdout


class TestWorkersValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.sql", "--workers", "0"])

    def test_negative_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.sql", "--workers", "-3"])

    def test_non_integer_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x.sql", "--workers", "many"])

    def test_valid_workers_accepted(self):
        assert build_parser().parse_args(["x.sql", "--workers", "4"]).workers == 4

    def test_subcommand_workers_validated_too(self, capsys):
        from repro.cli import build_subcommand_parser

        with pytest.raises(SystemExit):
            build_subcommand_parser().parse_args(["extract", "x.sql", "--workers", "0"])
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run(["--version"])
        assert excinfo.value.code == 0
        import repro

        assert repro.__version__ in capsys.readouterr().out


class TestSubcommands:
    def test_extract_text(self, example1_file):
        code, output = run_cli("extract", example1_file)
        assert code == 0
        assert "webinfo (view)" in output

    def test_extract_markdown(self, example1_file):
        code, output = run_cli("extract", example1_file, "--format", "markdown")
        assert code == 0
        assert "## `webinfo` (view)" in output

    def test_extract_csv(self, example1_file):
        code, output = run_cli("extract", example1_file, "--format", "csv")
        assert output.splitlines()[0] == "source,target,kind"

    def test_extract_output_dir(self, example1_file, tmp_path):
        out_dir = tmp_path / "out"
        code, _ = run_cli("extract", example1_file, "--output", str(out_dir))
        assert code == 0
        assert (out_dir / "lineagex.json").exists()

    def test_extract_plan_engine(self, example1_file, tmp_path):
        catalog = tmp_path / "catalog.sql"
        catalog.write_text(
            "CREATE TABLE customers (cid integer, name text, age integer);"
            "CREATE TABLE orders (oid integer, cid integer, amount numeric);"
            "CREATE TABLE web (cid integer, date timestamp, page text, reg boolean);"
        )
        code, output = run_cli(
            "extract", example1_file, "--engine", "plan", "--catalog", str(catalog)
        )
        assert code == 0
        assert "webinfo (view)" in output

    def test_extract_query_log(self, tmp_path):
        log = tmp_path / "queries.jsonl"
        log.write_text(
            json.dumps({"name": "v", "sql": "CREATE VIEW v AS SELECT t.a FROM t"})
        )
        code, output = run_cli("extract", str(log))
        assert code == 0
        assert "v (view)" in output

    def test_impact_subcommand(self, example1_file):
        code, output = run_cli("impact", example1_file, "web.page")
        assert code == 0
        assert "webinfo.wpage" in output

    def test_impact_upstream_direction(self, example1_file):
        code, output = run_cli(
            "impact", example1_file, "info.wpage", "--direction", "upstream"
        )
        assert "web.page" in output

    def test_render_to_file(self, example1_file, tmp_path):
        out = tmp_path / "lineage.dot"
        code, output = run_cli("render", example1_file, "--format", "dot",
                               "--out", str(out))
        assert code == 0
        assert output == ""
        assert out.read_text().startswith("digraph")

    def test_render_list_formats(self):
        code, output = run_cli("render", "--list-formats")
        assert code == 0
        formats = output.split()
        assert "csv" in formats and "markdown" in formats

    def test_refresh_with_edit(self, tmp_path, capsys):
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT t.a FROM t")
        (tmp_path / "w.sql").write_text("CREATE VIEW w AS SELECT u.b FROM u")
        code, output = run_cli(
            "refresh", str(tmp_path),
            "--edit", "v=CREATE VIEW v AS SELECT t.c FROM t",
            "--format", "text",
        )
        assert code == 0
        assert "c <- t.c" in output
        assert "1 reused" in capsys.readouterr().err

    def test_refresh_edit_from_file(self, tmp_path):
        (tmp_path / "models").mkdir()
        (tmp_path / "models" / "v.sql").write_text("CREATE VIEW v AS SELECT t.a FROM t")
        edit = tmp_path / "new_v.sql"
        edit.write_text("CREATE VIEW v AS SELECT t.b FROM t")
        code, output = run_cli(
            "refresh", str(tmp_path / "models"), "--edit", f"v=@{edit}",
            "--format", "text",
        )
        assert code == 0
        assert "b <- t.b" in output

    def test_refresh_edit_removal(self, tmp_path):
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT t.a FROM t")
        (tmp_path / "w.sql").write_text("CREATE VIEW w AS SELECT u.b FROM u")
        code, output = run_cli("refresh", str(tmp_path), "--edit", "v=",
                               "--format", "text")
        assert code == 0
        assert "v (view)" not in output and "w (view)" in output

    def test_refresh_without_edit_on_file_input_errors_cleanly(
        self, example1_file, capsys
    ):
        # a single .sql file cannot be rescanned; expect a clean error,
        # not a traceback
        code, _ = run_cli("refresh", example1_file)
        assert code == 2
        assert "cannot be re-scanned" in capsys.readouterr().err

    def test_refresh_malformed_edit(self, tmp_path):
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT t.a FROM t")
        with pytest.raises(SystemExit):
            run_cli("refresh", str(tmp_path), "--edit", "no-equals-sign")

    def test_unresolved_still_exits_one(self, tmp_path):
        log = tmp_path / "orphan.sql"
        log.write_text("CREATE VIEW v AS SELECT m.x FROM missing m")
        from repro.datasets import retail

        catalog = tmp_path / "schema.sql"
        catalog.write_text(retail.BASE_TABLE_DDL)
        code, _ = run_cli(
            "extract", str(log), "--engine", "plan", "--catalog", str(catalog)
        )
        assert code == 1

    def test_legacy_form_still_works_alongside(self, example1_file):
        legacy_code, legacy_output = run_cli(example1_file, "--format", "stats")
        sub_code, sub_output = run_cli("extract", example1_file, "--format", "stats")
        assert legacy_code == sub_code == 0
        assert legacy_output == sub_output


class TestCacheAndExecutorFlags:
    def test_cache_dir_warm_start(self, example1_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = run_cli("extract", example1_file, "--cache-dir", cache_dir)
        assert code == 0
        code, output = run_cli(
            "extract", example1_file, "--cache-dir", cache_dir, "--format", "stats"
        )
        assert code == 0
        assert "num_reused_store: 3" in output

    def test_warm_and_cold_render_identically(self, example1_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, cold = run_cli(
            "render", example1_file, "--cache-dir", cache_dir, "--format", "csv"
        )
        assert code == 0
        code, warm = run_cli(
            "render", example1_file, "--cache-dir", cache_dir, "--format", "csv"
        )
        assert code == 0
        assert warm == cold

    def test_executor_process(self, example1_file):
        code, output = run_cli(
            "extract", example1_file, "--workers", "2", "--executor", "process"
        )
        assert code == 0
        assert "webinfo (view)" in output

    def test_invalid_executor_rejected(self, example1_file):
        with pytest.raises(SystemExit):
            run_cli("extract", example1_file, "--executor", "fiber")

    def test_legacy_form_accepts_new_flags(self, example1_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, _ = run_cli(example1_file, "--cache-dir", cache_dir)
        assert code == 0
        code, output = run_cli(
            example1_file, "--cache-dir", cache_dir, "--format", "stats"
        )
        assert code == 0
        assert "num_reused_store: 3" in output


class TestCacheSubcommand:
    def _populate(self, example1_file, cache_dir):
        code, _ = run_cli("extract", example1_file, "--cache-dir", cache_dir)
        assert code == 0

    def test_stats(self, example1_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(example1_file, cache_dir)
        code, output = run_cli("cache", "stats", "--cache-dir", cache_dir)
        assert code == 0
        assert "entries: 3" in output
        assert "source_entries: 1" in output

    def test_clear(self, example1_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(example1_file, cache_dir)
        code, output = run_cli("cache", "clear", "--cache-dir", cache_dir)
        assert code == 0
        assert "removed 4 records" in output
        code, output = run_cli("cache", "stats", "--cache-dir", cache_dir)
        assert "entries: 0" in output

    def test_gc_max_entries(self, example1_file, tmp_path):
        cache_dir = str(tmp_path / "cache")
        self._populate(example1_file, cache_dir)
        code, output = run_cli(
            "cache", "gc", "--cache-dir", cache_dir, "--max-entries", "1"
        )
        assert code == 0
        assert "evicted 2 records" in output

    def test_gc_without_criteria_errors(self, example1_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        self._populate(example1_file, cache_dir)
        code, _ = run_cli("cache", "gc", "--cache-dir", cache_dir)
        assert code == 2

    def test_cache_dir_required(self):
        with pytest.raises(SystemExit):
            run_cli("cache", "stats")


class TestStreamSubcommand:
    def _log(self, tmp_path):
        path = tmp_path / "q.jsonl"
        lines = [
            {"name": "base", "sql": "CREATE TABLE base (id INT, v INT)",
             "timestamp": 1},
            {"name": "v1", "sql": "CREATE VIEW v1 AS SELECT id, v FROM base",
             "timestamp": 2},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return str(path)

    def test_stream_drains_log_and_renders(self, tmp_path):
        log = self._log(tmp_path)
        code, output = run_cli("stream", log, "--quiet", "--format", "json")
        assert code == 0
        payload = json.loads(output)
        assert "v1" in payload["relations"]
        # the resume offset was persisted next to the log
        offset = json.loads((tmp_path / "q.jsonl.offset.json").read_text())
        assert offset["line_count"] == 2

    def test_stream_resumes_from_offset(self, tmp_path):
        log = self._log(tmp_path)
        code, _ = run_cli("stream", log, "--quiet", "--format", "json")
        assert code == 0
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"name": "v2", "sql": "CREATE VIEW v2 AS SELECT id FROM v1",
                 "timestamp": 3}) + "\n")
        code, output = run_cli("stream", log, "--quiet", "--format", "json")
        assert code == 0
        assert "v2" in json.loads(output)["relations"]

    def test_stream_missing_file_errors(self, tmp_path):
        code, _ = run_cli("stream", str(tmp_path / "absent.jsonl"), "--quiet")
        assert code == 2

    def test_stream_with_cache_and_compaction(self, tmp_path):
        log = self._log(tmp_path)
        cache_dir = str(tmp_path / "cache")
        code, _ = run_cli(
            "stream", log, "--quiet", "--cache-dir", cache_dir,
            "--compact-max-entries", "10", "--compact-every", "1",
        )
        assert code == 0
