"""Scale-tier additions to the workload generator: topology knobs,
multi-schema emission, and the streaming (iterator) twin."""

import random

import pytest

from repro.core.dag import DependencyDAG
from repro.core.preprocess import preprocess
from repro.core.runner import LineageXRunner
from repro.datasets import workload


def _waves_stats(views):
    dictionary = preprocess(dict(views))
    return DependencyDAG.from_query_dictionary(dictionary).stats()


class TestKnobDefaultsAreByteIdentical:
    def test_explicit_zero_knobs_equal_omitted_knobs(self):
        plain = workload.generate_warehouse(num_views=80, seed=7)
        explicit = workload.generate_warehouse(
            num_views=80,
            seed=7,
            deep_chain_probability=0.0,
            fanout_probability=0.0,
            num_schemas=1,
        )
        assert plain.views == explicit.views
        assert plain.base_tables == explicit.base_tables

    def test_historical_seed_42_stream_is_frozen(self):
        """The default-knob stream must never drift: every store cache key,
        differential baseline, and committed benchmark depends on it."""
        warehouse = workload.generate_warehouse()  # all defaults, seed=42
        assert list(warehouse.views)[:2] == ["view_0", "view_1"]
        assert warehouse.views["view_0"] == (
            "CREATE VIEW view_0 AS SELECT s.name, count(*) AS row_count, "
            "max(s.key) AS max_key FROM base_2 s GROUP BY s.name"
        )

    def test_knob_streams_differ_from_default(self):
        plain = workload.generate_warehouse(num_views=80, seed=7)
        chained = workload.generate_warehouse(
            num_views=80, seed=7, deep_chain_probability=0.5
        )
        assert plain.views != chained.views


class TestTopologyKnobs:
    def test_deep_chains_raise_wave_count(self):
        plain = workload.generate_warehouse(num_views=100, seed=13)
        chained = workload.generate_warehouse(
            num_views=100, seed=13, deep_chain_probability=0.6
        )
        assert (
            _waves_stats(chained.views)["num_waves"]
            > _waves_stats(plain.views)["num_waves"]
        )

    def test_fanout_raises_max_wave_width(self):
        plain = workload.generate_warehouse(num_views=100, seed=13)
        fanned = workload.generate_warehouse(
            num_views=100, seed=13, fanout_probability=0.6
        )
        assert (
            _waves_stats(fanned.views)["max_wave_width"]
            > _waves_stats(plain.views)["max_wave_width"]
        )

    def test_knob_corpora_extract_without_unresolved(self):
        warehouse = workload.generate_warehouse(
            num_views=60,
            seed=19,
            deep_chain_probability=0.3,
            fanout_probability=0.2,
        )
        result = LineageXRunner(catalog=warehouse.catalog()).run(
            dict(warehouse.views)
        )
        assert not result.report.unresolved

    def test_mesh_raises_edge_density(self):
        """Mesh views coalesce columns across three sources, so the column
        graph carries several in-edges of mixed kinds per output column."""

        def density(warehouse):
            result = LineageXRunner(catalog=warehouse.catalog()).run(
                dict(warehouse.views)
            )
            assert not result.report.unresolved
            edges = list(result.graph.edges())
            nodes = {e.source for e in edges} | {e.target for e in edges}
            return len(edges) / len(nodes), {e.kind for e in edges}

        plain_density, _ = density(
            workload.generate_warehouse(num_views=80, seed=31)
        )
        mesh_density, mesh_kinds = density(
            workload.generate_warehouse(num_views=80, seed=31, mesh_probability=0.7)
        )
        assert mesh_density > plain_density
        assert mesh_density > 3.0
        assert mesh_kinds == {"contribute", "reference", "both"}

    def test_multi_schema_names_are_qualified_and_resolve(self):
        warehouse = workload.generate_warehouse(
            num_base_tables=6, num_views=40, seed=23, num_schemas=3
        )
        assert any(name.startswith("sch_1.") for name in warehouse.base_tables)
        assert any(name.startswith("sch_2.") for name in warehouse.views)
        result = LineageXRunner(catalog=warehouse.catalog()).run(
            dict(warehouse.views)
        )
        assert not result.report.unresolved


class TestStreamedWarehouse:
    @pytest.mark.parametrize(
        "config",
        [
            dict(num_views=50, seed=7),
            dict(num_views=80, seed=11, extended_probability=0.3),
            dict(num_views=80, seed=11, deep_chain_probability=0.4),
            dict(num_views=60, seed=5, fanout_probability=0.3, num_schemas=4),
            dict(num_views=70, seed=9, mesh_probability=0.4, deep_chain_probability=0.3),
        ],
        ids=["classic", "extended", "deep-chain", "fanout-multischema", "mesh"],
    )
    def test_stream_matches_materialized(self, config):
        warehouse = workload.generate_warehouse(**config)
        streamed = workload.iter_warehouse(**config)
        assert list(streamed) == list(warehouse.views.items())

    def test_iteration_is_restartable(self):
        streamed = workload.iter_warehouse(num_views=40, seed=3)
        assert list(streamed) == list(streamed)

    def test_restart_resets_stage_tables(self):
        """MERGE/upsert stage tables accrue per iteration; a second pass
        must not see the first pass's stage tables as leftovers."""
        streamed = workload.iter_warehouse(
            num_views=60, seed=11, extended_probability=0.4
        )
        list(streamed)
        after_first = dict(streamed.base_tables)
        list(streamed)
        assert dict(streamed.base_tables) == after_first

    def test_catalog_and_total(self):
        streamed = workload.iter_warehouse(num_base_tables=4, num_views=30, seed=9)
        assert streamed.total_statements() == 30
        materialized = workload.generate_warehouse(
            num_base_tables=4, num_views=30, seed=9
        )
        assert (
            streamed.catalog().relation_names()
            == materialized.catalog().relation_names()
        )

    def test_generator_feeds_the_runner_directly(self):
        streamed = workload.iter_warehouse(num_base_tables=4, num_views=30, seed=9)
        result = LineageXRunner(catalog=streamed.catalog(), stream=True).run(streamed)
        assert not result.report.unresolved
        assert len(result.graph.views) == 30


class TestPickSourceScaling:
    def test_plain_dict_fallback_matches_relations(self):
        relations = workload._Relations({"b": [1], "a": [2], "c": [3]})
        plain = {"b": [1], "a": [2], "c": [3]}
        for seed in range(10):
            assert workload._pick_source(relations, random.Random(seed)) == (
                workload._pick_source(plain, random.Random(seed))
            )

    def test_sorted_names_track_inserts(self):
        relations = workload._Relations({"base_1": [1]})
        relations.add("view_10", [2])
        relations.add("view_2", [3])
        relations.add("view_2", [4])  # re-add must not duplicate
        assert relations.sorted_names == sorted(relations)
