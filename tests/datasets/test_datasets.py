"""Tests for the bundled datasets: Example 1, retail, MIMIC, random workloads."""

import pytest

from repro.core.column_refs import ColumnName
from repro.datasets import example1, mimic, retail, workload
from repro.sqlparser import ast, parse


def col(table, column):
    return ColumnName.of(table, column)


class TestExample1Dataset:
    def test_query_log_parses_into_three_views(self):
        statements = parse(example1.QUERY_LOG)
        assert [s.name.dotted() for s in statements] == ["info", "webact", "webinfo"]

    def test_ordered_log_is_reverse_dependency_order(self):
        statements = parse(example1.QUERY_LOG_ORDERED)
        assert [s.name.dotted() for s in statements] == ["webinfo", "webact", "info"]

    def test_queries_helper_matches_log(self):
        assert "".join(example1.queries()) == example1.QUERY_LOG

    def test_base_table_catalog_schemas(self):
        catalog = example1.base_table_catalog()
        assert catalog.columns_of("web") == ["cid", "date", "page", "reg"]
        assert catalog.columns_of("customers") == ["cid", "name", "age"]
        assert catalog.columns_of("orders") == ["oid", "cid", "amount"]

    def test_ground_truth_is_consistent(self):
        truth = example1.ground_truth()
        assert {entry.name for entry in truth} == {"info", "webact", "webinfo"}
        assert truth["webact"].output_columns == ["wcid", "wdate", "wpage", "wreg"]
        # contributed impact is a subset of the full impact
        assert example1.CONTRIBUTED_IMPACT_OF_WEB_PAGE <= example1.IMPACT_OF_WEB_PAGE

    def test_ground_truth_impact_matches_reference_closure(self):
        # recomputing the closure over the hand-written ground truth must give
        # the same answer as the constant (guards against editing mistakes)
        from repro.analysis.impact import impact_analysis

        truth = example1.ground_truth()
        result = impact_analysis(truth, "web.page")
        assert {str(c) for c in result.all_columns} == example1.IMPACT_OF_WEB_PAGE


class TestRetailDataset:
    def test_ddl_defines_eight_tables(self):
        statements = parse(retail.BASE_TABLE_DDL)
        assert len([s for s in statements if isinstance(s, ast.CreateTable)]) == 8

    def test_view_names_lists_match_script(self):
        statements = parse(retail.VIEW_SCRIPT)
        names = [s.name.dotted() for s in statements]
        assert names == retail.ALL_VIEW_NAMES

    def test_full_script_extraction(self, retail_result):
        graph = retail_result.graph
        assert len(graph.views) == len(retail.ALL_VIEW_NAMES)
        assert not retail_result.report.unresolved

    def test_mart_views_trace_to_staging_not_base(self, retail_result):
        ltv = retail_result.graph["customer_ltv"]
        assert "customer_orders" in ltv.source_tables
        assert "orders" not in ltv.source_tables

    def test_cte_traced_through_in_order_revenue(self, retail_result):
        revenue = retail_result.graph["order_revenue"]
        assert revenue.contributions["revenue"] == {col("stg_order_items", "line_total")}

    def test_star_over_view_in_churn_candidates(self, retail_result):
        churn = retail_result.graph["churn_candidates"]
        ltv_columns = retail_result.graph["customer_ltv"].output_columns
        assert churn.output_columns == ltv_columns

    def test_shuffled_script_still_resolves(self):
        from repro.core.runner import lineagex

        result = lineagex(retail.BASE_TABLE_DDL + retail.shuffled_view_script())
        assert not result.report.unresolved
        assert result.graph["churn_candidates"].output_columns

    def test_base_table_catalog(self):
        catalog = retail.base_table_catalog()
        assert len(catalog.relation_names()) == 8


class TestMimicDataset:
    def test_scale_matches_declared_counts(self):
        counts = mimic.expected_counts()
        assert counts["base_tables"] == 26
        assert counts["views"] == 70
        assert counts["base_columns"] >= 275

    def test_all_views_parse(self):
        statements = parse(mimic.view_script())
        assert len(statements) == 70
        assert all(isinstance(s, ast.CreateView) for s in statements)

    def test_base_ddl_parses(self):
        statements = parse(mimic.base_table_ddl())
        assert len(statements) == 26

    def test_full_extraction_resolves_everything(self, mimic_result):
        assert len(mimic_result.graph.views) == 70
        assert not mimic_result.report.unresolved
        stats = mimic_result.stats()
        assert stats["num_view_columns"] > 500
        assert stats["num_base_tables"] == 26

    def test_shuffling_requires_deferrals_in_stack_mode(self):
        from repro.core.runner import lineagex

        result = lineagex(mimic.full_script(shuffle_seed=11), mode="stack")
        assert result.report.deferral_count > 0

    def test_shuffling_needs_no_deferrals_with_dag_plan(self, mimic_result):
        # the plan-first scheduler orders the shuffled script topologically,
        # so the reactive fallback never fires
        assert mimic_result.report.mode == "dag"
        assert mimic_result.report.deferral_count == 0
        assert len(mimic_result.report.waves) > 1

    def test_star_views_resolve_to_source_width(self, mimic_result):
        detail = mimic_result.graph["sepsis_cohort_detail"]
        sepsis_columns = mimic_result.graph["sepsis_diagnoses"].output_columns
        assert len(detail.output_columns) == len(sepsis_columns) + 2

    def test_event_summary_views_reference_group_keys(self, mimic_result):
        summary = mimic_result.graph["adm_labevents_summary"]
        assert col("labevents", "subject_id") in summary.referenced

    def test_catalog_matches_base_tables(self):
        catalog = mimic.base_table_catalog()
        assert len(catalog.relation_names()) == 26
        assert catalog.columns_of("patients") == mimic.BASE_TABLES["patients"]


class TestGeneratedWorkloads:
    def test_generation_is_deterministic(self):
        first = workload.generate_warehouse(num_views=20, seed=3)
        second = workload.generate_warehouse(num_views=20, seed=3)
        assert first.views == second.views
        assert first.base_tables == second.base_tables

    def test_different_seeds_differ(self):
        first = workload.generate_warehouse(num_views=20, seed=3)
        second = workload.generate_warehouse(num_views=20, seed=4)
        assert first.views != second.views

    def test_requested_sizes(self):
        warehouse = workload.generate_warehouse(num_base_tables=7, num_views=33, seed=1)
        assert len(warehouse.base_tables) == 7
        assert len(warehouse.views) == 33

    def test_all_views_parse(self, small_warehouse):
        statements = parse(small_warehouse.script)
        assert len(statements) == len(small_warehouse.views)

    def test_catalog_contains_base_tables(self, small_warehouse):
        catalog = small_warehouse.catalog()
        assert set(catalog.relation_names()) == set(small_warehouse.base_tables)

    def test_shuffled_script_same_statements(self, small_warehouse):
        ordered = {s.strip() for s in small_warehouse.script.split(";") if s.strip()}
        shuffled = {s.strip() for s in small_warehouse.shuffled_script().split(";") if s.strip()}
        assert ordered == shuffled

    def test_extraction_of_generated_pipeline(self, small_warehouse):
        from repro.core.runner import lineagex

        result = lineagex(small_warehouse.shuffled_script(), catalog=small_warehouse.catalog())
        assert not result.report.unresolved
        assert len(result.graph.views) == len(small_warehouse.views)

    def test_sweep_configurations_are_increasing(self):
        sizes = [views for views, _ in workload.sweep_configurations()]
        assert sizes == sorted(sizes)
        assert len(sizes) >= 4
