"""Tests for the SQLLineage-like, SQLGlot-like and LLM-like baselines.

These assert the *documented failure modes* from the paper (Figure 2 and
Section IV), which is what the comparison benchmarks rely on.
"""

import pytest

from repro.analysis.metrics import column_metrics, edge_metrics, impact_metrics
from repro.baselines import SimulatedLLMAssistant, SingleFileBaseline, SQLLineageBaseline
from repro.core.column_refs import ColumnName
from repro.datasets import example1


def col(table, column):
    return ColumnName.of(table, column)


class TestSQLLineageBaseline:
    @pytest.fixture(scope="class")
    def baseline_graph(self):
        return SQLLineageBaseline().run(example1.QUERY_LOG)

    def test_webact_has_four_extra_columns(self, baseline_graph):
        # Figure 2: "the node of webact erroneously includes four extra columns"
        columns = baseline_graph["webact"].output_columns
        assert len(columns) == 8
        assert set(columns) >= {"cid", "date", "page", "reg"}

    def test_info_star_becomes_wildcard_entry(self, baseline_graph):
        # Figure 2: "an erroneous entry of webact.* to info.*"
        info = baseline_graph["info"]
        assert "*" in info.output_columns
        assert col("webact", "*") in info.contributions["*"]

    def test_info_misses_webact_columns(self, baseline_graph):
        # Figure 2: "return fewer columns for the view info"
        info_columns = set(baseline_graph["info"].output_columns)
        assert not {"wcid", "wdate", "wpage", "wreg"} & info_columns

    def test_no_reference_edges_at_all(self, baseline_graph):
        assert all(not lineage.referenced for lineage in baseline_graph)

    def test_simple_projection_still_correct(self, baseline_graph):
        webinfo = baseline_graph["webinfo"]
        assert webinfo.contributions["wpage"] == {col("web", "page")}
        assert webinfo.contributions["wcid"] == {col("customers", "cid")}

    def test_column_recall_below_one_on_webact(self, baseline_graph):
        truth = example1.ground_truth()
        report = column_metrics(baseline_graph, truth, relation="info")
        assert report.recall < 1.0

    def test_edge_recall_below_lineagex(self, baseline_graph, example1_graph):
        truth = example1.ground_truth()
        assert edge_metrics(baseline_graph, truth).recall < edge_metrics(
            example1_graph, truth
        ).recall

    def test_unqualified_single_source_attributed(self):
        graph = SQLLineageBaseline().run("CREATE VIEW v AS SELECT page FROM web")
        assert graph["v"].contributions["page"] == {col("web", "page")}

    def test_cte_not_traced_through(self):
        graph = SQLLineageBaseline().run(
            "CREATE VIEW v AS WITH x AS (SELECT t.a FROM t) SELECT x.a FROM x"
        )
        # lineage stops at the CTE name instead of reaching t
        assert graph["v"].contributions["a"] == {col("x", "a")}


class TestSingleFileBaseline:
    @pytest.fixture(scope="class")
    def baseline_graph(self):
        return SingleFileBaseline().run(example1.QUERY_LOG)

    def test_set_operation_columns_are_correct(self, baseline_graph):
        # scope-aware: no duplicated leaf columns
        assert baseline_graph["webact"].output_columns == ["wcid", "wdate", "wpage", "wreg"]

    def test_star_over_other_view_still_unresolved(self, baseline_graph):
        # but cross-query inference is missing: w.* stays a wildcard
        assert "*" in baseline_graph["info"].output_columns

    def test_reference_tracking_present(self, baseline_graph):
        assert baseline_graph["webinfo"].referenced

    def test_ctes_are_traced_through(self):
        graph = SingleFileBaseline().run(
            "CREATE VIEW v AS WITH x AS (SELECT t.a FROM t) SELECT x.a FROM x"
        )
        assert graph["v"].contributions["a"] == {col("t", "a")}

    def test_better_than_naive_worse_than_lineagex(self, baseline_graph, example1_graph):
        truth = example1.ground_truth()
        naive_graph = SQLLineageBaseline().run(example1.QUERY_LOG)
        naive_recall = edge_metrics(naive_graph, truth).recall
        single_recall = edge_metrics(baseline_graph, truth).recall
        lineagex_recall = edge_metrics(example1_graph, truth).recall
        assert naive_recall < single_recall < lineagex_recall
        assert lineagex_recall == 1.0


class TestSimulatedLLM:
    @pytest.fixture(scope="class")
    def assistant(self):
        return SimulatedLLMAssistant(example1.QUERY_LOG)

    def test_finds_exactly_the_contributing_wpage_chain(self, assistant):
        impacted = {str(c) for c in assistant.impacted_columns("web.page")}
        assert impacted == example1.CONTRIBUTED_IMPACT_OF_WEB_PAGE

    def test_misses_referenced_only_columns(self, assistant):
        impacted = {str(c) for c in assistant.impacted_columns("web.page")}
        missed = example1.IMPACT_OF_WEB_PAGE - impacted
        assert "webact.wcid" in missed
        assert "info.oid" in missed

    def test_recall_on_referenced_only_is_zero(self, assistant):
        impacted = assistant.impacted_columns("web.page")
        referenced_only = example1.IMPACT_OF_WEB_PAGE - example1.CONTRIBUTED_IMPACT_OF_WEB_PAGE
        report = impact_metrics(
            {str(c) for c in impacted} & referenced_only, referenced_only
        )
        assert report.recall == 0.0

    def test_perfect_recall_on_contributing_columns(self, assistant):
        impacted = {str(c) for c in assistant.impacted_columns("web.page")}
        report = impact_metrics(impacted, example1.CONTRIBUTED_IMPACT_OF_WEB_PAGE)
        assert report.recall == 1.0 and report.precision == 1.0

    def test_unknown_column_answer(self, assistant):
        assert assistant.impacted_columns("ghost.column") == set()
        assert "does not appear" in assistant.answer("ghost.column")

    def test_answer_mentions_found_columns(self, assistant):
        answer = assistant.answer("web.page")
        assert "webinfo.wpage" in answer
