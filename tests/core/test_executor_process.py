"""Process-parallel wave extraction: equivalence, fallback, clean shutdown."""

import pickle
import threading

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.errors import AmbiguousColumnError, UnknownRelationError
from repro.core.preprocess import preprocess
from repro.core.runner import LineageXRunner
from repro.core.scheduler import (
    AutoInferenceScheduler,
    extract_statement_job,
)
from repro.datasets import workload


def _warehouse(num_views=30, seed=5):
    warehouse = workload.generate_warehouse(
        num_base_tables=4, num_views=num_views, seed=seed
    )
    return dict(warehouse.views), warehouse.catalog()


class TestExtractStatementJob:
    def test_is_module_level_and_picklable(self):
        # ProcessPoolExecutor ships the callable by qualified name
        assert pickle.loads(pickle.dumps(extract_statement_job)) is extract_statement_job

    def test_job_payload_pickles(self):
        queries = preprocess({"v": "CREATE VIEW v AS SELECT a FROM t"})
        entry = queries.get("v")
        payload = pickle.dumps((entry, {"t": ["a", "b"]}, frozenset(), False, False))
        entry2, schemas, pending, strict, collect = pickle.loads(payload)
        lineage, trace = extract_statement_job(entry2, schemas, pending, strict, collect)
        assert lineage.output_columns == ["a"]

    def test_pending_dependency_raises(self):
        queries = preprocess({"v": "CREATE VIEW v AS SELECT * FROM upstream"})
        with pytest.raises(UnknownRelationError) as info:
            extract_statement_job(
                queries.get("v"), {}, frozenset({"upstream"}), False, False
            )
        assert info.value.relation == "upstream"

    def test_unknown_relation_error_survives_pickling(self):
        error = pickle.loads(pickle.dumps(UnknownRelationError("t", reason="why")))
        assert error.relation == "t"
        assert error.reason == "why"

    def test_ambiguous_column_error_survives_pickling(self):
        error = pickle.loads(pickle.dumps(AmbiguousColumnError("c", ["a", "b"])))
        assert error.column == "c"
        assert error.candidates == ["a", "b"]


class TestProcessExecutorEquivalence:
    def test_identical_to_serial(self):
        sources, catalog = self._sources()
        serial = LineageXRunner(catalog=catalog).run(sources)
        parallel = LineageXRunner(
            catalog=catalog, workers=4, executor="process"
        ).run(sources)
        assert parallel.report.order == serial.report.order
        assert diff_graphs(parallel.graph, serial.graph).is_identical
        assert parallel.render("csv") == serial.render("csv")
        assert parallel.render("dot") == serial.render("dot")

    def test_identical_to_thread_executor(self):
        sources, catalog = self._sources()
        threads = LineageXRunner(catalog=catalog, workers=4).run(sources)
        processes = LineageXRunner(
            catalog=catalog, workers=4, executor="process"
        ).run(sources)
        assert threads.report.order == processes.report.order
        assert diff_graphs(processes.graph, threads.graph).is_identical

    @staticmethod
    def _sources():
        return _warehouse()

    def test_executor_recorded_in_report(self):
        sources, catalog = _warehouse(num_views=12)
        result = LineageXRunner(
            catalog=catalog, workers=2, executor="process"
        ).run(sources)
        assert result.report.executor == "process"
        serial = LineageXRunner(catalog=catalog).run(sources)
        assert serial.report.executor == "serial"

    def test_deferral_fallback_still_works(self):
        # SELECT * over a later-defined view is invisible to one wave's
        # snapshot only if the pre-pass missed the dependency; simulate by
        # running stack-visible entries through the job fallback path
        sources = {
            "late": "CREATE VIEW late AS SELECT * FROM early",
            "early": "CREATE VIEW early AS SELECT a, b FROM base",
        }
        result = LineageXRunner(workers=2, executor="process").run(sources)
        assert not result.report.unresolved
        assert result.graph["late"].output_columns == ["a", "b"]


class TestExecutorValidationAndFallback:
    def test_invalid_executor_rejected(self):
        queries = preprocess({"v": "CREATE VIEW v AS SELECT a FROM t"})
        with pytest.raises(ValueError):
            AutoInferenceScheduler(queries, executor="fiber")

    def test_broken_process_pool_falls_back_to_threads(self, monkeypatch):
        import concurrent.futures

        def broken(*args, **kwargs):
            raise OSError("no process pools here")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", broken)
        sources, catalog = _warehouse(num_views=12)
        result = LineageXRunner(
            catalog=catalog, workers=2, executor="process"
        ).run(sources)
        assert result.report.executor == "thread"
        serial = LineageXRunner(catalog=catalog).run(sources)
        assert diff_graphs(result.graph, serial.graph).is_identical


class TestDeterministicShutdown:
    def test_raising_wave_shuts_the_pool_down(self):
        # strict mode + an ambiguous column in a wide wave -> the wave raises;
        # the context-managed pool must leave no worker threads behind
        sources = {
            "a": "CREATE VIEW a AS SELECT id FROM t1",
            "b": "CREATE VIEW b AS SELECT id FROM t2",
            "bad": "CREATE VIEW bad AS SELECT id FROM t1, t2",
        }
        catalog = None
        from repro.catalog.introspect import catalog_from_sql

        catalog = catalog_from_sql(
            "CREATE TABLE t1 (id int); CREATE TABLE t2 (id int);"
        )
        before = threading.active_count()
        runner = LineageXRunner(catalog=catalog, strict=True, workers=4)
        with pytest.raises(AmbiguousColumnError):
            runner.run(sources)
        # every pool thread must have been joined by the context manager
        assert threading.active_count() == before
