"""Tests for the public runner API and the database-connection (EXPLAIN) mode."""

import json
import os

import pytest

from repro import (
    Catalog,
    ColumnName,
    lineagex,
    lineagex_with_connection,
)
from repro.analysis.diff import diff_graphs
from repro.catalog.errors import UndefinedTableError
from repro.core.plan_extractor import PlanModeRunner
from repro.datasets import example1, retail


def col(table, column):
    return ColumnName.of(table, column)


class TestRunnerAPI:
    def test_result_contains_graph_and_report(self, example1_result):
        assert "info" in example1_result.graph
        assert example1_result.report.order
        assert example1_result.catalog is not None

    def test_stats_shape(self, example1_result):
        stats = example1_result.stats()
        assert stats["num_queries"] == 3
        assert stats["num_views"] == 3
        assert stats["num_base_tables"] == 3
        # the DAG plan orders dependencies first, so the stack never fires
        assert stats["num_deferrals"] == 0
        assert stats["num_unresolved"] == 0
        assert stats["num_reused"] == 0

    def test_stack_mode_still_defers(self):
        result = lineagex(example1.QUERY_LOG, mode="stack")
        assert result.stats()["num_deferrals"] == 2
        assert result.report.mode == "stack"

    def test_dag_plan_recorded(self, example1_result):
        assert example1_result.report.mode == "dag"
        # Example 1's chain: webinfo -> webact -> info, one entry per wave
        assert example1_result.report.waves == [["webinfo"], ["webact"], ["info"]]
        assert example1_result.report.order == ["webinfo", "webact", "info"]

    def test_base_tables_accumulate_columns_from_usage(self, example1_graph):
        assert set(example1_graph.columns_of("web")) == {"cid", "date", "page", "reg"}
        assert set(example1_graph.columns_of("customers")) == {"cid", "name", "age"}

    def test_catalog_fills_base_table_columns(self, example1_with_catalog):
        # With the catalog supplied, orders also shows its unused column.
        assert set(example1_with_catalog.graph.columns_of("orders")) == {
            "oid", "cid", "amount",
        }

    def test_ddl_in_input_seeds_catalog(self):
        result = lineagex(
            "CREATE TABLE t (a integer, b integer);"
            "CREATE VIEW v AS SELECT * FROM t"
        )
        assert result.graph["v"].output_columns == ["a", "b"]
        assert result.catalog.columns_of("t") == ["a", "b"]

    def test_list_and_dict_inputs(self):
        from_list = lineagex([example1.Q1, example1.Q2, example1.Q3])
        from_dict = lineagex({"a": example1.Q1, "b": example1.Q2, "c": example1.Q3})
        assert diff_graphs(from_list.graph, from_dict.graph).is_identical

    def test_output_files_written(self, tmp_path):
        result = lineagex(example1.QUERY_LOG, output_dir=str(tmp_path))
        json_path = tmp_path / "lineagex.json"
        html_path = tmp_path / "lineagex.html"
        assert json_path.exists() and html_path.exists()
        payload = json.loads(json_path.read_text())
        assert "relations" in payload and "column_edges" in payload

    def test_save_returns_paths(self, tmp_path, example1_result):
        json_path, html_path = example1_result.save(str(tmp_path), basename="demo")
        assert os.path.basename(json_path) == "demo.json"
        assert os.path.exists(html_path)

    def test_to_dict_includes_stats_and_warnings(self, example1_result):
        payload = example1_result.to_dict()
        assert "stats" in payload and "warnings" in payload

    def test_impact_analysis_convenience(self, example1_result):
        impact = example1_result.impact_analysis("web.page")
        assert {str(c) for c in impact.all_columns} == example1.IMPACT_OF_WEB_PAGE

    def test_strict_mode_propagates(self):
        from repro.core.errors import AmbiguousColumnError

        sql = (
            "CREATE TABLE a (k integer); CREATE TABLE b (k integer);"
            "CREATE VIEW v AS SELECT k FROM a, b"
        )
        with pytest.raises(AmbiguousColumnError):
            lineagex(sql, strict=True)
        # non-strict succeeds
        assert "v" in lineagex(sql).graph

    def test_wildcard_usage_creates_base_table_node(self):
        result = lineagex("CREATE VIEW v AS SELECT m.* FROM mystery m")
        assert "mystery" in result.graph
        assert result.graph["mystery"].is_base_table


class TestPlanMode:
    def test_agreement_with_static_mode_on_example1(self, example1_with_catalog):
        plan_result = lineagex_with_connection(
            example1.QUERY_LOG, catalog=example1.base_table_catalog()
        )
        diff = diff_graphs(plan_result.graph, example1_with_catalog.graph)
        assert diff.is_identical, diff.summary()

    def test_agreement_on_retail(self, retail_result):
        plan_result = lineagex_with_connection(
            retail.VIEW_SCRIPT, catalog=retail.base_table_catalog()
        )
        static_result = lineagex(
            retail.VIEW_SCRIPT, catalog=retail.base_table_catalog()
        )
        assert diff_graphs(plan_result.graph, static_result.graph).is_identical

    def test_views_created_in_catalog_during_run(self):
        result = lineagex_with_connection(
            example1.QUERY_LOG, catalog=example1.base_table_catalog()
        )
        assert result.catalog.get("webact").is_view
        assert result.catalog.columns_of("info") == [
            "name", "age", "oid", "wcid", "wdate", "wpage", "wreg",
        ]

    def test_deferrals_mirror_static_mode(self):
        result = lineagex_with_connection(
            example1.QUERY_LOG, catalog=example1.base_table_catalog()
        )
        assert result.report.order == ["webinfo", "webact", "info"]
        assert result.report.deferral_count == 2

    def test_plans_recorded(self):
        result = lineagex_with_connection(
            example1.QUERY_LOG, catalog=example1.base_table_catalog()
        )
        assert set(result.report.plans) == {"info", "webact", "webinfo"}
        webact_plan = result.report.plans["webact"]
        assert webact_plan.node_type.startswith("HashSetOp")

    def test_missing_base_table_is_reported_unresolved(self):
        catalog = Catalog()
        catalog.create_table("known", ["a"])
        runner = PlanModeRunner(catalog=catalog)
        result = runner.run(
            "CREATE VIEW v AS SELECT known.a FROM known;"
            "CREATE VIEW w AS SELECT m.x FROM missing m"
        )
        assert "v" in result.graph
        assert "w" in result.report.unresolved
        assert "w" not in result.graph

    def test_empty_catalog_reports_everything_unresolved(self):
        result = lineagex_with_connection(example1.QUERY_LOG)
        # every view depends (transitively) on base tables absent from the DB
        assert set(result.report.unresolved) == {"info", "webact", "webinfo"}
