"""Tests for the Lineage Information Extraction Module: basic rules.

These exercise the Table I keyword rules on small, hand-checkable queries.
"""

import pytest

from repro.catalog import Catalog
from repro.core.column_refs import ColumnName
from repro.core.extractor import (
    RULE_FROM_CTE,
    RULE_FROM_TABLE,
    RULE_OTHER,
    RULE_SELECT,
    RULE_SET_OPERATION,
    RULE_WITH,
    CatalogSchemaProvider,
    LineageExtractor,
    SchemaProvider,
)
from repro.sqlparser import parse_one
from repro.sqlparser.visitor import query_of


def extract(sql, provider=None, name="v", declared_columns=None, strict=False):
    extractor = LineageExtractor(provider=provider, strict=strict, collect_trace=True)
    statement = parse_one(sql)
    lineage, trace = extractor.extract(
        name, query_of(statement), declared_columns=declared_columns
    )
    return lineage, trace


def col(table, column):
    return ColumnName.of(table, column)


class TestSelectRule:
    def test_single_column_contribution(self):
        lineage, _ = extract("SELECT t.a FROM t")
        assert lineage.output_columns == ["a"]
        assert lineage.contributions["a"] == {col("t", "a")}

    def test_alias_renames_output(self):
        lineage, _ = extract("SELECT t.a AS renamed FROM t")
        assert lineage.output_columns == ["renamed"]
        assert lineage.contributions["renamed"] == {col("t", "a")}

    def test_expression_collects_all_columns(self):
        lineage, _ = extract("SELECT t.a + t.b AS total FROM t")
        assert lineage.contributions["total"] == {col("t", "a"), col("t", "b")}

    def test_function_arguments_contribute(self):
        lineage, _ = extract("SELECT coalesce(t.a, t.b) AS x FROM t")
        assert lineage.contributions["x"] == {col("t", "a"), col("t", "b")}

    def test_case_expression_contributes_all_branches(self):
        lineage, _ = extract(
            "SELECT CASE WHEN t.flag THEN t.a ELSE t.b END AS x FROM t"
        )
        assert lineage.contributions["x"] == {
            col("t", "flag"),
            col("t", "a"),
            col("t", "b"),
        }

    def test_literal_projection_has_no_sources(self):
        lineage, _ = extract("SELECT 42 AS answer, t.a FROM t")
        assert lineage.contributions["answer"] == set()
        assert lineage.contributions["a"] == {col("t", "a")}

    def test_unnamed_expression_gets_positional_name(self):
        lineage, _ = extract("SELECT t.a + 1 FROM t")
        assert lineage.output_columns == ["column_1"]

    def test_cast_and_extract_trace_to_operand(self):
        lineage, _ = extract(
            "SELECT CAST(t.a AS text) AS a_text, EXTRACT(YEAR FROM t.d) AS y FROM t"
        )
        assert lineage.contributions["a_text"] == {col("t", "a")}
        assert lineage.contributions["y"] == {col("t", "d")}

    def test_count_star_has_no_column_sources(self):
        lineage, _ = extract("SELECT count(*) AS n FROM t")
        assert lineage.contributions["n"] == set()

    def test_declared_column_names_rename_positionally(self):
        lineage, _ = extract(
            "SELECT t.a, t.b FROM t", declared_columns=["x", "y"]
        )
        assert lineage.output_columns == ["x", "y"]
        assert lineage.contributions["x"] == {col("t", "a")}

    def test_duplicate_output_names_merge(self):
        lineage, _ = extract("SELECT t.a AS x, u.b AS x FROM t, u")
        assert lineage.output_columns == ["x"]
        assert lineage.contributions["x"] == {col("t", "a"), col("u", "b")}

    def test_duplicate_declared_column_names_collapse(self):
        # a declared list can rename two projections to the same name; the
        # lineage keeps one output column (the positional rename is
        # last-wins for its sources, like a dict rebuild)
        lineage, _ = extract(
            "SELECT t.a, t.b FROM t", declared_columns=["x", "x"]
        )
        assert lineage.output_columns == ["x"]
        assert lineage.contributions["x"] == {col("t", "b")}

    def test_select_rule_fires_per_projection(self):
        _, trace = extract("SELECT t.a, t.b, t.c FROM t")
        assert trace.rule_counts()[RULE_SELECT] == 3


class TestFromRule:
    def test_table_added_to_table_lineage(self):
        lineage, trace = extract("SELECT t.a FROM t")
        assert lineage.source_tables == {"t"}
        assert trace.rule_counts()[RULE_FROM_TABLE] == 1

    def test_alias_resolution(self):
        lineage, _ = extract("SELECT c.name FROM customers c")
        assert lineage.contributions["name"] == {col("customers", "name")}

    def test_multiple_tables(self):
        lineage, trace = extract("SELECT a.x, b.y FROM a, b")
        assert lineage.source_tables == {"a", "b"}
        assert trace.rule_counts()[RULE_FROM_TABLE] == 2

    def test_schema_qualified_table(self):
        lineage, _ = extract("SELECT o.oid FROM sales.orders o")
        assert lineage.contributions["oid"] == {col("sales.orders", "oid")}

    def test_catalog_provider_expands_unprefixed_columns(self):
        catalog = Catalog()
        catalog.create_table("customers", ["cid", "name"])
        catalog.create_table("orders", ["oid", "cid"])
        lineage, _ = extract(
            "SELECT name, oid FROM customers, orders",
            provider=CatalogSchemaProvider(catalog),
        )
        assert lineage.contributions["name"] == {col("customers", "name")}
        assert lineage.contributions["oid"] == {col("orders", "oid")}

    def test_table_column_aliases(self):
        lineage, _ = extract(
            "SELECT r.x FROM t AS r(x, y)",
            provider=CatalogSchemaProvider(_catalog_with("t", ["a", "b"])),
        )
        assert lineage.contributions["x"] == {col("t", "a")}


class TestOtherKeywordsRule:
    def test_where_columns_referenced(self):
        lineage, trace = extract("SELECT t.a FROM t WHERE t.b > 1")
        assert col("t", "b") in lineage.referenced
        assert col("t", "b") not in lineage.contributing_columns
        assert trace.rule_counts()[RULE_OTHER] >= 1

    def test_join_condition_referenced(self):
        lineage, _ = extract(
            "SELECT c.name FROM customers c JOIN orders o ON c.cid = o.cid"
        )
        assert {col("customers", "cid"), col("orders", "cid")} <= lineage.referenced

    def test_using_columns_referenced(self):
        catalog = Catalog()
        catalog.create_table("t", ["id", "a"])
        catalog.create_table("u", ["id", "b"])
        lineage, _ = extract(
            "SELECT t.a FROM t JOIN u USING (id)",
            provider=CatalogSchemaProvider(catalog),
        )
        assert {col("t", "id"), col("u", "id")} <= lineage.referenced

    def test_group_by_and_having_referenced(self):
        lineage, _ = extract(
            "SELECT t.a, count(*) AS n FROM t GROUP BY t.a HAVING max(t.b) > 2"
        )
        assert col("t", "a") in lineage.referenced
        assert col("t", "b") in lineage.referenced

    def test_order_by_referenced(self):
        lineage, _ = extract("SELECT t.a FROM t ORDER BY t.z DESC")
        assert col("t", "z") in lineage.referenced

    def test_order_by_projection_alias_maps_to_contributions(self):
        lineage, _ = extract("SELECT t.a AS total FROM t ORDER BY total")
        assert col("t", "a") in lineage.referenced

    def test_window_partition_referenced(self):
        lineage, _ = extract(
            "SELECT sum(t.x) OVER (PARTITION BY t.grp ORDER BY t.d) AS s FROM t"
        )
        assert lineage.contributions["s"] == {col("t", "x")}
        assert {col("t", "grp"), col("t", "d")} <= lineage.referenced

    def test_filter_clause_referenced(self):
        lineage, _ = extract(
            "SELECT count(*) FILTER (WHERE t.status = 'ok') AS n FROM t"
        )
        assert col("t", "status") in lineage.referenced

    def test_both_contributed_and_referenced(self):
        lineage, _ = extract("SELECT t.a FROM t WHERE t.a > 0")
        assert lineage.both_columns == {col("t", "a")}

    def test_distinct_on_referenced(self):
        lineage, _ = extract("SELECT DISTINCT ON (t.k) t.a FROM t")
        assert col("t", "k") in lineage.referenced

    def test_limit_expression_ignored_for_plain_literals(self):
        lineage, _ = extract("SELECT t.a FROM t LIMIT 5")
        assert lineage.referenced == set()


class TestSetOperationRule:
    def test_output_names_from_left_leaf(self):
        lineage, _ = extract(
            "SELECT w.wcid FROM webinfo w INTERSECT SELECT w1.cid FROM web w1"
        )
        assert lineage.output_columns == ["wcid"]

    def test_positional_contributions_from_all_leaves(self):
        lineage, _ = extract(
            "SELECT w.wcid FROM webinfo w INTERSECT SELECT w1.cid FROM web w1"
        )
        assert lineage.contributions["wcid"] == {
            col("webinfo", "wcid"),
            col("web", "cid"),
        }

    def test_all_projection_columns_referenced(self):
        lineage, trace = extract(
            "SELECT w.wcid, w.wpage FROM webinfo w INTERSECT SELECT w1.cid, w1.page FROM web w1"
        )
        assert {
            col("webinfo", "wcid"),
            col("webinfo", "wpage"),
            col("web", "cid"),
            col("web", "page"),
        } <= lineage.referenced
        assert trace.rule_counts()[RULE_SET_OPERATION] == 1

    def test_three_way_union(self):
        lineage, _ = extract(
            "SELECT a.x FROM a UNION SELECT b.y FROM b UNION SELECT c.z FROM c"
        )
        assert lineage.contributions["x"] == {col("a", "x"), col("b", "y"), col("c", "z")}
        assert lineage.source_tables == {"a", "b", "c"}

    def test_leaf_where_clauses_propagate_to_referenced(self):
        lineage, _ = extract(
            "SELECT a.x FROM a WHERE a.flag UNION SELECT b.y FROM b WHERE b.other > 1"
        )
        assert {col("a", "flag"), col("b", "other")} <= lineage.referenced

    def test_union_all_follows_same_rule(self):
        lineage, _ = extract("SELECT a.x FROM a UNION ALL SELECT b.y FROM b")
        assert col("b", "y") in lineage.referenced


class TestTraceOutput:
    def test_trace_orders_are_sequential(self):
        _, trace = extract("SELECT t.a FROM t WHERE t.b = 1")
        orders = [step.order for step in trace.steps]
        assert orders == list(range(1, len(orders) + 1))

    def test_rule_counts_cover_all_rules(self):
        _, trace = extract("SELECT t.a FROM t")
        counts = trace.rule_counts()
        for rule in (RULE_SELECT, RULE_FROM_TABLE, RULE_FROM_CTE, RULE_WITH,
                     RULE_SET_OPERATION, RULE_OTHER):
            assert rule in counts

    def test_as_rows_shape(self):
        _, trace = extract("SELECT t.a FROM t")
        rows = trace.as_rows()
        assert all(len(row) == 4 for row in rows)


def _catalog_with(name, columns):
    catalog = Catalog()
    catalog.create_table(name, columns)
    return catalog
