"""Tests for the per-column expression capture and graph subgraph extraction."""

import json

import pytest

from repro.core.runner import lineagex
from repro.datasets import example1
from repro.output import graph_from_json, graph_to_json


class TestColumnExpressions:
    def test_simple_projection_expressions(self, example1_graph):
        assert example1_graph["webinfo"].expressions == {
            "wcid": "c.cid",
            "wdate": "w.date",
            "wpage": "w.page",
            "wreg": "w.reg",
        }

    def test_computed_expression_text(self):
        result = lineagex(
            "CREATE VIEW v AS SELECT t.a * t.b AS area, CAST(t.c AS text) AS c_text FROM t"
        )
        expressions = result.graph["v"].expressions
        assert expressions["area"] == "t.a * t.b"
        assert expressions["c_text"] == "CAST(t.c AS text)"

    def test_star_expansion_records_star(self, example1_graph):
        info = example1_graph["info"]
        assert info.expressions["wpage"] == "w.*"
        assert info.expressions["name"] == "c.name"

    def test_set_operation_uses_left_leaf_expression(self, example1_graph):
        assert example1_graph["webact"].expressions["wpage"] == "w.wpage"

    def test_declared_column_names_rename_expressions(self):
        result = lineagex("CREATE VIEW v (x) AS SELECT t.a + 1 FROM t")
        assert result.graph["v"].expressions["x"] == "t.a + 1"

    def test_expressions_survive_json_round_trip(self, example1_graph):
        rebuilt = graph_from_json(graph_to_json(example1_graph))
        assert rebuilt["webinfo"].expressions == example1_graph["webinfo"].expressions

    def test_expressions_in_json_document(self, example1_graph):
        payload = json.loads(graph_to_json(example1_graph))
        assert payload["relations"]["webinfo"]["column_expressions"]["wpage"] == "w.page"

    def test_expressions_surface_in_html_tooltips(self, example1_result):
        html = example1_result.to_html()
        assert "column_expressions" in html
        assert "div.title = expr" in html


class TestSubgraph:
    def test_subgraph_keeps_only_requested_relations(self, example1_graph):
        sub = example1_graph.subgraph(["web", "webinfo"])
        assert {entry.name for entry in sub} == {"web", "webinfo"}

    def test_subgraph_filters_edges_to_members(self, example1_graph):
        sub = example1_graph.subgraph(["web", "webinfo"])
        sources = {edge.source.table for edge in sub.edges()}
        assert sources == {"web"}
        # customers.cid edges are gone because customers is outside the set
        assert all(edge.source.table != "customers" for edge in sub.edges())

    def test_subgraph_preserves_columns_and_expressions(self, example1_graph):
        sub = example1_graph.subgraph(["web", "webinfo"])
        assert sub["webinfo"].output_columns == ["wcid", "wdate", "wpage", "wreg"]
        assert sub["webinfo"].expressions["wpage"] == "w.page"

    def test_subgraph_of_everything_matches_original_edges(self, example1_graph):
        names = [entry.name for entry in example1_graph]
        sub = example1_graph.subgraph(names)
        assert len(list(sub.edges())) == len(list(example1_graph.edges()))

    def test_subgraph_empty_selection(self, example1_graph):
        assert len(example1_graph.subgraph([])) == 0

    def test_subgraph_source_tables_restricted(self, example1_graph):
        sub = example1_graph.subgraph(["info", "webact"])
        assert sub["info"].source_tables == {"webact"}
