"""Tests for UPDATE / DELETE statement support (query-log completeness)."""

import pytest

from repro.core.column_refs import ColumnName
from repro.core.preprocess import preprocess
from repro.core.runner import lineagex
from repro.sqlparser import ast, parse_one, to_sql


def col(table, column):
    return ColumnName.of(table, column)


class TestParsing:
    def test_basic_update(self):
        statement = parse_one("UPDATE web SET page = 'home' WHERE cid = 1")
        assert isinstance(statement, ast.UpdateStatement)
        assert statement.table.dotted() == "web"
        assert statement.assignments[0][0] == "page"

    def test_update_with_alias_and_from(self):
        statement = parse_one(
            "UPDATE orders o SET status = s.status FROM shipments s WHERE o.oid = s.oid"
        )
        assert statement.alias == "o"
        assert len(statement.from_sources) == 1
        assert statement.where is not None

    def test_update_multiple_assignments(self):
        statement = parse_one("UPDATE t SET a = 1, b = t.c + 1")
        assert [column for column, _ in statement.assignments] == ["a", "b"]

    def test_update_missing_equals_is_error(self):
        from repro.sqlparser import ParseError

        with pytest.raises(ParseError):
            parse_one("UPDATE t SET a 1")

    def test_basic_delete(self):
        statement = parse_one("DELETE FROM web WHERE reg = false")
        assert isinstance(statement, ast.DeleteStatement)
        assert statement.table.dotted() == "web"

    def test_delete_using(self):
        statement = parse_one(
            "DELETE FROM orders o USING customers c WHERE o.cid = c.cid AND c.banned"
        )
        assert statement.alias == "o"
        assert len(statement.using_sources) == 1

    def test_update_round_trip(self):
        sql = "UPDATE orders AS o SET status = s.status FROM shipments AS s WHERE o.oid = s.oid"
        printed = to_sql(parse_one(sql))
        assert to_sql(parse_one(printed)) == printed

    def test_delete_round_trip(self):
        sql = "DELETE FROM orders AS o USING customers AS c WHERE o.cid = c.cid"
        printed = to_sql(parse_one(sql))
        assert to_sql(parse_one(printed)) == printed


class TestPreprocessing:
    def test_update_identifier_is_target_table(self):
        qd = preprocess("UPDATE web SET page = 'x' WHERE cid = 1")
        assert qd.identifiers() == ["web"]
        assert qd["web"].kind == "update"

    def test_update_query_rewrite_projects_assignments(self):
        qd = preprocess("UPDATE web SET page = lower(raw.page) FROM raw WHERE web.cid = raw.cid")
        query = qd["web"].query
        assert isinstance(query, ast.Select)
        assert query.projections[0].alias == "page"
        assert len(query.from_sources) == 2

    def test_delete_kind(self):
        qd = preprocess("DELETE FROM web WHERE page IS NULL")
        assert qd["web"].kind == "delete"

    def test_update_after_create_is_ignored_with_warning(self):
        qd = preprocess(
            "CREATE VIEW v AS SELECT t.a FROM t; UPDATE v SET a = 1"
        )
        assert qd["v"].kind == "view"
        assert any("UPDATE" in warning for warning in qd.warnings)


class TestLineage:
    def test_update_from_other_table(self):
        result = lineagex(
            "UPDATE inventory SET stock = s.quantity, updated_at = s.received_at "
            "FROM shipments s WHERE inventory.sku = s.sku"
        )
        inventory = result.graph["inventory"]
        assert inventory.contributions["stock"] == {col("shipments", "quantity")}
        assert inventory.contributions["updated_at"] == {col("shipments", "received_at")}
        assert col("shipments", "sku") in inventory.referenced
        assert col("inventory", "sku") in inventory.referenced

    def test_update_self_referencing_expression(self):
        result = lineagex("UPDATE accounts SET balance = accounts.balance - 10 WHERE accounts.id = 1")
        accounts = result.graph["accounts"]
        assert accounts.contributions["balance"] == {col("accounts", "balance")}
        assert col("accounts", "id") in accounts.referenced

    def test_delete_records_referenced_columns(self):
        result = lineagex(
            "DELETE FROM sessions USING blocked_users b WHERE sessions.user_id = b.user_id"
        )
        sessions = result.graph["sessions"]
        assert sessions.output_columns == []
        assert col("blocked_users", "user_id") in sessions.referenced
        assert col("sessions", "user_id") in sessions.referenced

    def test_update_impact_analysis(self):
        sql = (
            "UPDATE inventory SET stock = s.quantity FROM shipments s "
            "WHERE inventory.sku = s.sku;"
            "CREATE VIEW low_stock AS SELECT i.sku, i.stock FROM inventory i WHERE i.stock < 10"
        )
        result = lineagex(sql)
        impact = result.impact_analysis("shipments.quantity")
        assert col("inventory", "stock") in impact.all_columns
        assert col("low_stock", "stock") in impact.all_columns

    def test_update_statement_in_mixed_log(self):
        from repro.datasets import example1

        result = lineagex(example1.QUERY_LOG + "UPDATE web SET reg = true WHERE page = 'promo';")
        # the UPDATE adds a lineage entry for web without disturbing the views
        assert "webinfo" in result.graph
        web = result.graph["web"]
        assert col("web", "page") in web.referenced
