"""Tests for incremental re-extraction (content hashing + DAG dirty sets).

``LineageXRunner.run_incremental`` / ``LineageXResult.update`` take a
*delta* — ``{identifier: new_sql}`` with ``None`` meaning removal — and must
produce a graph identical to a full re-run over the merged sources while
re-extracting only the changed entries plus their transitive DAG dependents.
"""

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.runner import LineageXRunner, lineagex
from repro.datasets import example1, workload


SOURCES = {
    "info": example1.Q1,
    "webact": example1.Q2,
    "webinfo": example1.Q3,
}


def apply_changes(sources, changes):
    merged = dict(sources)
    for key, sql in changes.items():
        if sql is None:
            merged.pop(key, None)
        else:
            merged[key] = sql
    return merged


def full_and_incremental(prev_result, changes, runner=None, sources=SOURCES):
    runner = runner or LineageXRunner()
    incremental = runner.run_incremental(prev_result, changes)
    full = runner.run(apply_changes(sources, changes))
    return incremental, full


class TestContentHashing:
    def test_hashes_recorded_per_entry(self):
        result = lineagex(dict(SOURCES))
        assert set(result.source_hashes) == {"webinfo", "webact", "info"}

    def test_whitespace_change_is_not_a_change(self):
        result = lineagex(dict(SOURCES))
        reformatted = "  " + SOURCES["webact"].replace("SELECT", "SELECT\n  ", 1)
        updated = LineageXRunner().run_incremental(result, {"webact": reformatted})
        # canonical-form hashing: nothing is dirty, everything is spliced
        assert sorted(updated.report.reused) == ["info", "webact", "webinfo"]
        assert updated.report.order == []
        assert diff_graphs(updated.graph, result.graph).is_identical


class TestIncrementalCorrectness:
    def test_update_one_query_equals_full_rerun(self):
        prev = lineagex(dict(SOURCES))
        # narrow webinfo to three columns; webact and info must follow
        changes = {
            "webinfo": (
                "CREATE VIEW webinfo AS SELECT web.cid, web.date, web.page "
                "FROM web WHERE web.date > 5"
            )
        }
        incremental, full = full_and_incremental(prev, changes)
        diff = diff_graphs(incremental.graph, full.graph)
        assert diff.is_identical, diff.summary()

    def test_only_dirty_entries_re_extracted(self):
        prev = lineagex(dict(SOURCES))
        changes = {
            "webact": (
                "CREATE VIEW webact AS SELECT webinfo.wcid, webinfo.wpage "
                "FROM webinfo"
            )
        }
        incremental = LineageXRunner().run_incremental(prev, changes)
        # webinfo is upstream of the change: spliced, not re-extracted
        assert incremental.report.reused == ["webinfo"]
        assert set(incremental.report.order) == {"webact", "info"}

    def test_changing_a_leaf_reuses_everything_else(self):
        prev = lineagex(dict(SOURCES))
        changes = {
            "info": (
                "CREATE VIEW info AS SELECT c.name FROM customers c, webact w "
                "WHERE c.cid = w.wcid"
            )
        }
        incremental, full = full_and_incremental(prev, changes)
        assert sorted(incremental.report.reused) == ["webact", "webinfo"]
        assert incremental.report.order == ["info"]
        assert diff_graphs(incremental.graph, full.graph).is_identical

    def test_adding_a_new_query(self):
        prev = lineagex(dict(SOURCES))
        changes = {
            "report_view": (
                "CREATE VIEW report_view AS SELECT info.name, info.wpage FROM info"
            )
        }
        incremental, full = full_and_incremental(prev, changes)
        assert incremental.report.order == ["report_view"]
        assert sorted(incremental.report.reused) == ["info", "webact", "webinfo"]
        assert diff_graphs(incremental.graph, full.graph).is_identical

    def test_removing_a_query_invalidates_its_dependents(self):
        prev = lineagex(dict(SOURCES))
        incremental, full = full_and_incremental(prev, {"webinfo": None})
        # webact read webinfo, info reads webact: both must be re-extracted
        # (webinfo becomes an external table of unknown schema)
        assert incremental.report.reused == []
        assert "webinfo" not in {v.name for v in incremental.graph.views}
        assert diff_graphs(incremental.graph, full.graph).is_identical

    def test_unchanged_entries_are_not_reparsed(self):
        prev = lineagex(dict(SOURCES))
        updated = prev.update(
            {"info": "CREATE VIEW info AS SELECT webact.wcid FROM webact"}
        )
        # the untouched entries reuse the very same parsed statements
        for name in ("webinfo", "webact"):
            assert updated.query_dictionary.get(name) is prev.query_dictionary.get(name)
        assert updated.query_dictionary.get("info") is not prev.query_dictionary.get("info")

    def test_ddl_change_dirties_readers(self):
        # widening a CREATE TABLE must re-extract the views reading it even
        # though no Query Dictionary entry changed
        prev = lineagex(
            {
                "ddl": "CREATE TABLE t (a integer, b integer)",
                "v": "CREATE VIEW v AS SELECT * FROM t",
            }
        )
        assert prev.graph["v"].output_columns == ["a", "b"]
        updated = prev.update(
            {"ddl": "CREATE TABLE t (a integer, b integer, c integer)"}
        )
        assert updated.graph["v"].output_columns == ["a", "b", "c"]
        assert updated.catalog.columns_of("t") == ["a", "b", "c"]
        full = lineagex(
            {
                "ddl": "CREATE TABLE t (a integer, b integer, c integer)",
                "v": "CREATE VIEW v AS SELECT * FROM t",
            }
        )
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_warnings_survive_an_unrelated_update(self):
        prev = lineagex(
            {
                "a": "CREATE VIEW a AS SELECT t.x FROM t; UPDATE a SET x = 1",
                "b": "CREATE VIEW b AS SELECT t.y FROM t",
            }
        )
        assert any("UPDATE" in warning for warning in prev.warnings)
        updated = prev.update({"b": "CREATE VIEW b AS SELECT t.z FROM t"})
        assert any("UPDATE" in warning for warning in updated.warnings)

    def test_ddl_dropped_from_replaced_source(self):
        # a replaced source that no longer declares its CREATE TABLE must
        # drop the schema from the catalog and dirty the readers
        prev = lineagex(
            {"v": "CREATE TABLE t (x integer, y integer); "
                  "CREATE VIEW v AS SELECT * FROM t"}
        )
        assert prev.graph["v"].output_columns == ["x", "y"]
        updated = prev.update({"v": "CREATE VIEW v AS SELECT * FROM t"})
        full = lineagex({"v": "CREATE VIEW v AS SELECT * FROM t"})
        assert updated.catalog.get("t") is None
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_replaced_source_purges_orphaned_entries(self):
        # shrinking a multi-statement source must not leave stale entries
        prev = lineagex(
            {"s": "CREATE VIEW a AS SELECT t.x FROM t; "
                  "CREATE VIEW b AS SELECT t.y FROM t"}
        )
        assert {"a", "b"} <= set(prev.graph.relations)
        updated = prev.update({"s": "CREATE VIEW a AS SELECT t.x FROM t"})
        full = lineagex({"s": "CREATE VIEW a AS SELECT t.x FROM t"})
        assert "b" not in updated.graph
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_removing_a_ddl_bearing_source(self):
        prev = lineagex(
            {
                "schema": "CREATE TABLE t (a integer, b integer)",
                "v": "CREATE VIEW v AS SELECT * FROM t",
            }
        )
        updated = prev.update({"schema": None})
        full = lineagex({"v": "CREATE VIEW v AS SELECT * FROM t"})
        assert updated.catalog.get("t") is None
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_shadowed_cte_does_not_hide_a_dependency(self):
        # a subquery-local CTE named like the changed view must not stop
        # the incremental layer from dirtying the real dependent
        prev = lineagex(
            {
                "sales": "CREATE VIEW sales AS SELECT t.a AS amount FROM t",
                "rpt": "CREATE VIEW rpt AS SELECT s.* FROM sales s JOIN "
                       "(WITH sales AS (SELECT 1 AS one) SELECT one FROM sales) z "
                       "ON 1 = 1",
            }
        )
        updated = prev.update(
            {"sales": "CREATE VIEW sales AS SELECT t.b AS amount2 FROM t"}
        )
        assert "rpt" in updated.report.order
        assert updated.graph["rpt"].output_columns[0] == "amount2"

    def test_removed_source_does_not_erase_unchanged_duplicate_ddl(self):
        # two sources declare the same table; removing one must keep the
        # schema the unchanged source still declares
        prev = lineagex(
            {
                "a": "CREATE TABLE t (x integer, y integer)",
                "b": "CREATE TABLE t (x integer, y integer)",
                "v": "CREATE VIEW v AS SELECT * FROM t",
            }
        )
        updated = prev.update({"a": None})
        full = lineagex(
            {
                "b": "CREATE TABLE t (x integer, y integer)",
                "v": "CREATE VIEW v AS SELECT * FROM t",
            }
        )
        assert updated.catalog.columns_of("t") == ["x", "y"]
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_cross_source_update_statement_still_deduped(self):
        # an UPDATE arriving via a *different* source must not overwrite the
        # CREATE that defines the relation (mirrors the full-run dedup)
        prev = lineagex(
            {
                "a": "CREATE TABLE t (x integer); CREATE VIEW v AS SELECT x FROM t",
                "b": "UPDATE v SET x = 1",
            }
        )
        updated = prev.update({"b": "UPDATE v SET x = 2"})
        full = lineagex(
            {
                "a": "CREATE TABLE t (x integer); CREATE VIEW v AS SELECT x FROM t",
                "b": "UPDATE v SET x = 2",
            }
        )
        assert updated.query_dictionary.get("v").kind == "view"
        assert any("UPDATE" in warning for warning in updated.warnings)
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_removed_relation_redefined_by_another_source(self):
        # removing source 'a' while source 'c' redefines the same relation
        # must keep the new definition
        prev = lineagex(
            {
                "a": "CREATE VIEW a AS SELECT 1 AS x",
                "b": "CREATE VIEW b AS SELECT a.x FROM a",
            }
        )
        updated = prev.update({"a": None, "c": "CREATE VIEW a AS SELECT 2 AS x"})
        full = lineagex(
            {
                "b": "CREATE VIEW b AS SELECT a.x FROM a",
                "c": "CREATE VIEW a AS SELECT 2 AS x",
            }
        )
        assert "a" in updated.graph
        assert not updated.graph["a"].is_base_table
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_window_clause_dependency_dirties_reader(self):
        # a relation referenced only inside a named WINDOW clause (a
        # tuple-valued AST field) must still count as a DAG dependency
        prev = lineagex(
            {
                "dim": "CREATE VIEW dim AS SELECT 1 AS m",
                "v": "CREATE VIEW v AS SELECT sum(a) OVER w AS s FROM t "
                     "WINDOW w AS (PARTITION BY (SELECT m FROM dim))",
            }
        )
        updated = prev.update({"dim": "CREATE VIEW dim AS SELECT 2 AS m, 3 AS n"})
        assert "v" in updated.report.order
        assert "v" not in updated.report.reused

    def test_drop_in_changed_fragment_does_not_supersede_unchanged_create(self):
        # a DROP TABLE in a changed fragment must not erase the CREATE TABLE
        # an unchanged source still declares from the merged dictionary; the
        # delta's DDL applies *after* the carried-over DDL (migration-style),
        # so the equivalent full run orders the changed source last
        prev = lineagex(
            {
                "a": "CREATE VIEW v AS SELECT t.x FROM t",
                "b": "CREATE TABLE t (x integer, y integer)",
            }
        )
        updated = prev.update(
            {"a": "DROP TABLE t; CREATE VIEW v AS SELECT t.x FROM t"}
        )
        # the unchanged CREATE TABLE is still in the merged dictionary ...
        from repro.sqlparser import ast

        assert any(
            isinstance(s, ast.CreateTable)
            for s in updated.query_dictionary.ddl_statements
        )
        # ... and the result equals a full run with the delta's DDL last
        full = lineagex(
            {
                "b": "CREATE TABLE t (x integer, y integer)",
                "a": "DROP TABLE t; CREATE VIEW v AS SELECT t.x FROM t",
            }
        )
        assert updated.catalog.get("t") == full.catalog.get("t")
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_create_in_changed_fragment_supersedes_only_same_relation(self):
        # a CREATE TABLE in a delta replaces the prior schema of that
        # relation but leaves other relations' DDL untouched
        prev = lineagex(
            {
                "ddl": "CREATE TABLE t (x integer); CREATE TABLE u (k integer)",
                "v": "CREATE VIEW v AS SELECT * FROM t",
                "w": "CREATE VIEW w AS SELECT * FROM u",
            }
        )
        updated = prev.update(
            {"patch": "CREATE TABLE t (x integer, z integer)"}
        )
        assert updated.catalog.columns_of("t") == ["x", "z"]
        assert updated.catalog.columns_of("u") == ["k"]
        assert updated.graph["v"].output_columns == ["x", "z"]
        assert updated.graph["w"].output_columns == ["k"]

    def test_cross_source_update_never_overwrites_another_sources_entry(self):
        # the full-run dedup ignores a later UPDATE whenever the identifier
        # is already defined — even when the earlier entry is itself an
        # UPDATE from a different source
        prev = lineagex(
            {
                "a": "UPDATE r SET x = s.a FROM s",
                "b": "CREATE VIEW w AS SELECT t.k FROM t",
            }
        )
        updated = prev.update(
            {"b": "CREATE VIEW w AS SELECT t.k FROM t; UPDATE r SET x = z.q FROM z"}
        )
        full = lineagex(
            {
                "a": "UPDATE r SET x = s.a FROM s",
                "b": "CREATE VIEW w AS SELECT t.k FROM t; UPDATE r SET x = z.q FROM z",
            }
        )
        assert diff_graphs(updated.graph, full.graph).is_identical
        assert any("UPDATE" in warning for warning in updated.warnings)

    def test_ddl_carried_over(self):
        prev = lineagex(
            "CREATE TABLE t (a integer, b integer);"
            "CREATE VIEW v AS SELECT * FROM t;"
            "CREATE VIEW w AS SELECT v.a FROM v"
        )
        updated = prev.update({"w": "CREATE VIEW w AS SELECT v.b FROM v"})
        # the CREATE TABLE DDL still seeds the catalog of the new run
        assert updated.catalog.columns_of("t") == ["a", "b"]
        assert updated.graph["v"].output_columns == ["a", "b"]
        assert updated.report.reused == ["v"]

    def test_incremental_on_generated_warehouse(self):
        warehouse = workload.generate_warehouse(
            num_base_tables=4, num_views=30, seed=13
        )
        sources = dict(warehouse.views)
        runner = LineageXRunner(catalog=warehouse.catalog())
        prev = runner.run(sources)
        # replace one mid-pipeline view with a projection of a base table
        target = "view_5"
        changes = {target: f"CREATE VIEW {target} AS SELECT b.id FROM base_0 b"}
        incremental, full = full_and_incremental(
            prev, changes, runner=runner, sources=sources
        )
        diff = diff_graphs(incremental.graph, full.graph)
        assert diff.is_identical, diff.summary()
        # the dirty set is exactly the change plus its transitive dependents
        from repro.core.dag import DependencyDAG
        from repro.core.preprocess import preprocess

        dag = DependencyDAG.from_query_dictionary(
            preprocess(apply_changes(sources, changes))
        )
        expected_dirty = {target} | dag.transitive_dependents({target})
        assert set(incremental.report.order) == expected_dirty
        assert set(incremental.report.reused) == set(sources) - expected_dirty


class TestResultUpdate:
    def test_update_convenience_matches_run_incremental(self):
        prev = lineagex(dict(SOURCES))
        new_sql = (
            "CREATE VIEW info AS SELECT c.name FROM customers c, webact w "
            "WHERE c.cid = w.wcid"
        )
        updated = prev.update({"info": new_sql})
        full = lineagex({**SOURCES, "info": new_sql})
        assert diff_graphs(updated.graph, full.graph).is_identical
        assert updated.report.order == ["info"]

    def test_update_with_none_removes_the_entry(self):
        prev = lineagex(dict(SOURCES))
        updated = prev.update({"info": None})
        assert "info" not in updated.graph
        full = lineagex({k: v for k, v in SOURCES.items() if k != "info"})
        assert diff_graphs(updated.graph, full.graph).is_identical

    def test_update_adds_new_queries(self):
        prev = lineagex(dict(SOURCES))
        updated = prev.update(
            {"extra": "CREATE VIEW extra AS SELECT info.name FROM info"}
        )
        assert "extra" in updated.graph
        assert updated.report.order == ["extra"]

    def test_update_chain(self):
        # incremental results are themselves updatable
        step1 = lineagex(dict(SOURCES))
        step2 = step1.update(
            {"extra": "CREATE VIEW extra AS SELECT info.name FROM info"}
        )
        step3 = step2.update({"extra": None})
        assert diff_graphs(step3.graph, step1.graph).is_identical

    def test_update_works_from_script_sources(self):
        # the original run need not come from a mapping; deltas are keyed by
        # Query Dictionary identifier either way
        prev = lineagex(example1.QUERY_LOG)
        updated = prev.update(
            {"info": "CREATE VIEW info AS SELECT webact.wcid FROM webact"}
        )
        assert sorted(updated.report.reused) == ["webact", "webinfo"]
        assert updated.graph["info"].output_columns == ["wcid"]
