"""Tests for ColumnName and the TableLineage / LineageGraph data model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.column_refs import ColumnName
from repro.core.lineage import (
    EDGE_BOTH,
    EDGE_CONTRIBUTE,
    EDGE_REFERENCE,
    ColumnEdge,
    LineageGraph,
    TableLineage,
)


class TestColumnName:
    def test_of_normalises(self):
        name = ColumnName.of("Web", "Page")
        assert name.table == "web"
        assert name.column == "page"

    def test_parse_two_parts(self):
        assert ColumnName.parse("web.page") == ColumnName.of("web", "page")

    def test_parse_three_parts(self):
        name = ColumnName.parse("public.web.page")
        assert name.table == "public.web"
        assert name.column == "page"

    def test_parse_rejects_unqualified(self):
        with pytest.raises(ValueError):
            ColumnName.parse("page")

    def test_dotted_and_str(self):
        name = ColumnName.of("web", "page")
        assert name.dotted() == "web.page"
        assert str(name) == "web.page"

    def test_hashable_and_ordered(self):
        a = ColumnName.of("a", "x")
        b = ColumnName.of("b", "x")
        assert len({a, b, ColumnName.of("a", "x")}) == 2
        assert sorted([b, a]) == [a, b]

    @given(
        st.sampled_from(["web", "orders", "Customers", "Public.Orders"]),
        st.sampled_from(["page", "OID", "Name"]),
    )
    def test_round_trip_through_parse(self, table, column):
        name = ColumnName.of(table, column)
        assert ColumnName.parse(str(name)) == name


class TestTableLineage:
    def make_webinfo(self):
        lineage = TableLineage(name="webinfo")
        lineage.add_contribution("wpage", ColumnName.of("web", "page"))
        lineage.add_contribution("wcid", ColumnName.of("customers", "cid"))
        lineage.add_reference(ColumnName.of("web", "cid"))
        lineage.add_reference(ColumnName.of("customers", "cid"))
        return lineage

    def test_output_columns_preserve_order_without_duplicates(self):
        lineage = TableLineage(name="v")
        lineage.add_output_column("a")
        lineage.add_output_column("b")
        lineage.add_output_column("a")
        assert lineage.output_columns == ["a", "b"]

    def test_contributions_accumulate(self):
        lineage = TableLineage(name="v")
        lineage.add_contribution("x", ColumnName.of("t", "a"))
        lineage.add_contribution("x", ColumnName.of("u", "b"))
        assert lineage.contributions["x"] == {
            ColumnName.of("t", "a"),
            ColumnName.of("u", "b"),
        }

    def test_source_tables_tracked(self):
        lineage = self.make_webinfo()
        assert lineage.source_tables == {"web", "customers"}

    def test_both_columns(self):
        lineage = self.make_webinfo()
        assert lineage.both_columns == {ColumnName.of("customers", "cid")}

    def test_referenced_only_columns(self):
        lineage = self.make_webinfo()
        assert lineage.referenced_only_columns == {ColumnName.of("web", "cid")}

    def test_edges_include_reference_fanout(self):
        lineage = self.make_webinfo()
        edges = list(lineage.edges())
        # web.cid is referenced-only -> one reference edge per output column
        reference_targets = {
            edge.target.column
            for edge in edges
            if edge.source == ColumnName.of("web", "cid")
        }
        assert reference_targets == {"wpage", "wcid"}

    def test_contribute_and_reference_merge_to_both(self):
        lineage = self.make_webinfo()
        kinds = {
            (str(edge.source), str(edge.target)): edge.kind for edge in lineage.edges()
        }
        assert kinds[("customers.cid", "webinfo.wcid")] == EDGE_BOTH
        assert kinds[("web.page", "webinfo.wpage")] == EDGE_CONTRIBUTE
        assert kinds[("web.cid", "webinfo.wpage")] == EDGE_REFERENCE

    def test_to_dict_shape(self):
        payload = self.make_webinfo().to_dict()
        assert payload["name"] == "webinfo"
        assert payload["columns"] == ["wpage", "wcid"]
        assert payload["column_lineage"]["wpage"] == ["web.page"]
        assert "customers.cid" in payload["referenced_columns"]

    def test_column_names_qualified(self):
        lineage = self.make_webinfo()
        assert ColumnName.of("webinfo", "wpage") in lineage.column_names()


class TestLineageGraph:
    def build(self):
        graph = LineageGraph()
        view = TableLineage(name="v")
        view.add_contribution("x", ColumnName.of("t", "a"))
        view.add_reference(ColumnName.of("t", "b"))
        graph.add(view)
        graph.register_usage(ColumnName.of("t", "a"))
        graph.register_usage(ColumnName.of("t", "b"))
        return graph

    def test_contains_and_getitem(self):
        graph = self.build()
        assert "v" in graph
        assert graph["v"].name == "v"
        assert graph.get("missing") is None

    def test_views_and_base_tables(self):
        graph = self.build()
        assert [entry.name for entry in graph.views] == ["v"]
        assert [entry.name for entry in graph.base_tables] == ["t"]

    def test_register_usage_accumulates_columns(self):
        graph = self.build()
        assert graph.columns_of("t") == ["a", "b"]

    def test_register_usage_does_not_touch_views(self):
        graph = self.build()
        graph.register_usage(ColumnName.of("t", "c"))
        assert graph.columns_of("t") == ["a", "b", "c"]
        assert graph.columns_of("v") == ["x"]

    def test_register_usage_on_view_returns_the_view_entry(self):
        # Usage hitting an existing *view* must return that entry (so
        # callers can inspect it), but never add usage-derived columns: a
        # view's column set comes from its defining query only.
        graph = self.build()
        entry = graph.register_usage(ColumnName.of("v", "phantom"))
        assert entry is graph["v"]
        assert not entry.is_base_table
        assert graph.columns_of("v") == ["x"]

    def test_register_usage_on_base_table_returns_the_base_entry(self):
        graph = self.build()
        entry = graph.register_usage(ColumnName.of("t", "new_col"))
        assert entry is graph["t"]
        assert entry.is_base_table
        assert "new_col" in graph.columns_of("t")

    def test_table_edges(self):
        graph = self.build()
        assert list(graph.table_edges()) == [("t", "v")]

    def test_edge_filters(self):
        graph = self.build()
        contribute = list(graph.contribution_edges())
        reference = list(graph.reference_edges())
        assert all(edge.kind in (EDGE_CONTRIBUTE, EDGE_BOTH) for edge in contribute)
        assert all(edge.kind in (EDGE_REFERENCE, EDGE_BOTH) for edge in reference)

    def test_stats_counts(self):
        stats = self.build().stats()
        assert stats["num_views"] == 1
        assert stats["num_base_tables"] == 1
        assert stats["num_view_columns"] == 1
        assert stats["num_column_edges"] == 2

    def test_neighbors_downstream_and_upstream(self):
        graph = self.build()
        downstream = graph.neighbors(ColumnName.of("t", "a"))
        assert [(str(c), kind) for c, kind in downstream] == [("v.x", EDGE_CONTRIBUTE)]
        upstream = graph.neighbors("v.x", direction="upstream")
        assert {str(c) for c, _ in upstream} == {"t.a", "t.b"}

    def test_neighbors_unknown_column_is_empty(self):
        graph = self.build()
        assert graph.neighbors("ghost.col") == []

    def test_neighbors_invalid_direction(self):
        import pytest

        with pytest.raises(ValueError):
            self.build().neighbors("t.a", direction="sideways")

    def test_index_invalidated_by_graph_mutation(self):
        graph = self.build()
        assert graph.neighbors("t.a")  # build the index
        extra = TableLineage(name="w")
        extra.add_contribution("y", ColumnName.of("v", "x"))
        graph.add(extra)
        assert [(str(c), k) for c, k in graph.neighbors("v.x")] == [
            ("w.y", EDGE_CONTRIBUTE)
        ]

    def test_index_invalidated_by_entry_mutation_after_add(self):
        # base tables gain columns from usage *after* being added to the
        # graph; the cached adjacency must observe those in-place mutations
        graph = self.build()
        assert ("t", "v") in list(graph.table_edges())
        graph["v"].add_contribution("x", ColumnName.of("u", "z"))
        assert ("u", "v") in list(graph.table_edges())
        assert [(str(c), k) for c, k in graph.neighbors("u.z")] == [
            ("v.x", EDGE_CONTRIBUTE)
        ]

    def test_round_trip_through_dict(self):
        graph = self.build()
        rebuilt = LineageGraph.from_dict(graph.to_dict())
        assert {entry.name for entry in rebuilt} == {entry.name for entry in graph}
        assert sorted(map(str, rebuilt["v"].referenced)) == sorted(
            map(str, graph["v"].referenced)
        )
        assert [
            (str(e.source), str(e.target), e.kind) for e in rebuilt.edges()
        ] == [(str(e.source), str(e.target), e.kind) for e in graph.edges()]

    def test_len_and_iter(self):
        graph = self.build()
        assert len(graph) == 2
        assert {entry.name for entry in graph} == {"v", "t"}

    def test_column_edge_ordering(self):
        edge_a = ColumnEdge(ColumnName.of("a", "x"), ColumnName.of("b", "y"))
        edge_b = ColumnEdge(ColumnName.of("a", "x"), ColumnName.of("b", "z"))
        assert sorted([edge_b, edge_a])[0] == edge_a
