"""Tests for the SQL Preprocessing Module (Query Dictionary construction)."""

import os

import pytest

from repro.core.preprocess import preprocess
from repro.datasets import example1
from repro.sqlparser import ast


class TestIdentifiers:
    def test_create_view_uses_view_name(self):
        qd = preprocess("CREATE VIEW webinfo AS SELECT a FROM t")
        assert qd.identifiers() == ["webinfo"]
        assert qd["webinfo"].kind == "view"

    def test_create_table_as_uses_table_name(self):
        qd = preprocess("CREATE TABLE snapshot AS SELECT a FROM t")
        assert qd.identifiers() == ["snapshot"]
        assert qd["snapshot"].kind == "table"

    def test_insert_select_uses_target_table(self):
        qd = preprocess("INSERT INTO audit SELECT a FROM t")
        assert qd.identifiers() == ["audit"]
        assert qd["audit"].kind == "insert"

    def test_bare_select_gets_generated_id(self):
        qd = preprocess("SELECT a FROM t; SELECT b FROM u")
        assert qd.identifiers() == ["query_1", "query_2"]
        assert qd["query_1"].kind == "select"

    def test_custom_id_generator(self):
        qd = preprocess("SELECT a FROM t", id_generator=lambda n: f"anon_{n:03d}")
        assert qd.identifiers() == ["anon_001"]

    def test_identifier_normalised(self):
        qd = preprocess('CREATE VIEW "MyView" AS SELECT a FROM t')
        assert qd.identifiers() == ["myview"]

    def test_schema_qualified_identifier(self):
        qd = preprocess("CREATE VIEW analytics.daily AS SELECT a FROM t")
        assert qd.identifiers() == ["analytics.daily"]

    def test_declared_column_names_recorded(self):
        qd = preprocess("CREATE VIEW v (x, y) AS SELECT a, b FROM t")
        assert qd["v"].column_names == ["x", "y"]

    def test_redefinition_keeps_latest_and_warns(self):
        qd = preprocess(
            "CREATE VIEW v AS SELECT a FROM t; CREATE VIEW v AS SELECT b FROM u"
        )
        assert len(qd) == 1
        assert qd.warnings
        assert "u" in str([t.name.dotted() for t in qd["v"].statement.query.from_sources])


class TestInputShapes:
    def test_list_of_scripts(self):
        qd = preprocess([example1.Q1, example1.Q2, example1.Q3])
        assert qd.identifiers() == ["info", "webact", "webinfo"]

    def test_dict_uses_keys_for_bare_selects(self):
        qd = preprocess({"model_a": "SELECT a FROM t", "model_b": "SELECT b FROM u"})
        assert qd.identifiers() == ["model_a", "model_b"]

    def test_dict_create_statement_still_uses_created_name(self):
        qd = preprocess({"file_name": "CREATE VIEW real_name AS SELECT a FROM t"})
        assert qd.identifiers() == ["real_name"]

    def test_sql_file_path(self, tmp_path):
        path = tmp_path / "customer.sql"
        path.write_text(example1.QUERY_LOG)
        qd = preprocess(str(path))
        assert set(qd.identifiers()) == {"info", "webact", "webinfo"}

    def test_directory_of_sql_files_uses_file_names(self, tmp_path):
        (tmp_path / "first_model.sql").write_text("SELECT a FROM t")
        (tmp_path / "second_model.sql").write_text("SELECT b FROM u")
        qd = preprocess(str(tmp_path))
        assert qd.identifiers() == ["first_model", "second_model"]

    def test_pathlike_input(self, tmp_path):
        path = tmp_path / "one.sql"
        path.write_text("SELECT 1")
        qd = preprocess(path)
        assert len(qd) == 1

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            preprocess(42)

    def test_plain_sql_not_mistaken_for_path(self):
        qd = preprocess("SELECT 1")
        assert len(qd) == 1


class TestDDLAndSkips:
    def test_create_table_ddl_collected_separately(self):
        qd = preprocess(
            "CREATE TABLE t (a integer); CREATE VIEW v AS SELECT a FROM t"
        )
        assert len(qd) == 1
        assert len(qd.ddl_statements) == 1
        assert isinstance(qd.ddl_statements[0], ast.CreateTable)

    def test_drop_statement_is_ddl(self):
        qd = preprocess("DROP TABLE old; CREATE VIEW v AS SELECT 1")
        assert len(qd.ddl_statements) == 1

    def test_insert_values_skipped_with_warning(self):
        qd = preprocess("INSERT INTO t (a) VALUES (1)")
        assert len(qd) == 0
        assert qd.warnings

    def test_example1_order_preserved(self):
        qd = preprocess(example1.QUERY_LOG)
        assert qd.identifiers() == ["info", "webact", "webinfo"]
        assert "webact" in qd
        assert qd.get("nonexistent") is None

    def test_items_iteration(self):
        qd = preprocess(example1.QUERY_LOG)
        names = [identifier for identifier, _ in qd.items()]
        assert names == qd.identifiers()

    def test_entry_sql_is_reproducible(self):
        qd = preprocess("CREATE VIEW v AS SELECT a FROM t")
        assert "SELECT" in qd["v"].sql.upper()
