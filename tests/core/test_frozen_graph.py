"""FrozenLineageGraph: the immutable snapshot view behind the daemon."""

import pytest

from repro.core.column_refs import ColumnName
from repro.core.lineage import (
    FrozenGraphError,
    FrozenLineageGraph,
    LineageGraph,
    TableLineage,
)
from repro.output.registry import render


def _graph():
    graph = LineageGraph()
    graph.ensure_base_table("t1", ["a", "b"])
    view = TableLineage(name="v1", sql="CREATE VIEW v1 AS SELECT a FROM t1")
    view.add_contribution("a", ColumnName.of("t1", "a"))
    view.source_tables = {"t1"}
    graph.add(view)
    return graph


class TestFreeze:
    def test_freeze_returns_an_equivalent_readonly_view(self):
        graph = _graph()
        frozen = graph.freeze()
        assert isinstance(frozen, FrozenLineageGraph)
        assert sorted(frozen.relations) == sorted(graph.relations)
        assert frozen.stats() == graph.stats()
        assert render(frozen, "csv") == render(graph, "csv")
        assert render(frozen, "json") == render(graph, "json")

    def test_freeze_of_frozen_is_itself(self):
        frozen = _graph().freeze()
        assert frozen.freeze() is frozen

    def test_lookup_surface_still_works(self):
        frozen = _graph().freeze()
        assert "v1" in frozen
        assert frozen["v1"].name == "v1"
        assert frozen.get("missing") is None
        assert sorted(entry.name for entry in frozen) == ["t1", "v1"]
        assert [entry.name for entry in frozen.views] == ["v1"]

    def test_adjacency_index_is_prebuilt_and_pinned(self):
        frozen = _graph().freeze()
        index = frozen._ensure_index()
        assert index is frozen._ensure_index()
        downstream = frozen.column_adjacency("downstream")
        assert ColumnName.of("v1", "a") in downstream[ColumnName.of("t1", "a")]


class TestImmutability:
    def test_all_mutators_raise(self):
        frozen = _graph().freeze()
        with pytest.raises(FrozenGraphError):
            frozen.add(TableLineage(name="v2"))
        with pytest.raises(FrozenGraphError):
            frozen.ensure_base_table("t2", ["x"])
        with pytest.raises(FrozenGraphError):
            frozen.register_usage("t1.a")

    def test_frozen_error_is_a_type_error(self):
        # callers treating it as the generic "you cannot do that" exception
        # do not need to import the specific class
        assert issubclass(FrozenGraphError, TypeError)

    def test_later_additions_to_the_live_graph_are_invisible(self):
        graph = _graph()
        frozen = graph.freeze()
        edges_before = render(frozen, "csv")
        view = TableLineage(name="v2", sql="CREATE VIEW v2 AS SELECT a FROM v1")
        view.add_contribution("a", ColumnName.of("v1", "a"))
        view.source_tables = {"v1"}
        graph.add(view)
        graph.register_usage(ColumnName.of("t1", "b"))
        assert "v2" not in frozen
        assert render(frozen, "csv") == edges_before
        # while the live graph sees its own change
        assert "v2" in graph

    def test_subgraph_of_frozen_is_mutable_again(self):
        frozen = _graph().freeze()
        derived = frozen.subgraph(["v1"])
        assert not isinstance(derived, FrozenLineageGraph)
        derived.ensure_base_table("t9", ["z"])  # must not raise
