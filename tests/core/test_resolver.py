"""Tests for scopes, source bindings, ambiguity handling, and star expansion."""

import pytest

from repro.core.column_refs import ColumnName
from repro.core.errors import AmbiguousColumnError
from repro.core.resolver import Resolution, Scope, SourceBinding


def relation(name, columns, alias=None):
    return SourceBinding(
        name=alias or name, kind="relation", relation_name=name, columns=columns
    )


def derived(name, column_map, columns=None):
    return SourceBinding(
        name=name,
        kind="cte",
        columns=list(column_map) if columns is None else columns,
        column_map={k: set(v) for k, v in column_map.items()},
    )


class TestSourceBinding:
    def test_relation_expand_is_identity(self):
        binding = relation("web", ["cid", "page"])
        assert binding.expand("page") == {ColumnName.of("web", "page")}

    def test_expand_prefers_column_map(self):
        binding = derived("w", {"wpage": {ColumnName.of("web", "page")}})
        assert binding.expand("wpage") == {ColumnName.of("web", "page")}

    def test_unknown_schema_has_column_returns_none(self):
        binding = relation("ext", None)
        assert binding.has_column("x") is None
        assert binding.has_known_columns() is False

    def test_has_column_case_insensitive(self):
        binding = relation("t", ["Amount"])
        assert binding.has_column("amount") is True
        assert binding.has_column("other") is False

    def test_all_tables_for_relation_and_derived(self):
        assert relation("public.web", ["a"]).all_tables() == {"public.web"}
        cte = derived("x", {"a": {ColumnName.of("t", "a")}})
        cte.source_tables = {"t"}
        assert cte.all_tables() == {"t"}


class TestQualifiedResolution:
    def test_resolve_by_alias(self):
        scope = Scope()
        scope.add_binding(relation("customers", ["cid", "name"], alias="c"))
        resolution = scope.resolve_column("c", "name")
        assert resolution.sources == {ColumnName.of("customers", "name")}
        assert not resolution.ambiguous

    def test_resolve_by_bare_table_name_despite_alias(self):
        scope = Scope()
        scope.add_binding(relation("public.customers", ["cid"], alias="c"))
        resolution = scope.resolve_column("customers", "cid")
        assert resolution.sources == {ColumnName.of("public.customers", "cid")}

    def test_unknown_qualifier_is_treated_as_external_relation(self):
        scope = Scope()
        scope.add_binding(relation("t", ["a"]))
        resolution = scope.resolve_column("mystery", "col")
        assert resolution.unresolved is True
        assert resolution.sources == {ColumnName.of("mystery", "col")}

    def test_outer_scope_visible_for_correlated_references(self):
        outer = Scope()
        outer.add_binding(relation("orders", ["oid", "cid"], alias="o"))
        inner = Scope(parent=outer)
        inner.add_binding(relation("items", ["oid", "pid"], alias="i"))
        resolution = inner.resolve_column("o", "cid")
        assert resolution.sources == {ColumnName.of("orders", "cid")}


class TestUnqualifiedResolution:
    def test_unique_known_source(self):
        scope = Scope()
        scope.add_binding(relation("customers", ["cid", "name"]))
        scope.add_binding(relation("orders", ["oid"]))
        resolution = scope.resolve_column(None, "name")
        assert resolution.sources == {ColumnName.of("customers", "name")}

    def test_ambiguous_known_sources_attributed_to_all(self):
        scope = Scope()
        scope.add_binding(relation("customers", ["cid"]))
        scope.add_binding(relation("orders", ["cid"]))
        resolution = scope.resolve_column(None, "cid")
        assert resolution.ambiguous is True
        assert resolution.sources == {
            ColumnName.of("customers", "cid"),
            ColumnName.of("orders", "cid"),
        }

    def test_ambiguous_raises_in_strict_mode(self):
        scope = Scope()
        scope.add_binding(relation("customers", ["cid"]))
        scope.add_binding(relation("orders", ["cid"]))
        with pytest.raises(AmbiguousColumnError):
            scope.resolve_column(None, "cid", strict=True)

    def test_known_source_wins_over_unknown(self):
        scope = Scope()
        scope.add_binding(relation("known", ["amount"]))
        scope.add_binding(relation("unknown_ext", None))
        resolution = scope.resolve_column(None, "amount")
        assert resolution.sources == {ColumnName.of("known", "amount")}

    def test_single_unknown_source_gets_the_column(self):
        scope = Scope()
        scope.add_binding(relation("known", ["a"]))
        scope.add_binding(relation("ext", None))
        resolution = scope.resolve_column(None, "mystery_col")
        assert resolution.sources == {ColumnName.of("ext", "mystery_col")}

    def test_nothing_matches_is_unresolved(self):
        scope = Scope()
        scope.add_binding(relation("t", ["a"]))
        resolution = scope.resolve_column(None, "zzz")
        assert resolution.unresolved is True
        assert resolution.sources == set()

    def test_multiple_unknown_sources_marked_ambiguous(self):
        scope = Scope()
        scope.add_binding(relation("ext1", None))
        scope.add_binding(relation("ext2", None))
        resolution = scope.resolve_column(None, "x")
        assert resolution.ambiguous is True
        assert len(resolution.sources) == 2


class TestStarExpansion:
    def test_unqualified_star_expands_all_sources_in_order(self):
        scope = Scope()
        scope.add_binding(relation("customers", ["cid", "name"], alias="c"))
        scope.add_binding(relation("orders", ["oid"], alias="o"))
        expansion = scope.expand_star()
        assert [column for column, _ in expansion] == ["cid", "name", "oid"]

    def test_qualified_star_expands_single_source(self):
        scope = Scope()
        scope.add_binding(relation("customers", ["cid"], alias="c"))
        scope.add_binding(relation("orders", ["oid"], alias="o"))
        expansion = scope.expand_star("o")
        assert expansion == [("oid", {ColumnName.of("orders", "oid")})]

    def test_star_over_derived_source_composes(self):
        scope = Scope()
        scope.add_binding(
            derived("w", {"wpage": {ColumnName.of("web", "page")}}, columns=["wpage"])
        )
        expansion = scope.expand_star("w")
        assert expansion == [("wpage", {ColumnName.of("web", "page")})]

    def test_star_over_unknown_schema_degrades_to_wildcard(self):
        scope = Scope()
        scope.add_binding(relation("ext", None))
        expansion = scope.expand_star("ext")
        assert expansion == [("*", {ColumnName.of("ext", "*")})]

    def test_star_over_unknown_qualifier_degrades_to_wildcard(self):
        scope = Scope()
        expansion = scope.expand_star("ghost")
        assert expansion == [("*", {ColumnName.of("ghost", "*")})]

    def test_mixed_known_and_unknown_sources(self):
        scope = Scope()
        scope.add_binding(relation("known", ["a"]))
        scope.add_binding(relation("ext", None))
        expansion = scope.expand_star()
        assert ("a", {ColumnName.of("known", "a")}) in expansion
        assert ("*", {ColumnName.of("ext", "*")}) in expansion


class TestCTERegistry:
    def test_find_cte_in_current_scope(self):
        scope = Scope()
        binding = derived("recent", {"cid": {ColumnName.of("orders", "cid")}})
        scope.add_cte("recent", binding)
        assert scope.find_cte("recent") is binding
        assert scope.find_cte("RECENT") is binding

    def test_find_cte_in_enclosing_scope(self):
        outer = Scope()
        binding = derived("x", {"a": {ColumnName.of("t", "a")}})
        outer.add_cte("x", binding)
        inner = Scope(parent=outer)
        assert inner.find_cte("x") is binding

    def test_missing_cte_returns_none(self):
        assert Scope().find_cte("nope") is None
