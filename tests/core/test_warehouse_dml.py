"""End-to-end lineage extraction for the warehouse DML surface.

One extractor test per construct (MERGE, INSERT ... ON CONFLICT DO UPDATE,
QUALIFY, GROUPING SETS/ROLLUP/CUBE, unnest/generate_series), each verified
in both the static engine and the plan (simulated-EXPLAIN) engine, plus the
scheduling semantics the constructs introduce: cross-source dedup for
MERGE, and write-target shadowing (a pending MERGE/UPDATE entry shadows the
same-named catalog table regardless of statement order).
"""

import pytest

from repro.catalog import Catalog
from repro.core.preprocess import preprocess
from repro.core.plan_extractor import lineagex_with_connection
from repro.core.runner import LineageXRunner, lineagex


def _catalog():
    catalog = Catalog()
    catalog.create_table(
        "tgt", [("id", "int"), ("amount", "int"), ("status", "text")]
    )
    catalog.create_table(
        "src",
        [("id", "int"), ("amount", "int"), ("status", "text"), ("flag", "bool")],
    )
    return catalog


def _edges(result):
    return sorted(
        (str(edge.source), str(edge.target), edge.kind)
        for edge in result.graph.edges()
    )


ENGINES = [
    pytest.param(lambda sql: lineagex(sql, catalog=_catalog()), id="static"),
    pytest.param(
        lambda sql: lineagex_with_connection(sql, catalog=_catalog()), id="plan"
    ),
]


@pytest.mark.parametrize("run", ENGINES)
class TestConstructs:
    def test_merge_lineage(self, run):
        result = run(
            "MERGE INTO tgt AS t USING src AS s ON t.id = s.id "
            "WHEN MATCHED AND s.flag THEN UPDATE SET amount = s.amount "
            "WHEN NOT MATCHED THEN INSERT (id, amount) VALUES (s.id, s.amount)"
        )
        assert not result.report.unresolved
        edges = _edges(result)
        # contributions flow from the USING source into the target columns
        assert ("src.amount", "tgt.amount", "contribute") in edges
        # the match condition references columns of BOTH source and target
        assert ("src.id", "tgt.id", "both") in edges
        assert any(edge[0] == "tgt.id" and edge[2] == "reference" for edge in edges)
        # the WHEN ... AND guard column is a reference
        assert any(edge[0] == "src.flag" for edge in edges)
        entry = result.query_dictionary.get("tgt")
        assert entry.kind == "merge"

    def test_insert_on_conflict_lineage(self, run):
        result = run(
            "INSERT INTO tgt (id, amount) SELECT s.id, s.amount FROM src s "
            "ON CONFLICT (id) DO UPDATE SET amount = excluded.amount"
        )
        assert not result.report.unresolved
        edges = _edges(result)
        assert ("src.id", "tgt.id", "contribute") in edges
        assert ("src.amount", "tgt.amount", "contribute") in edges
        # the conflict-target column references the target table
        assert any(edge[0] == "tgt.id" and edge[2] == "reference" for edge in edges)

    def test_qualify_lineage(self, run):
        result = run(
            "CREATE VIEW ranked AS SELECT s.id, s.amount, "
            "row_number() OVER (PARTITION BY s.status ORDER BY s.amount) AS rn "
            "FROM src s QUALIFY rn = 1"
        )
        assert not result.report.unresolved
        edges = _edges(result)
        assert ("src.id", "ranked.id", "contribute") in edges
        # QUALIFY rn = 1 resolves the projection alias -> the window inputs
        # become references of every column rn depends on
        assert ("src.status", "ranked.rn", "reference") in edges
        assert ("src.amount", "ranked.rn", "reference") in edges

    def test_grouping_sets_lineage(self, run):
        result = run(
            "CREATE VIEW grouped AS SELECT s.status, s.flag, count(*) AS n "
            "FROM src s GROUP BY GROUPING SETS ((s.status, s.flag), (s.status), ())"
        )
        assert not result.report.unresolved
        edges = _edges(result)
        assert ("src.status", "grouped.status", "both") in edges
        assert ("src.flag", "grouped.flag", "both") in edges

    def test_rollup_and_cube_lineage(self, run):
        result = run(
            "CREATE VIEW rolled AS SELECT s.status, sum(s.amount) AS total "
            "FROM src s GROUP BY ROLLUP (s.status);"
            "CREATE VIEW cubed AS SELECT s.flag, count(*) AS n "
            "FROM src s GROUP BY CUBE (s.flag)"
        )
        assert not result.report.unresolved
        edges = _edges(result)
        assert ("src.status", "rolled.status", "both") in edges
        assert ("src.flag", "cubed.flag", "both") in edges

    def test_unnest_and_generate_series_lineage(self, run):
        result = run(
            "CREATE VIEW expanded AS SELECT s.id, u.item "
            "FROM src s CROSS JOIN unnest(s.status) AS u(item);"
            "CREATE VIEW stepped AS SELECT s.id, g.step "
            "FROM src s CROSS JOIN generate_series(1, 5) AS g(step)"
        )
        assert not result.report.unresolved
        edges = _edges(result)
        assert ("src.id", "expanded.id", "contribute") in edges
        # the unnested argument column is referenced by the expansion
        assert any(
            edge[0] == "src.status" and edge[1].startswith("expanded.")
            for edge in edges
        )
        assert ("src.id", "stepped.id", "contribute") in edges


class TestSchedulingSemantics:
    def test_merge_never_overwrites_an_earlier_definition(self):
        dictionary = preprocess(
            "CREATE VIEW rel AS SELECT s.id FROM src s;"
            "MERGE INTO rel USING src AS s ON rel.id = s.id "
            "WHEN MATCHED THEN UPDATE SET id = s.id"
        )
        assert dictionary.get("rel").kind == "view"
        assert any("MERGE on 'rel' ignored" in warning for warning in dictionary.warnings)

    def test_merge_defines_relation_when_nothing_else_does(self):
        dictionary = preprocess(
            "MERGE INTO rel USING src AS s ON rel.id = s.id "
            "WHEN MATCHED THEN UPDATE SET id = s.id"
        )
        assert dictionary.get("rel").kind == "merge"

    def test_merge_target_includes_itself_in_table_refs(self):
        dictionary = preprocess(
            "MERGE INTO tgt USING src AS s ON tgt.id = s.id "
            "WHEN MATCHED THEN UPDATE SET id = s.id"
        )
        entry = dictionary.get("tgt")
        assert "tgt" in entry.table_refs()
        assert entry.dependencies() == {"src"}

    def test_pending_write_target_shadows_catalog_in_stack_mode(self):
        """A reader processed before the MERGE must defer to it, not fall
        back to the same-named catalog table — statement order must not
        change the result (the differential harness's core invariant)."""
        sql = (
            # the reader comes FIRST, the MERGE defining tgt's entry second
            "CREATE VIEW reader AS SELECT t.* FROM tgt t;"
            "MERGE INTO tgt USING src AS s ON tgt.id = s.id "
            "WHEN MATCHED THEN UPDATE SET amount = s.amount"
        )
        dag_result = LineageXRunner(catalog=_catalog(), mode="dag").run(sql)
        stack_result = LineageXRunner(catalog=_catalog(), mode="stack").run(sql)
        assert _edges(dag_result) == _edges(stack_result)
        # the star expands to the MERGE entry's output columns in both modes
        reader = dag_result.graph.get("reader")
        assert reader.output_columns == ["amount"]

    def test_incremental_merge_dedup_mirrors_full_run(self):
        sources = {
            "rel": "CREATE VIEW rel AS SELECT s.id FROM src s",
            "other": "CREATE VIEW other AS SELECT s.flag FROM src s",
        }
        runner = LineageXRunner(catalog=_catalog())
        first = runner.run(sources)
        # a delta turning 'other' into a MERGE on rel must not overwrite
        # the view definition another unchanged source still provides
        updated = first.update(
            {
                "other": (
                    "MERGE INTO rel USING src AS s ON rel.id = s.id "
                    "WHEN MATCHED THEN UPDATE SET id = s.id"
                )
            }
        )
        assert updated.query_dictionary.get("rel").kind == "view"
        assert any(
            "MERGE on 'rel' ignored" in warning for warning in updated.warnings
        )

    def test_insert_values_upsert_is_skipped(self):
        dictionary = preprocess(
            "INSERT INTO tgt (id) VALUES (1) ON CONFLICT (id) DO UPDATE SET id = 2"
        )
        assert len(dictionary) == 0
        assert dictionary.warnings
