"""Tests for the dependency-DAG pre-pass and the plan-first scheduler.

Covers the three guarantees of the new engine:

* the DAG plan reproduces exactly the graph the reactive stack produces
  (equivalence on the integration corpora);
* wave parallelism is deterministic — the same graph and report for any
  worker count;
* the plan degrades gracefully (cycles, self-references, external tables).
"""

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.dag import DependencyDAG, statement_dependencies
from repro.core.errors import CyclicDependencyError
from repro.core.preprocess import preprocess
from repro.core.runner import lineagex
from repro.core.scheduler import AutoInferenceScheduler
from repro.datasets import example1, mimic, retail, workload


def build_dag(sql):
    return DependencyDAG.from_query_dictionary(preprocess(sql))


class TestStatementDependencies:
    def test_from_and_join_sources_collected(self):
        qd = preprocess(
            "CREATE VIEW v AS SELECT a.x, b.y FROM a JOIN b ON a.id = b.id"
        )
        assert statement_dependencies(qd.get("v")) == {"a", "b"}

    def test_set_operation_sources_collected(self):
        qd = preprocess(
            "CREATE VIEW v AS SELECT x FROM a UNION SELECT x FROM b"
        )
        assert statement_dependencies(qd.get("v")) == {"a", "b"}

    def test_subquery_sources_collected(self):
        qd = preprocess(
            "CREATE VIEW v AS SELECT x FROM (SELECT x FROM inner_t) sub "
            "WHERE x IN (SELECT k FROM filter_t)"
        )
        assert statement_dependencies(qd.get("v")) == {"inner_t", "filter_t"}

    def test_cte_names_excluded(self):
        qd = preprocess(
            "CREATE VIEW v AS WITH c AS (SELECT x FROM real_table) "
            "SELECT x FROM c"
        )
        assert statement_dependencies(qd.get("v")) == {"real_table"}

    def test_cte_scoping_is_lexical(self):
        # a subquery-local CTE named like a real relation must not hide the
        # outer dependency on that relation
        qd = preprocess(
            "CREATE VIEW rpt AS SELECT s.amount FROM sales s JOIN "
            "(WITH sales AS (SELECT 1 AS one) SELECT one FROM sales) z "
            "ON s.amount = z.one"
        )
        assert statement_dependencies(qd.get("rpt")) == {"sales"}

    def test_cte_body_sees_preceding_ctes(self):
        qd = preprocess(
            "CREATE VIEW v AS WITH a AS (SELECT x FROM t), "
            "b AS (SELECT x FROM a) SELECT x FROM b"
        )
        assert statement_dependencies(qd.get("v")) == {"t"}

    def test_self_reference_excluded(self):
        qd = preprocess("CREATE VIEW a AS SELECT a.* FROM a")
        assert statement_dependencies(qd.get("a")) == set()


class TestDependencyDAG:
    def test_example1_edges(self):
        # dependencies are *internal* (Query Dictionary entries only);
        # external base tables like customers/orders appear in `readers`
        dag = build_dag(example1.QUERY_LOG)
        assert dag.to_dict() == {
            "info": ["webact"],
            "webact": ["webinfo"],
            "webinfo": [],
        }
        assert dag.readers["customers"] == {"info", "webinfo"}
        assert dag.readers["orders"] == {"info"}

    def test_example1_waves(self):
        dag = build_dag(example1.QUERY_LOG)
        waves, deferred = dag.waves()
        assert waves == [["webinfo"], ["webact"], ["info"]]
        assert deferred == []

    def test_external_tables_are_not_nodes_but_have_readers(self):
        dag = build_dag(example1.QUERY_LOG)
        assert "web" not in dag.dependencies
        assert dag.readers["web"] == {"webinfo", "webact"}

    def test_waves_tie_break_by_insertion_order(self):
        sql = """
        CREATE VIEW z AS SELECT t.x FROM t;
        CREATE VIEW a AS SELECT t.y FROM t;
        CREATE VIEW m AS SELECT z.x, a.y FROM z, a;
        """
        waves, _ = build_dag(sql).waves()
        assert waves == [["z", "a"], ["m"]]

    def test_cycle_members_deferred(self):
        sql = """
        CREATE VIEW a AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        CREATE VIEW ok AS SELECT t.x FROM t;
        """
        waves, deferred = build_dag(sql).waves()
        assert waves == [["ok"]]
        assert set(deferred) == {"a", "b"}

    def test_transitive_dependents(self):
        dag = build_dag(example1.QUERY_LOG)
        assert dag.transitive_dependents({"webinfo"}) == {"webact", "info"}
        assert dag.transitive_dependents({"web"}) == {"webinfo", "webact", "info"}
        assert dag.transitive_dependents({"info"}) == set()

    def test_topological_order_flattens_waves(self):
        dag = build_dag(example1.QUERY_LOG)
        assert dag.topological_order() == ["webinfo", "webact", "info"]

    def test_stats(self):
        stats = build_dag(example1.QUERY_LOG).stats()
        assert stats["num_nodes"] == 3
        assert stats["num_edges"] == 2
        assert stats["num_waves"] == 3
        assert stats["num_cyclic"] == 0


class TestPlanFirstScheduler:
    def run_mode(self, sql, mode, **kwargs):
        scheduler = AutoInferenceScheduler(preprocess(sql), mode=mode, **kwargs)
        return scheduler.run()

    def test_dag_mode_needs_no_deferrals_on_shuffled_input(self):
        graph, report = self.run_mode(example1.QUERY_LOG, "dag")
        assert report.mode == "dag"
        assert report.deferral_count == 0
        assert report.order == ["webinfo", "webact", "info"]

    def test_cycle_still_raises_in_dag_mode(self):
        sql = """
        CREATE VIEW a AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        """
        with pytest.raises(CyclicDependencyError):
            self.run_mode(sql, "dag")

    def test_self_reference_degrades_gracefully_in_dag_mode(self):
        graph, report = self.run_mode("CREATE VIEW a AS SELECT a.* FROM a", "dag")
        assert "a" in graph
        assert not report.unresolved

    def test_use_stack_false_forces_reactive_mode(self):
        scheduler = AutoInferenceScheduler(
            preprocess(example1.QUERY_LOG), use_stack=False, mode="dag"
        )
        graph, report = scheduler.run()
        assert report.mode == "stack"
        # single-pass degradation is preserved for the ablation benchmark
        assert graph["info"].output_columns[-1] == "*"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            AutoInferenceScheduler(preprocess("SELECT 1"), mode="bogus")


class TestDagStackEquivalence:
    """The plan-first engine must produce byte-identical lineage."""

    CORPORA = {
        "example1": lambda: example1.QUERY_LOG,
        "retail": lambda: retail.FULL_SCRIPT,
        "mimic": lambda: mimic.full_script(shuffle_seed=11),
    }

    @pytest.mark.parametrize("corpus", sorted(CORPORA))
    def test_same_graph_as_stack_mode(self, corpus):
        source = self.CORPORA[corpus]()
        dag_result = lineagex(source, mode="dag")
        stack_result = lineagex(source, mode="stack")
        diff = diff_graphs(dag_result.graph, stack_result.graph)
        assert diff.is_identical, diff.summary()
        assert dag_result.report.unresolved == stack_result.report.unresolved

    def test_same_graph_on_generated_warehouses(self):
        for seed in (3, 11):
            warehouse = workload.generate_warehouse(
                num_base_tables=4, num_views=25, seed=seed
            )
            source = warehouse.shuffled_script()
            dag_result = lineagex(source, catalog=warehouse.catalog(), mode="dag")
            stack_result = lineagex(source, catalog=warehouse.catalog(), mode="stack")
            diff = diff_graphs(dag_result.graph, stack_result.graph)
            assert diff.is_identical, f"seed {seed}: {diff.summary()}"


class TestWaveParallelism:
    def test_worker_counts_agree(self):
        warehouse = workload.generate_warehouse(
            num_base_tables=4, num_views=30, seed=7
        )
        source = warehouse.shuffled_script()
        catalog = warehouse.catalog()
        sequential = lineagex(source, catalog=catalog)
        for workers in (1, 4):
            parallel = lineagex(source, catalog=catalog, workers=workers)
            diff = diff_graphs(parallel.graph, sequential.graph)
            assert diff.is_identical, f"workers={workers}: {diff.summary()}"
            # determinism extends to the report: same order, same waves
            assert parallel.report.order == sequential.report.order
            assert parallel.report.waves == sequential.report.waves

    def test_parallel_example1(self):
        parallel = lineagex(example1.QUERY_LOG, workers=4)
        sequential = lineagex(example1.QUERY_LOG)
        assert diff_graphs(parallel.graph, sequential.graph).is_identical
        assert parallel.report.order == ["webinfo", "webact", "info"]
