"""Extractor tests for the harder SQL features the paper calls out:
CTEs, subqueries, stars, set operations with intermediates, ambiguity.
"""

import pytest

from repro.catalog import Catalog
from repro.core.column_refs import ColumnName
from repro.core.errors import AmbiguousColumnError
from repro.core.extractor import CatalogSchemaProvider, LineageExtractor
from repro.sqlparser import parse_one
from repro.sqlparser.visitor import query_of


def col(table, column):
    return ColumnName.of(table, column)


def extract(sql, catalog=None, strict=False, name="v"):
    provider = CatalogSchemaProvider(catalog) if catalog is not None else None
    extractor = LineageExtractor(provider=provider, strict=strict, collect_trace=True)
    lineage, trace = extractor.extract(name, query_of(parse_one(sql)))
    return lineage, trace


class TestCTEs:
    def test_cte_is_traced_through_to_real_tables(self):
        lineage, _ = extract(
            "WITH recent AS (SELECT o.cid, o.amount FROM orders o WHERE o.odate > '2024-01-01') "
            "SELECT r.cid, r.amount FROM recent r"
        )
        assert lineage.contributions["cid"] == {col("orders", "cid")}
        assert lineage.contributions["amount"] == {col("orders", "amount")}
        assert "recent" not in lineage.source_tables
        assert lineage.source_tables == {"orders"}

    def test_cte_internal_references_propagate(self):
        lineage, _ = extract(
            "WITH recent AS (SELECT o.cid FROM orders o WHERE o.odate > '2024-01-01') "
            "SELECT r.cid FROM recent r"
        )
        assert col("orders", "odate") in lineage.referenced

    def test_chained_ctes(self):
        lineage, _ = extract(
            "WITH a AS (SELECT t.x FROM t), b AS (SELECT a.x AS y FROM a) "
            "SELECT b.y FROM b"
        )
        assert lineage.contributions["y"] == {col("t", "x")}

    def test_cte_with_declared_columns(self):
        lineage, _ = extract(
            "WITH renamed(p, q) AS (SELECT t.a, t.b FROM t) SELECT renamed.p FROM renamed"
        )
        assert lineage.contributions["p"] == {col("t", "a")}

    def test_cte_with_aggregate(self):
        lineage, _ = extract(
            "WITH totals AS (SELECT i.oid, sum(i.line_total) AS revenue FROM items i GROUP BY i.oid) "
            "SELECT o.oid, t.revenue FROM orders o JOIN totals t ON o.oid = t.oid"
        )
        assert lineage.contributions["revenue"] == {col("items", "line_total")}
        assert col("items", "oid") in lineage.referenced
        assert col("orders", "oid") in lineage.referenced

    def test_cte_star_expansion(self):
        lineage, _ = extract(
            "WITH x AS (SELECT t.a, t.b FROM t) SELECT x.* FROM x"
        )
        assert lineage.output_columns == ["a", "b"]
        assert lineage.contributions["a"] == {col("t", "a")}

    def test_cte_shadowing_real_table_name(self):
        catalog = Catalog()
        catalog.create_table("orders", ["oid", "cid"])
        lineage, _ = extract(
            "WITH orders AS (SELECT t.id AS oid FROM t) SELECT orders.oid FROM orders",
            catalog=catalog,
        )
        # The CTE wins: lineage goes to t, not the catalog table.
        assert lineage.contributions["oid"] == {col("t", "id")}

    def test_cte_used_twice(self):
        lineage, _ = extract(
            "WITH x AS (SELECT t.a FROM t) "
            "SELECT x1.a, x2.a AS a2 FROM x x1 JOIN x x2 ON x1.a = x2.a"
        )
        assert lineage.contributions["a"] == {col("t", "a")}
        assert lineage.contributions["a2"] == {col("t", "a")}


class TestSubqueries:
    def test_derived_table_traced_through(self):
        lineage, _ = extract(
            "SELECT s.total FROM (SELECT sum(o.amount) AS total FROM orders o) s"
        )
        assert lineage.contributions["total"] == {col("orders", "amount")}

    def test_derived_table_column_aliases(self):
        lineage, _ = extract(
            "SELECT v.x FROM (SELECT t.a, t.b FROM t) AS v(x, y)"
        )
        assert lineage.contributions["x"] == {col("t", "a")}

    def test_scalar_subquery_contributes(self):
        lineage, _ = extract(
            "SELECT (SELECT max(p.price) FROM products p) AS max_price FROM t"
        )
        assert lineage.contributions["max_price"] == {col("products", "price")}
        assert "products" in lineage.source_tables

    def test_in_subquery_is_reference_only(self):
        lineage, _ = extract(
            "SELECT t.a FROM t WHERE t.k IN (SELECT u.k FROM u WHERE u.live)"
        )
        assert col("u", "k") in lineage.referenced
        assert col("u", "live") in lineage.referenced
        assert col("u", "k") not in lineage.contributing_columns

    def test_exists_subquery_is_reference_only(self):
        lineage, _ = extract(
            "SELECT t.a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.tid = t.id)"
        )
        assert col("u", "tid") in lineage.referenced
        assert col("t", "id") in lineage.referenced

    def test_correlated_subquery_resolves_outer_alias(self):
        lineage, _ = extract(
            "SELECT (SELECT max(i.qty) FROM items i WHERE i.oid = o.oid) AS max_qty "
            "FROM orders o"
        )
        assert lineage.contributions["max_qty"] == {col("items", "qty")}
        assert col("orders", "oid") in lineage.referenced

    def test_nested_subqueries(self):
        lineage, _ = extract(
            "SELECT s.v FROM (SELECT (SELECT max(u.x) FROM u) AS v FROM t) s"
        )
        assert lineage.contributions["v"] == {col("u", "x")}

    def test_values_source_with_aliases(self):
        lineage, _ = extract(
            "SELECT v.a, t.x FROM (VALUES (1, 2), (3, 4)) AS v(a, b) JOIN t ON t.id = v.b"
        )
        assert lineage.contributions["a"] == set()
        assert lineage.contributions["x"] == {col("t", "x")}
        assert col("t", "id") in lineage.referenced


class TestStars:
    def test_star_with_catalog_expands(self):
        catalog = Catalog()
        catalog.create_table("web", ["cid", "date", "page", "reg"])
        lineage, _ = extract("SELECT * FROM web", catalog=catalog)
        assert lineage.output_columns == ["cid", "date", "page", "reg"]
        assert lineage.contributions["page"] == {col("web", "page")}

    def test_qualified_star_expands_only_that_source(self):
        catalog = Catalog()
        catalog.create_table("a", ["x", "y"])
        catalog.create_table("b", ["z"])
        lineage, _ = extract("SELECT a.* FROM a JOIN b ON a.x = b.z", catalog=catalog)
        assert lineage.output_columns == ["x", "y"]

    def test_star_over_unknown_table_degrades_to_wildcard(self):
        lineage, _ = extract("SELECT w.* FROM mystery w")
        assert lineage.output_columns == ["*"]
        assert lineage.contributions["*"] == {col("mystery", "*")}

    def test_star_mixed_with_explicit_columns(self):
        catalog = Catalog()
        catalog.create_table("a", ["x"])
        lineage, _ = extract("SELECT a.*, a.x AS copy FROM a", catalog=catalog)
        assert lineage.output_columns == ["x", "copy"]

    def test_star_over_derived_table(self):
        lineage, _ = extract(
            "SELECT d.* FROM (SELECT t.a, t.b AS renamed FROM t) d"
        )
        assert lineage.output_columns == ["a", "renamed"]
        assert lineage.contributions["renamed"] == {col("t", "b")}


class TestAmbiguityHandling:
    def test_unprefixed_column_unique_source(self):
        catalog = Catalog()
        catalog.create_table("customers", ["cid", "name"])
        catalog.create_table("orders", ["oid", "amount"])
        lineage, _ = extract(
            "SELECT name, amount FROM customers, orders", catalog=catalog
        )
        assert lineage.contributions["name"] == {col("customers", "name")}
        assert lineage.contributions["amount"] == {col("orders", "amount")}

    def test_ambiguous_column_attributed_to_all_candidates(self):
        catalog = Catalog()
        catalog.create_table("a", ["k"])
        catalog.create_table("b", ["k"])
        lineage, _ = extract("SELECT k FROM a, b", catalog=catalog)
        assert lineage.contributions["k"] == {col("a", "k"), col("b", "k")}

    def test_ambiguous_column_raises_in_strict_mode(self):
        catalog = Catalog()
        catalog.create_table("a", ["k"])
        catalog.create_table("b", ["k"])
        with pytest.raises(AmbiguousColumnError):
            extract("SELECT k FROM a, b", catalog=catalog, strict=True)

    def test_unprefixed_column_single_unknown_source(self):
        lineage, _ = extract("SELECT page FROM web")
        assert lineage.contributions["page"] == {col("web", "page")}

    def test_unresolvable_column_is_dropped_not_invented(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        lineage, _ = extract("SELECT ghost FROM t", catalog=catalog)
        assert lineage.contributions["ghost"] == set()


class TestInsertAndComplexStatements:
    def test_insert_select_lineage(self):
        extractor = LineageExtractor()
        statement = parse_one("INSERT INTO audit (who, what) SELECT u.name, a.action FROM u, a")
        lineage, _ = extractor.extract(
            "audit", query_of(statement), declared_columns=statement.columns
        )
        assert lineage.name == "audit"
        assert lineage.contributions["who"] == {col("u", "name")}
        assert lineage.contributions["what"] == {col("a", "action")}

    def test_set_operation_of_ctes(self):
        lineage, _ = extract(
            "WITH a AS (SELECT t.x FROM t), b AS (SELECT u.y FROM u) "
            "SELECT a.x FROM a UNION SELECT b.y FROM b"
        )
        assert lineage.contributions["x"] == {col("t", "x"), col("u", "y")}

    def test_join_of_subqueries(self):
        lineage, _ = extract(
            "SELECT l.cid, r.total FROM (SELECT c.cid FROM customers c) l "
            "JOIN (SELECT o.cid, sum(o.amount) AS total FROM orders o GROUP BY o.cid) r "
            "ON l.cid = r.cid"
        )
        assert lineage.contributions["cid"] == {col("customers", "cid")}
        assert lineage.contributions["total"] == {col("orders", "amount")}
        assert col("orders", "cid") in lineage.referenced
        assert col("customers", "cid") in lineage.referenced

    def test_deeply_nested_query(self):
        lineage, _ = extract(
            "SELECT outer_q.v FROM (SELECT mid.v FROM (SELECT t.a AS v FROM t) mid) outer_q"
        )
        assert lineage.contributions["v"] == {col("t", "a")}

    def test_window_in_subquery_with_filter_on_rank(self):
        lineage, _ = extract(
            "SELECT f.cid FROM ("
            "SELECT o.cid, row_number() OVER (PARTITION BY o.cid ORDER BY o.odate) AS rn "
            "FROM orders o) f WHERE f.rn = 1"
        )
        assert lineage.contributions["cid"] == {col("orders", "cid")}
        assert {col("orders", "odate")} <= lineage.referenced

    def test_example1_q1_with_known_webact(self):
        catalog = Catalog()
        catalog.create_table("webact", ["wcid", "wdate", "wpage", "wreg"], is_view=True)
        lineage, _ = extract(
            "SELECT c.name, c.age, o.oid, w.* FROM customers c "
            "JOIN orders o ON c.cid = o.cid JOIN webact w ON c.cid = w.wcid",
            catalog=catalog,
            name="info",
        )
        assert lineage.output_columns == [
            "name", "age", "oid", "wcid", "wdate", "wpage", "wreg",
        ]
        assert lineage.contributions["wpage"] == {col("webact", "wpage")}
        assert col("webact", "wcid") in lineage.referenced
