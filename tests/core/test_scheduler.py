"""Tests for the Table/View Auto-Inference scheduler (the stack mechanism).

These tests exercise the reactive ``mode="stack"`` scheduler — the paper's
LIFO-deferral behaviour, which also serves as the fallback of the plan-first
DAG mode.  The DAG mode itself is covered in ``test_dag.py``.
"""

import pytest

from repro.catalog import Catalog
from repro.core.errors import CyclicDependencyError, DeferralLimitExceededError
from repro.core.preprocess import preprocess
from repro.core.scheduler import AutoInferenceScheduler
from repro.datasets import example1


def run_scheduler(sql, catalog=None, use_stack=True, collect_traces=False,
                  mode="stack", **kwargs):
    scheduler = AutoInferenceScheduler(
        preprocess(sql),
        catalog=catalog,
        use_stack=use_stack,
        collect_traces=collect_traces,
        mode=mode,
        **kwargs,
    )
    return scheduler.run()


class TestStackDeferral:
    def test_example1_defers_to_dependencies_first(self):
        graph, report = run_scheduler(example1.QUERY_LOG)
        assert report.order == ["webinfo", "webact", "info"]
        assert report.deferral_count == 2
        assert not report.unresolved

    def test_dependency_order_input_needs_no_deferrals(self):
        graph, report = run_scheduler(example1.QUERY_LOG_ORDERED)
        assert report.order == ["webinfo", "webact", "info"]
        assert report.deferral_count == 0

    def test_deferral_events_recorded(self):
        _, report = run_scheduler(example1.QUERY_LOG)
        defer_events = [event for event in report.events if event.kind == "defer"]
        assert {(event.identifier, event.missing) for event in defer_events} == {
            ("info", "webact"),
            ("webact", "webinfo"),
        }
        resume_events = [event for event in report.events if event.kind == "resume"]
        assert resume_events, "deferred queries must be resumed"

    def test_result_graph_contains_all_views(self):
        graph, _ = run_scheduler(example1.QUERY_LOG)
        assert {lineage.name for lineage in graph} == {"info", "webact", "webinfo"}

    def test_star_resolved_through_deferral(self):
        graph, _ = run_scheduler(example1.QUERY_LOG)
        assert graph["info"].output_columns == [
            "name", "age", "oid", "wcid", "wdate", "wpage", "wreg",
        ]

    def test_chain_of_stars(self):
        sql = """
        CREATE VIEW c AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        CREATE VIEW a AS SELECT t.x, t.y FROM t;
        """
        graph, report = run_scheduler(sql)
        assert report.order == ["a", "b", "c"]
        assert graph["c"].output_columns == ["x", "y"]
        assert graph["c"].contributions["x"] == {
            __import__("repro").ColumnName.of("b", "x")
        }

    def test_unknown_external_table_does_not_defer(self):
        sql = "CREATE VIEW v AS SELECT t.a FROM external_table t"
        graph, report = run_scheduler(sql)
        assert report.deferral_count == 0
        assert not report.unresolved

    def test_catalog_satisfies_dependency_without_deferral(self):
        catalog = Catalog()
        catalog.create_table("webact", ["wcid", "wdate", "wpage", "wreg"])
        sql = "CREATE VIEW v AS SELECT w.* FROM webact w"
        graph, report = run_scheduler(sql, catalog=catalog)
        assert report.deferral_count == 0
        assert graph["v"].output_columns == ["wcid", "wdate", "wpage", "wreg"]

    def test_traces_collected_when_requested(self):
        _, report = run_scheduler(example1.QUERY_LOG, collect_traces=True)
        assert set(report.traces) == {"info", "webact", "webinfo"}


class TestCyclesAndFailures:
    def test_mutual_recursion_raises_cycle_error(self):
        sql = """
        CREATE VIEW a AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        """
        with pytest.raises(CyclicDependencyError):
            run_scheduler(sql)

    def test_direct_self_reference_degrades_gracefully(self):
        # A view reading the relation it defines (invalid as a view, but the
        # same shape as UPDATE ... FROM on the target) must not deadlock the
        # stack: it is processed with its own columns treated as unknown.
        graph, report = run_scheduler("CREATE VIEW a AS SELECT a.* FROM a")
        assert "a" in graph
        assert not report.unresolved

    def test_cycle_error_lists_participants(self):
        sql = """
        CREATE VIEW a AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        """
        with pytest.raises(CyclicDependencyError) as excinfo:
            run_scheduler(sql)
        assert set(excinfo.value.cycle) >= {"a", "b"}

    def test_deferral_limit_raises_dedicated_error(self):
        # A two-deep dependency chain needs two deferrals when processed in
        # reverse order; max_deferrals=1 must trip the dedicated error (not
        # a plain cycle report) and carry the stack at the moment of failure.
        sql = """
        CREATE VIEW c AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        CREATE VIEW a AS SELECT t.x FROM t;
        """
        with pytest.raises(DeferralLimitExceededError) as excinfo:
            run_scheduler(sql, max_deferrals=1)
        assert excinfo.value.limit == 1
        assert excinfo.value.stack == ["c", "b"]
        # it still subclasses CyclicDependencyError for existing handlers
        assert isinstance(excinfo.value, CyclicDependencyError)

    def test_deferral_limit_not_hit_when_budget_suffices(self):
        sql = """
        CREATE VIEW c AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        CREATE VIEW a AS SELECT t.x FROM t;
        """
        graph, report = run_scheduler(sql, max_deferrals=2)
        assert report.order == ["a", "b", "c"]
        assert report.deferral_count == 2


class TestStackAblation:
    def test_without_stack_star_over_later_view_degrades(self):
        graph, report = run_scheduler(example1.QUERY_LOG, use_stack=False)
        # info is processed before webact is known -> wildcard output
        assert graph["info"].output_columns[-1] == "*"
        assert report.deferral_count == 0

    def test_without_stack_dependency_order_still_works(self):
        graph, report = run_scheduler(example1.QUERY_LOG_ORDERED, use_stack=False)
        assert graph["info"].output_columns == [
            "name", "age", "oid", "wcid", "wdate", "wpage", "wreg",
        ]

    def test_stack_makes_processing_order_irrelevant(self):
        from repro.datasets import workload

        warehouse = workload.generate_warehouse(num_base_tables=4, num_views=15, seed=9)
        ordered_graph, _ = run_scheduler(warehouse.script, catalog=warehouse.catalog())
        shuffled_graph, _ = run_scheduler(
            warehouse.shuffled_script(), catalog=warehouse.catalog()
        )
        for name in warehouse.views:
            assert ordered_graph[name].output_columns == shuffled_graph[name].output_columns
            assert ordered_graph[name].contributions == shuffled_graph[name].contributions
