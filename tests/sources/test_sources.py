"""Tests for the source-adapter registry (detection, loading, rescan)."""

import json
import os

import pytest

from repro.dbt.project import DbtProject
from repro.sources import (
    DbtSource,
    DirectorySource,
    FileSource,
    LogTailer,
    QueryLogFormatError,
    QueryLogSource,
    Source,
    SourceDetectionError,
    TextSource,
    detect_source,
    diff_fingerprints,
    parse_query_log,
    registered_sources,
)


SQL = "CREATE VIEW v AS SELECT t.a FROM t"


class TestDetection:
    def test_raw_sql_text(self):
        assert isinstance(detect_source(SQL), TextSource)

    def test_multi_statement_script(self):
        source = detect_source("CREATE TABLE t (a int); " + SQL)
        assert source.kind == "text"

    def test_list_of_scripts(self):
        assert detect_source([SQL, "SELECT u.x FROM u"]).kind == "text"

    def test_plain_mapping(self):
        assert detect_source({"v": SQL}).kind == "text"

    def test_sql_file(self, tmp_path):
        path = tmp_path / "view.sql"
        path.write_text(SQL)
        source = detect_source(str(path))
        assert isinstance(source, FileSource)

    def test_directory(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        source = detect_source(str(tmp_path))
        assert isinstance(source, DirectorySource)

    def test_dbt_directory_with_models_subdir(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "stg.sql").write_text("SELECT w.a FROM {{ source('raw', 'w') }} w")
        source = detect_source(str(tmp_path))
        assert isinstance(source, DbtSource)

    def test_dbt_directory_with_project_file(self, tmp_path):
        (tmp_path / "dbt_project.yml").write_text("name: demo\n")
        (tmp_path / "stg.sql").write_text("SELECT 1 AS one")
        assert detect_source(str(tmp_path)).kind == "dbt"

    def test_plain_directory_is_not_dbt(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        assert detect_source(str(tmp_path)).kind == "directory"

    def test_mapping_with_macros_is_dbt(self):
        models = {"stg": "SELECT w.a FROM {{ source('raw', 'w') }} w"}
        assert isinstance(detect_source(models), DbtSource)

    def test_dbt_project_instance(self):
        project = DbtProject.from_models({"m": "SELECT t.a FROM t"})
        assert detect_source(project).kind == "dbt"

    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"name": "v", "sql": SQL}) + "\n")
        assert isinstance(detect_source(str(path)), QueryLogSource)

    def test_jsonl_inline_text(self):
        text = json.dumps({"sql": SQL}) + "\n" + json.dumps({"sql": "SELECT u.x FROM u"})
        assert detect_source(text).kind == "query_log"

    def test_json_first_line_over_sql_remainder_is_text(self):
        # only the first line is JSON; the rest is a SQL script.  Sniffing
        # just line 1 used to claim this as a query log and then fail
        # mid-extraction — the whole sample window must parse.
        text = json.dumps({"sql": SQL}) + "\n" + SQL + "\nSELECT u.x FROM u"
        assert detect_source(text).kind == "text"

    def test_json_lines_without_sql_key_are_text(self):
        text = "\n".join(json.dumps({"event": i}) for i in range(3))
        assert detect_source(text).kind == "text"

    def test_source_instance_passes_through(self):
        source = TextSource(SQL)
        assert detect_source(source) is source

    def test_unsupported_input_raises(self):
        with pytest.raises(SourceDetectionError, match="no source adapter"):
            detect_source(42)

    def test_detection_order_is_priority_sorted(self):
        priorities = [cls.priority for cls in registered_sources()]
        assert priorities == sorted(priorities)

    def test_detect_also_reachable_via_source_class(self):
        assert Source.detect(SQL).kind == "text"


class TestLoading:
    def test_text_load_is_identity(self):
        assert TextSource(SQL).load() == SQL

    def test_file_load_returns_path(self, tmp_path):
        path = tmp_path / "view.sql"
        path.write_text(SQL)
        assert FileSource(str(path)).load() == str(path)

    def test_directory_load_maps_stems(self, tmp_path):
        (tmp_path / "First.sql").write_text(SQL)
        (tmp_path / "second.sql").write_text("SELECT u.x FROM u")
        (tmp_path / "ignored.txt").write_text("not sql")
        mapping = DirectorySource(str(tmp_path)).load()
        assert list(mapping) == ["first", "second"]

    def test_dbt_load_compiles_macros(self):
        source = DbtSource({"stg": "SELECT w.a FROM {{ source('raw', 'w') }} w"})
        assert source.load() == {"stg": "SELECT w.a FROM raw.w w"}

    def test_query_log_load_orders_and_dedupes(self):
        lines = [
            {"name": "v", "sql": "CREATE VIEW v AS SELECT t.a FROM t",
             "timestamp": "2026-07-01T10:00:00Z"},
            {"name": "w", "sql": "CREATE VIEW w AS SELECT v.a FROM v",
             "timestamp": "2026-07-01T09:00:00Z"},
            # v re-created later: the latest definition must win
            {"name": "v", "sql": "CREATE VIEW v AS SELECT t.b FROM t",
             "timestamp": "2026-07-02T08:00:00Z"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        mapping = QueryLogSource(text).load()
        assert mapping["v"] == "CREATE VIEW v AS SELECT t.b FROM t"
        # timestamp order: w (09:00) before the final v (next day)
        assert list(mapping) == ["w", "v"]


class TestQueryLogParsing:
    def test_query_alias_and_autonaming(self):
        text = json.dumps({"query": "SELECT t.a FROM t"})
        records = parse_query_log(text)
        assert records[0].sql == "SELECT t.a FROM t"
        assert records[0].name == "query_log:1"

    def test_auto_name_cannot_collide_with_explicit_names(self):
        # an explicit "query_log_2" used to collide with the line-2 auto
        # name and silently swallow one of the two statements
        lines = [
            {"name": "query_log_2", "sql": "SELECT t.a FROM t"},
            {"sql": "SELECT t.b FROM t"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        records = parse_query_log(text)
        assert [record.name for record in records] == ["query_log_2", "query_log:2"]
        mapping = QueryLogSource(text).load()
        assert set(mapping) == {"query_log_2", "query_log:2"}

    def test_explicit_name_in_reserved_namespace_rejected(self):
        text = json.dumps({"name": "query_log:7", "sql": "SELECT t.a FROM t"})
        with pytest.raises(QueryLogFormatError, match="reserved auto-name"):
            parse_query_log(text)

    def test_extra_keys_preserved(self):
        text = json.dumps({"sql": SQL, "name": "v", "user": "etl", "duration_ms": 12})
        record = parse_query_log(text)[0]
        assert record.extra == {"user": "etl", "duration_ms": 12}

    def test_blank_lines_skipped(self):
        text = "\n" + json.dumps({"sql": SQL}) + "\n\n"
        assert len(parse_query_log(text)) == 1

    def test_invalid_json_line_raises(self):
        with pytest.raises(QueryLogFormatError, match="line 1"):
            parse_query_log("{not json}")

    def test_non_object_line_raises(self):
        with pytest.raises(QueryLogFormatError, match="JSON object"):
            parse_query_log("[1, 2]")

    def test_missing_sql_raises(self):
        with pytest.raises(QueryLogFormatError, match="no 'sql'"):
            parse_query_log(json.dumps({"name": "v"}))

    def test_mixed_epoch_and_iso_timestamps_order_chronologically(self):
        lines = [
            {"name": "late", "sql": "SELECT t.a FROM t",
             "timestamp": "2026-01-01T00:00:00Z"},
            {"name": "early", "sql": "SELECT t.b FROM t", "timestamp": 1},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        assert [record.name for record in parse_query_log(text)] == ["early", "late"]

    def test_utc_offsets_compared_chronologically_not_lexically(self):
        lines = [
            # 10:00+02:00 is 08:00Z — chronologically BEFORE 09:00Z even
            # though it sorts after it lexically
            {"name": "second", "sql": "SELECT t.a FROM t",
             "timestamp": "2026-07-01T09:00:00Z"},
            {"name": "first", "sql": "SELECT t.b FROM t",
             "timestamp": "2026-07-01T10:00:00+02:00"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        assert [record.name for record in parse_query_log(text)] == ["first", "second"]

    def test_unparseable_timestamp_falls_back_to_file_order(self):
        lines = [
            {"name": "a", "sql": "SELECT t.a FROM t", "timestamp": "yesterday-ish"},
            {"name": "b", "sql": "SELECT t.b FROM t", "timestamp": "2026-01-01T00:00:00Z"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        assert [record.name for record in parse_query_log(text)] == ["a", "b"]

    def test_file_backed_records(self, tmp_path):
        path = tmp_path / "log.ndjson"
        path.write_text(json.dumps({"name": "v", "sql": SQL}) + "\n")
        source = QueryLogSource(str(path))
        assert source.is_file_backed
        assert [record.name for record in source.records()] == ["v"]


class TestRescanAndFingerprints:
    def test_directory_rescan_reflects_edits(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        source = DirectorySource(str(tmp_path))
        before = source.fingerprint()
        (tmp_path / "a.sql").write_text("CREATE VIEW v AS SELECT t.b FROM t")
        (tmp_path / "b.sql").write_text("SELECT u.x FROM u")
        changes = diff_fingerprints(before, source.rescan())
        assert set(changes) == {"a", "b"}
        assert changes["a"] == "CREATE VIEW v AS SELECT t.b FROM t"

    def test_diff_reports_removals_as_none(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        (tmp_path / "b.sql").write_text("SELECT u.x FROM u")
        source = DirectorySource(str(tmp_path))
        before = source.fingerprint()
        os.remove(tmp_path / "b.sql")
        changes = diff_fingerprints(before, source.rescan())
        assert changes == {"b": None}

    def test_unchanged_scan_yields_no_changes(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        source = DirectorySource(str(tmp_path))
        assert diff_fingerprints(source.fingerprint(), source.rescan()) == {}

    def test_text_source_has_no_fingerprint_for_scripts(self):
        assert TextSource(SQL).fingerprint() is None

    def test_text_source_fingerprints_mappings(self):
        assert set(TextSource({"v": SQL}).fingerprint()) == {"v"}

    def test_non_rescannable_source_raises(self):
        with pytest.raises(SourceDetectionError, match="re-scannable"):
            TextSource(SQL).rescan()

    def test_dbt_directory_rescan(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "stg.sql").write_text("SELECT w.a FROM {{ source('raw', 'w') }} w")
        source = DbtSource(str(tmp_path))
        before = source.fingerprint()
        (models / "stg.sql").write_text("SELECT w.b FROM {{ source('raw', 'w') }} w")
        changes = diff_fingerprints(before, source.rescan())
        assert list(changes) == ["stg"]
        assert "raw.w" in changes["stg"]

    def test_query_log_file_rescan_sees_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"name": "v", "sql": SQL}) + "\n")
        source = QueryLogSource(str(path))
        before = source.fingerprint()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"name": "w", "sql": "SELECT v.a FROM v"}) + "\n")
        changes = diff_fingerprints(before, source.rescan())
        assert set(changes) == {"w"}

    def test_rescan_after_append_matches_one_shot_load(self, tmp_path):
        path = tmp_path / "log.jsonl"
        lines = [
            {"name": "v", "sql": SQL, "timestamp": 3},
            {"name": "w", "sql": "SELECT v.a FROM v", "timestamp": "2026-01-01T00:00:05Z"},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        incremental = QueryLogSource(str(path))
        incremental.load()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"name": "v", "sql": "SELECT t.b FROM t",
                                     "timestamp": 9}) + "\n")
        # a fresh source parsing the whole file and the incremental source
        # that only read the appended tail must agree byte for byte
        assert incremental.rescan() == QueryLogSource(str(path)).load()


class TestMixedTimestampLogs:
    def _log(self, *lines):
        return "\n".join(json.dumps(line) for line in lines)

    def test_epoch_iso_and_z_suffix_in_one_file(self):
        text = self._log(
            {"name": "c", "sql": "SELECT t.c FROM t",
             "timestamp": "2026-01-01T00:00:10+00:00"},
            {"name": "a", "sql": "SELECT t.a FROM t", "timestamp": 1767225600},
            {"name": "b", "sql": "SELECT t.b FROM t",
             "timestamp": "2026-01-01T00:00:05Z"},
        )
        # 1767225600 epoch == 2026-01-01T00:00:00Z: all three styles reduce
        # to the same clock and replay chronologically
        assert [r.name for r in parse_query_log(text)] == ["a", "b", "c"]

    def test_equal_timestamps_tie_break_by_line_number(self):
        text = self._log(
            {"name": "first", "sql": "SELECT t.a FROM t", "timestamp": 5},
            {"name": "second", "sql": "SELECT t.b FROM t",
             "timestamp": "1970-01-01T00:00:05Z"},
        )
        assert [r.name for r in parse_query_log(text)] == ["first", "second"]

    def test_single_unparseable_timestamp_forces_file_order(self):
        text = self._log(
            {"name": "z", "sql": "SELECT t.a FROM t", "timestamp": 99},
            {"name": "m", "sql": "SELECT t.b FROM t", "timestamp": "not a time"},
            {"name": "a", "sql": "SELECT t.c FROM t", "timestamp": 1},
        )
        # one bad key poisons chronological replay for the whole log
        assert [r.name for r in parse_query_log(text)] == ["z", "m", "a"]

    def test_missing_timestamp_also_forces_file_order(self):
        text = self._log(
            {"name": "z", "sql": "SELECT t.a FROM t", "timestamp": 99},
            {"name": "a", "sql": "SELECT t.b FROM t"},
        )
        assert [r.name for r in parse_query_log(text)] == ["z", "a"]

    def test_file_backed_source_matches_inline_ordering(self, tmp_path):
        text = self._log(
            {"name": "late", "sql": "SELECT t.a FROM t",
             "timestamp": "2026-06-01T00:00:00Z"},
            {"name": "early", "sql": "SELECT t.b FROM t", "timestamp": 3},
        )
        path = tmp_path / "log.jsonl"
        path.write_text(text + "\n")
        inline = [r.name for r in QueryLogSource(text).records()]
        file_backed = [r.name for r in QueryLogSource(str(path)).records()]
        assert inline == file_backed == ["early", "late"]


class TestLogTailer:
    def _write(self, path, *lines, mode="w"):
        with open(path, mode, encoding="utf-8") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")

    def test_incremental_reads_only_consume_new_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        tailer = LogTailer(path)
        records, reset = tailer.read()
        assert not reset and [r.name for r in records] == ["a"]
        self._write(path, {"name": "b", "sql": "SELECT t.b FROM t"}, mode="a")
        records, reset = tailer.read()
        assert not reset and [r.name for r in records] == ["b"]
        assert records[0].line_number == 2
        assert tailer.read() == ([], False)

    def test_torn_tail_is_not_committed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        half = json.dumps({"name": "b", "sql": "SELECT t.b FROM t"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(half[: len(half) // 2])  # producer mid-write
        tailer = LogTailer(path)
        records, _ = tailer.read()
        assert [r.name for r in records] == ["a"]
        offset_before = tailer.position.byte_offset
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(half[len(half) // 2 :] + "\n")  # line completed
        records, reset = tailer.read()
        assert not reset and [r.name for r in records] == ["b"]
        assert tailer.position.byte_offset > offset_before

    def test_peek_tail_parses_without_committing(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"name": "b", "sql": "SELECT t.b FROM t"}))
        tailer = LogTailer(path)
        tailer.read()
        before = tailer.position
        peeked = tailer.peek_tail()
        assert peeked is not None and peeked.name == "b"
        assert tailer.position == before

    def test_truncation_detected_as_reset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"},
                    {"name": "b", "sql": "SELECT t.b FROM t"})
        tailer = LogTailer(path)
        tailer.read()
        self._write(path, {"name": "c", "sql": "SELECT t.c FROM t"})  # shorter
        records, reset = tailer.read()
        assert reset and [r.name for r in records] == ["c"]
        assert tailer.position.line_count == 1

    def test_replacement_rotation_detected_via_inode(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        tailer = LogTailer(path)
        tailer.read()
        fresh = tmp_path / "fresh.jsonl"
        # new file is LONGER than the consumed prefix, so only the inode
        # (or head bytes) betray the rotation
        self._write(fresh, {"name": "x", "sql": "SELECT t.x FROM t"},
                    {"name": "y", "sql": "SELECT t.y FROM t"})
        os.replace(fresh, path)
        records, reset = tailer.read()
        assert reset and [r.name for r in records] == ["x", "y"]

    def test_copy_truncate_rotation_detected_via_head_bytes(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        tailer = LogTailer(path)
        tailer.read()
        tailer._inode = None  # simulate a filesystem with unstable inodes
        self._write(path, {"name": "bbbbbb", "sql": "SELECT t.b FROM t"},
                    {"name": "c", "sql": "SELECT t.c FROM t"})
        records, reset = tailer.read()
        assert reset and [r.name for r in records] == ["bbbbbb", "c"]

    def test_deleted_log_resets(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        tailer = LogTailer(path)
        tailer.read()
        os.remove(path)
        assert tailer.read() == ([], True)
        assert tailer.position.byte_offset == 0

    def test_malformed_line_raises_on_every_read(self, tmp_path):
        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json}\n")
        tailer = LogTailer(path)
        with pytest.raises(QueryLogFormatError, match="line 2"):
            tailer.read()
        # the bad line was not folded into the consumed prefix: a second
        # read raises again instead of silently skipping it
        with pytest.raises(QueryLogFormatError, match="line 2"):
            tailer.read()

    def test_position_roundtrips_through_dict(self, tmp_path):
        from repro.sources import LogPosition

        path = tmp_path / "log.jsonl"
        self._write(path, {"name": "a", "sql": "SELECT t.a FROM t"})
        tailer = LogTailer(path)
        tailer.read()
        position = tailer.position
        assert LogPosition.from_dict(position.to_dict()) == position
