"""Tests for the source-adapter registry (detection, loading, rescan)."""

import json
import os

import pytest

from repro.dbt.project import DbtProject
from repro.sources import (
    DbtSource,
    DirectorySource,
    FileSource,
    QueryLogFormatError,
    QueryLogSource,
    Source,
    SourceDetectionError,
    TextSource,
    detect_source,
    diff_fingerprints,
    parse_query_log,
    registered_sources,
)


SQL = "CREATE VIEW v AS SELECT t.a FROM t"


class TestDetection:
    def test_raw_sql_text(self):
        assert isinstance(detect_source(SQL), TextSource)

    def test_multi_statement_script(self):
        source = detect_source("CREATE TABLE t (a int); " + SQL)
        assert source.kind == "text"

    def test_list_of_scripts(self):
        assert detect_source([SQL, "SELECT u.x FROM u"]).kind == "text"

    def test_plain_mapping(self):
        assert detect_source({"v": SQL}).kind == "text"

    def test_sql_file(self, tmp_path):
        path = tmp_path / "view.sql"
        path.write_text(SQL)
        source = detect_source(str(path))
        assert isinstance(source, FileSource)

    def test_directory(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        source = detect_source(str(tmp_path))
        assert isinstance(source, DirectorySource)

    def test_dbt_directory_with_models_subdir(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "stg.sql").write_text("SELECT w.a FROM {{ source('raw', 'w') }} w")
        source = detect_source(str(tmp_path))
        assert isinstance(source, DbtSource)

    def test_dbt_directory_with_project_file(self, tmp_path):
        (tmp_path / "dbt_project.yml").write_text("name: demo\n")
        (tmp_path / "stg.sql").write_text("SELECT 1 AS one")
        assert detect_source(str(tmp_path)).kind == "dbt"

    def test_plain_directory_is_not_dbt(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        assert detect_source(str(tmp_path)).kind == "directory"

    def test_mapping_with_macros_is_dbt(self):
        models = {"stg": "SELECT w.a FROM {{ source('raw', 'w') }} w"}
        assert isinstance(detect_source(models), DbtSource)

    def test_dbt_project_instance(self):
        project = DbtProject.from_models({"m": "SELECT t.a FROM t"})
        assert detect_source(project).kind == "dbt"

    def test_jsonl_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"name": "v", "sql": SQL}) + "\n")
        assert isinstance(detect_source(str(path)), QueryLogSource)

    def test_jsonl_inline_text(self):
        text = json.dumps({"sql": SQL}) + "\n" + json.dumps({"sql": "SELECT u.x FROM u"})
        assert detect_source(text).kind == "query_log"

    def test_source_instance_passes_through(self):
        source = TextSource(SQL)
        assert detect_source(source) is source

    def test_unsupported_input_raises(self):
        with pytest.raises(SourceDetectionError, match="no source adapter"):
            detect_source(42)

    def test_detection_order_is_priority_sorted(self):
        priorities = [cls.priority for cls in registered_sources()]
        assert priorities == sorted(priorities)

    def test_detect_also_reachable_via_source_class(self):
        assert Source.detect(SQL).kind == "text"


class TestLoading:
    def test_text_load_is_identity(self):
        assert TextSource(SQL).load() == SQL

    def test_file_load_returns_path(self, tmp_path):
        path = tmp_path / "view.sql"
        path.write_text(SQL)
        assert FileSource(str(path)).load() == str(path)

    def test_directory_load_maps_stems(self, tmp_path):
        (tmp_path / "First.sql").write_text(SQL)
        (tmp_path / "second.sql").write_text("SELECT u.x FROM u")
        (tmp_path / "ignored.txt").write_text("not sql")
        mapping = DirectorySource(str(tmp_path)).load()
        assert list(mapping) == ["first", "second"]

    def test_dbt_load_compiles_macros(self):
        source = DbtSource({"stg": "SELECT w.a FROM {{ source('raw', 'w') }} w"})
        assert source.load() == {"stg": "SELECT w.a FROM raw.w w"}

    def test_query_log_load_orders_and_dedupes(self):
        lines = [
            {"name": "v", "sql": "CREATE VIEW v AS SELECT t.a FROM t",
             "timestamp": "2026-07-01T10:00:00Z"},
            {"name": "w", "sql": "CREATE VIEW w AS SELECT v.a FROM v",
             "timestamp": "2026-07-01T09:00:00Z"},
            # v re-created later: the latest definition must win
            {"name": "v", "sql": "CREATE VIEW v AS SELECT t.b FROM t",
             "timestamp": "2026-07-02T08:00:00Z"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        mapping = QueryLogSource(text).load()
        assert mapping["v"] == "CREATE VIEW v AS SELECT t.b FROM t"
        # timestamp order: w (09:00) before the final v (next day)
        assert list(mapping) == ["w", "v"]


class TestQueryLogParsing:
    def test_query_alias_and_autonaming(self):
        text = json.dumps({"query": "SELECT t.a FROM t"})
        records = parse_query_log(text)
        assert records[0].sql == "SELECT t.a FROM t"
        assert records[0].name == "query_log_1"

    def test_extra_keys_preserved(self):
        text = json.dumps({"sql": SQL, "name": "v", "user": "etl", "duration_ms": 12})
        record = parse_query_log(text)[0]
        assert record.extra == {"user": "etl", "duration_ms": 12}

    def test_blank_lines_skipped(self):
        text = "\n" + json.dumps({"sql": SQL}) + "\n\n"
        assert len(parse_query_log(text)) == 1

    def test_invalid_json_line_raises(self):
        with pytest.raises(QueryLogFormatError, match="line 1"):
            parse_query_log("{not json}")

    def test_non_object_line_raises(self):
        with pytest.raises(QueryLogFormatError, match="JSON object"):
            parse_query_log("[1, 2]")

    def test_missing_sql_raises(self):
        with pytest.raises(QueryLogFormatError, match="no 'sql'"):
            parse_query_log(json.dumps({"name": "v"}))

    def test_mixed_epoch_and_iso_timestamps_order_chronologically(self):
        lines = [
            {"name": "late", "sql": "SELECT t.a FROM t",
             "timestamp": "2026-01-01T00:00:00Z"},
            {"name": "early", "sql": "SELECT t.b FROM t", "timestamp": 1},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        assert [record.name for record in parse_query_log(text)] == ["early", "late"]

    def test_utc_offsets_compared_chronologically_not_lexically(self):
        lines = [
            # 10:00+02:00 is 08:00Z — chronologically BEFORE 09:00Z even
            # though it sorts after it lexically
            {"name": "second", "sql": "SELECT t.a FROM t",
             "timestamp": "2026-07-01T09:00:00Z"},
            {"name": "first", "sql": "SELECT t.b FROM t",
             "timestamp": "2026-07-01T10:00:00+02:00"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        assert [record.name for record in parse_query_log(text)] == ["first", "second"]

    def test_unparseable_timestamp_falls_back_to_file_order(self):
        lines = [
            {"name": "a", "sql": "SELECT t.a FROM t", "timestamp": "yesterday-ish"},
            {"name": "b", "sql": "SELECT t.b FROM t", "timestamp": "2026-01-01T00:00:00Z"},
        ]
        text = "\n".join(json.dumps(line) for line in lines)
        assert [record.name for record in parse_query_log(text)] == ["a", "b"]

    def test_file_backed_records(self, tmp_path):
        path = tmp_path / "log.ndjson"
        path.write_text(json.dumps({"name": "v", "sql": SQL}) + "\n")
        source = QueryLogSource(str(path))
        assert source.is_file_backed
        assert [record.name for record in source.records()] == ["v"]


class TestRescanAndFingerprints:
    def test_directory_rescan_reflects_edits(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        source = DirectorySource(str(tmp_path))
        before = source.fingerprint()
        (tmp_path / "a.sql").write_text("CREATE VIEW v AS SELECT t.b FROM t")
        (tmp_path / "b.sql").write_text("SELECT u.x FROM u")
        changes = diff_fingerprints(before, source.rescan())
        assert set(changes) == {"a", "b"}
        assert changes["a"] == "CREATE VIEW v AS SELECT t.b FROM t"

    def test_diff_reports_removals_as_none(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        (tmp_path / "b.sql").write_text("SELECT u.x FROM u")
        source = DirectorySource(str(tmp_path))
        before = source.fingerprint()
        os.remove(tmp_path / "b.sql")
        changes = diff_fingerprints(before, source.rescan())
        assert changes == {"b": None}

    def test_unchanged_scan_yields_no_changes(self, tmp_path):
        (tmp_path / "a.sql").write_text(SQL)
        source = DirectorySource(str(tmp_path))
        assert diff_fingerprints(source.fingerprint(), source.rescan()) == {}

    def test_text_source_has_no_fingerprint_for_scripts(self):
        assert TextSource(SQL).fingerprint() is None

    def test_text_source_fingerprints_mappings(self):
        assert set(TextSource({"v": SQL}).fingerprint()) == {"v"}

    def test_non_rescannable_source_raises(self):
        with pytest.raises(SourceDetectionError, match="re-scannable"):
            TextSource(SQL).rescan()

    def test_dbt_directory_rescan(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "stg.sql").write_text("SELECT w.a FROM {{ source('raw', 'w') }} w")
        source = DbtSource(str(tmp_path))
        before = source.fingerprint()
        (models / "stg.sql").write_text("SELECT w.b FROM {{ source('raw', 'w') }} w")
        changes = diff_fingerprints(before, source.rescan())
        assert list(changes) == ["stg"]
        assert "raw.w" in changes["stg"]

    def test_query_log_file_rescan_sees_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text(json.dumps({"name": "v", "sql": SQL}) + "\n")
        source = QueryLogSource(str(path))
        before = source.fingerprint()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"name": "w", "sql": "SELECT v.a FROM v"}) + "\n")
        changes = diff_fingerprints(before, source.rescan())
        assert set(changes) == {"w"}
