"""The deterministic fault-injection harness itself."""

import pytest

from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.reset()
    yield
    faults.reset()


def _schedule(plan, site, hits, shard=None):
    """True/False outcome of `hits` consecutive fires at `site`."""
    outcomes = []
    for _ in range(hits):
        try:
            plan.fire(site, shard=shard)
            outcomes.append(False)
        except faults.InjectedFault:
            outcomes.append(True)
    return outcomes


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = _schedule(faults.FaultPlan(seed=7, rates={"store.read": 0.5}),
                          "store.read", 50)
        second = _schedule(faults.FaultPlan(seed=7, rates={"store.read": 0.5}),
                           "store.read", 50)
        assert first == second
        assert any(first) and not all(first)  # an actual mix at rate 0.5

    def test_different_seeds_differ(self):
        first = _schedule(faults.FaultPlan(seed=1, rates={"store.read": 0.5}),
                          "store.read", 50)
        second = _schedule(faults.FaultPlan(seed=2, rates={"store.read": 0.5}),
                           "store.read", 50)
        assert first != second

    def test_sites_draw_independently(self):
        # firing site A must not perturb site B's schedule: B alone vs
        # B interleaved with A yields the same outcomes for B
        plan_solo = faults.FaultPlan(seed=3, rates={"a.x": 0.5, "b.y": 0.5})
        solo = _schedule(plan_solo, "b.y", 30)
        plan_mixed = faults.FaultPlan(seed=3, rates={"a.x": 0.5, "b.y": 0.5})
        mixed = []
        for _ in range(30):
            _schedule(plan_mixed, "a.x", 2)
            mixed.extend(_schedule(plan_mixed, "b.y", 1))
        assert mixed == solo


class TestRates:
    def test_rate_zero_never_fires(self):
        plan = faults.FaultPlan(seed=0, rates={"store.read": 0.0})
        assert not any(_schedule(plan, "store.read", 100))

    def test_rate_one_always_fires(self):
        plan = faults.FaultPlan(seed=0, rates={"store.read": 1.0})
        assert all(_schedule(plan, "store.read", 10))

    def test_shard_qualified_rate_wins_over_bare(self):
        plan = faults.FaultPlan(
            seed=0, rates={"store.read": 0.0, "store.read[2]": 1.0}
        )
        assert not any(_schedule(plan, "store.read", 10, shard=1))
        assert all(_schedule(plan, "store.read", 10, shard=2))

    def test_unlisted_site_is_a_noop(self):
        plan = faults.FaultPlan(seed=0, rates={"store.read": 1.0})
        plan.fire("journal.append")  # no rate: must not raise
        assert plan.hits("journal.append") == 1


class TestModuleGlobals:
    def test_fire_without_plan_is_noop(self):
        faults.fire("anything.at.all")  # must not raise

    def test_install_and_reset(self):
        plan = faults.install(faults.FaultPlan(seed=0, rates={"x.y": 1.0}))
        assert faults.active() is plan
        with pytest.raises(faults.InjectedFault):
            faults.fire("x.y")
        faults.reset()
        assert faults.active() is None
        faults.fire("x.y")  # deactivated

    def test_injected_fault_carries_site(self):
        faults.install(faults.FaultPlan(seed=0, rates={"store.write[1]": 1.0}))
        with pytest.raises(faults.InjectedFault) as error:
            faults.fire("store.write", shard=1)
        assert error.value.site == "store.write[1]"


class TestEnvRoundTrip:
    def test_plan_survives_env_encoding(self):
        plan = faults.FaultPlan(
            seed=11,
            rates={"store.read": 0.3},
            delays={"batcher.refresh": 0.1},
            kill={"site": "journal.append", "after": 5},
        )
        environ = {faults.ENV_VAR: plan.to_env()}
        decoded = faults.plan_from_env(environ)
        assert decoded.to_dict() == plan.to_dict()
        # and the decoded plan reproduces the original's schedule
        assert _schedule(decoded, "store.read", 40) == _schedule(
            faults.FaultPlan(seed=11, rates={"store.read": 0.3}), "store.read", 40
        )

    def test_missing_or_malformed_env_is_none(self):
        assert faults.plan_from_env({}) is None
        assert faults.plan_from_env({faults.ENV_VAR: "{broken"}) is None
        assert faults.plan_from_env({faults.ENV_VAR: "[1,2]"}) is None

    def test_install_from_env(self):
        environ = {faults.ENV_VAR: faults.FaultPlan(seed=4).to_env()}
        plan = faults.install_from_env(environ)
        assert plan is not None
        assert faults.active() is plan
