"""Tests for the query-log streaming mode (QueryLogStreamer)."""

import json
import os

import pytest

from repro import LineageSession, QueryLogStreamer
from repro.streaming import default_offset_path


def write_log(path, *lines, mode="w"):
    with open(path, mode, encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line) + "\n")


def entry(name, sql, ts=None):
    payload = {"name": name, "sql": sql}
    if ts is not None:
        payload["timestamp"] = ts
    return payload


def one_shot_csv(log_path):
    """The graph a one-shot batch load of the log produces, as CSV bytes."""
    with LineageSession(str(log_path)) as session:
        return session.extract().render("csv")


def stream_csv(log_path, **options):
    with LineageSession() as session:
        session.stream_log(str(log_path), **options).run()
        return session.result.render("csv")


BASE = entry("base", "CREATE TABLE base (id INT, v INT)", 1)


class TestStreamedEndState:
    def test_matches_one_shot_batch_load(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(
            log,
            BASE,
            entry("v1", "CREATE VIEW v1 AS SELECT id, v FROM base", 2),
            entry("v2", "CREATE VIEW v2 AS SELECT id FROM v1", 3),
        )
        assert stream_csv(log, batch_statements=1) == one_shot_csv(log)

    def test_redefinitions_collapse_to_latest(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(
            log,
            BASE,
            entry("v1", "CREATE VIEW v1 AS SELECT id, v FROM base", 2),
            entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 3),
        )
        assert stream_csv(log, batch_statements=1) == one_shot_csv(log)

    def test_mixed_timestamp_styles_match_one_shot(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(
            log,
            entry("base", "CREATE TABLE base (id INT, v INT)",
                  "2026-01-01T00:00:00Z"),
            # chronologically LAST despite being the middle line
            entry("v1", "CREATE VIEW v1 AS SELECT id FROM base",
                  "2026-01-01T00:00:30+00:00"),
            entry("v1", "CREATE VIEW v1 AS SELECT id, v FROM base", 1767225610),
        )
        assert stream_csv(log, batch_statements=1) == one_shot_csv(log)

    def test_timestamp_mode_flip_mid_stream_matches_one_shot(self, tmp_path):
        # the ts-winner and the file-order winner for v1 DISAGREE, and the
        # unparseable timestamp only arrives after v1 was already applied:
        # the streamer must retroactively flip to file order
        log = tmp_path / "q.jsonl"
        write_log(
            log,
            BASE,
            entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 9),
            entry("v1", "CREATE VIEW v1 AS SELECT id, v FROM base", 5),
            entry("w", "CREATEish nonsense -- no", "not-a-time"),
        )
        # make w valid SQL so both paths extract the same graph
        write_log(
            log,
            BASE,
            entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 9),
            entry("v1", "CREATE VIEW v1 AS SELECT id, v FROM base", 5),
            entry("w", "CREATE VIEW w AS SELECT id FROM base", "not-a-time"),
        )
        assert stream_csv(log, batch_statements=1) == one_shot_csv(log)

    def test_repeated_statements_absorbed_without_refresh(self, tmp_path):
        log = tmp_path / "q.jsonl"
        lines = [BASE, entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2)]
        # replay the same two statements many times
        for i in range(20):
            lines.append(entry("v1", "CREATE VIEW v1 AS SELECT id FROM base",
                               3 + i))
        write_log(log, *lines)
        with LineageSession() as session:
            streamer = session.stream_log(str(log), batch_statements=5)
            stats = streamer.run()
        assert stats["statements"] == 22
        # only the two genuinely new definitions hit the engine
        assert stats["applied"] == 2
        assert stats["warm_hit_ratio"] > 0.9

    def test_unterminated_final_line_consumed_at_eof(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE)
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2)))
        assert stream_csv(log) == one_shot_csv(log)


class TestResume:
    def test_offset_persisted_and_resumed(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE,
                  entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2))
        with LineageSession() as session:
            session.stream_log(str(log)).run()
        offset = json.load(open(default_offset_path(log)))
        assert offset["line_count"] == 2

        write_log(log, entry("v2", "CREATE VIEW v2 AS SELECT id FROM v1", 3),
                  mode="a")
        with LineageSession() as session:
            streamer = session.stream_log(str(log))
            stats = streamer.run()
            csv = session.result.render("csv")
        assert stats["resumed_lines"] == 2
        # only the appended line was consumed as new traffic
        assert stats["statements"] == 1
        assert csv == one_shot_csv(log)

    def test_resume_digest_mismatch_restarts_clean(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE,
                  entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2))
        with LineageSession() as session:
            session.stream_log(str(log)).run()
        # rewrite the log in place: same shape, different content
        write_log(log, BASE,
                  entry("v9", "CREATE VIEW v9 AS SELECT v FROM base", 2))
        with LineageSession() as session:
            streamer = session.stream_log(str(log))
            stats = streamer.run()
            csv = session.result.render("csv")
        assert stats["resumed_lines"] == 0
        assert csv == one_shot_csv(log)

    def test_resume_disabled_reingests(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE)
        with LineageSession() as session:
            session.stream_log(str(log)).run()
        with LineageSession() as session:
            streamer = session.stream_log(str(log), resume=False)
            stats = streamer.run()
        assert stats["resumed_lines"] == 0
        assert stats["statements"] == 1

    def test_custom_offset_path(self, tmp_path):
        log = tmp_path / "q.jsonl"
        offset = tmp_path / "elsewhere.json"
        write_log(log, BASE)
        with LineageSession() as session:
            session.stream_log(str(log), offset_path=str(offset)).run()
        assert offset.exists()
        assert not os.path.exists(default_offset_path(log))

    def test_interrupted_batch_replays_idempotently(self, tmp_path):
        # simulate a crash AFTER refresh but BEFORE the offset write: the
        # second streamer replays the batch and converges to the same state
        log = tmp_path / "q.jsonl"
        write_log(log, BASE,
                  entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2))
        with LineageSession() as session:
            streamer = session.stream_log(str(log))
            streamer._save_offset = lambda: None  # crash before persist
            streamer.run()
        assert not os.path.exists(default_offset_path(log))
        assert stream_csv(log) == one_shot_csv(log)


class TestRotation:
    def test_rotated_log_restarts_clean(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE,
                  entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2))
        with LineageSession() as session:
            streamer = session.stream_log(str(log))
            streamer.run()
            # rotate: a brand-new log with different content
            write_log(log, entry("other", "CREATE TABLE other (x INT)", 1),
                      entry("w", "CREATE VIEW w AS SELECT x FROM other", 2))
            stats = streamer.run()
            csv = session.result.render("csv")
        assert stats["resets"] == 1
        assert csv == one_shot_csv(log)

    def test_stale_names_removed_after_rotation(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE,
                  entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2))
        with LineageSession() as session:
            streamer = session.stream_log(str(log))
            streamer.run()
            assert "v1" in session.result.source_hashes
            write_log(log, entry("w", "CREATE TABLE w (x INT)", 1),
                      entry("w2", "CREATE VIEW w2 AS SELECT x FROM w", 2))
            streamer.run()
            assert "v1" not in session.result.source_hashes
            assert "w2" in session.result.source_hashes


class TestCompactionIntegration:
    def test_superseded_hashes_marked(self, tmp_path):
        log = tmp_path / "q.jsonl"
        cache = tmp_path / "cache"
        write_log(log, BASE,
                  entry("v1", "CREATE VIEW v1 AS SELECT id FROM base", 2))
        with LineageSession(cache_dir=str(cache)) as session:
            streamer = session.stream_log(str(log))
            streamer.run()
            write_log(log,
                      entry("v1", "CREATE VIEW v1 AS SELECT id, v FROM base", 3),
                      mode="a")
            streamer.run()
            assert streamer.superseded_marked >= 1
            assert session.store.superseded_count() >= 1

    def test_periodic_compaction_runs(self, tmp_path):
        log = tmp_path / "q.jsonl"
        cache = tmp_path / "cache"
        write_log(log, BASE)
        with LineageSession(cache_dir=str(cache)) as session:
            streamer = session.stream_log(
                str(log), compact_max_entries=10, compact_every=1)
            streamer.run()
            assert streamer.compactions >= 1

    def test_live_definitions_survive_compaction(self, tmp_path):
        log = tmp_path / "q.jsonl"
        cache = tmp_path / "cache"
        lines = [BASE]
        for i in range(6):
            lines.append(entry(
                "v1", f"CREATE VIEW v1 AS SELECT id FROM base WHERE v > {i}",
                2 + i))
        write_log(log, *lines)
        with LineageSession(cache_dir=str(cache)) as session:
            streamer = session.stream_log(
                str(log), batch_statements=1,
                compact_max_entries=3, compact_every=1)
            streamer.run()
            final = session.result.render("csv")
        # a cold session over the same log warm-splices the live records
        with LineageSession(str(log), cache_dir=str(cache)) as session:
            assert session.extract().render("csv") == final


class TestSessionWiring:
    def test_stream_log_uses_session_source_path(self, tmp_path):
        log = tmp_path / "q.jsonl"
        write_log(log, BASE)
        with LineageSession(str(log)) as session:
            streamer = session.stream_log()
            assert streamer.log_path == str(log)

    def test_stream_log_requires_file_backed_log(self):
        with LineageSession("CREATE VIEW v AS SELECT t.a FROM t") as session:
            with pytest.raises(ValueError, match="file-backed JSONL query log"):
                session.stream_log()

    def test_inline_text_rejected(self, tmp_path):
        with LineageSession() as session:
            with pytest.raises(ValueError, match="file path"):
                session.stream_log("{\"sql\": \"SELECT 1\"}\n")
