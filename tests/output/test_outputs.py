"""Tests for the JSON / HTML / DOT / text renderers and the networkx bridge."""

import json

import networkx as nx
import pytest

from repro.analysis.diff import diff_graphs
from repro.core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE
from repro.output import (
    graph_from_json,
    graph_to_dot,
    graph_to_html,
    graph_to_json,
    graph_to_text,
    to_column_digraph,
    to_table_digraph,
)
from repro.output.graph_ops import edge_kind_counts
from repro.output.text_output import edges_to_text, relation_to_text


class TestJSONOutput:
    def test_document_shape(self, example1_graph):
        payload = json.loads(graph_to_json(example1_graph))
        assert set(payload) >= {"relations", "table_edges", "column_edges"}
        assert "info" in payload["relations"]
        assert payload["relations"]["webact"]["columns"] == [
            "wcid", "wdate", "wpage", "wreg",
        ]

    def test_column_edges_have_kind(self, example1_graph):
        payload = json.loads(graph_to_json(example1_graph))
        kinds = {edge["kind"] for edge in payload["column_edges"]}
        assert kinds <= {EDGE_CONTRIBUTE, EDGE_REFERENCE, EDGE_BOTH}
        assert EDGE_CONTRIBUTE in kinds and EDGE_REFERENCE in kinds

    def test_stats_embedded_when_given(self, example1_graph):
        payload = json.loads(graph_to_json(example1_graph, stats={"answer": 42}))
        assert payload["stats"]["answer"] == 42

    def test_round_trip(self, example1_graph):
        rebuilt = graph_from_json(graph_to_json(example1_graph))
        assert diff_graphs(rebuilt, example1_graph).is_identical

    def test_round_trip_preserves_base_table_flag(self, example1_graph):
        rebuilt = graph_from_json(graph_to_json(example1_graph))
        assert rebuilt["web"].is_base_table is True
        assert rebuilt["info"].is_base_table is False


class TestHTMLOutput:
    def test_html_is_self_contained(self, example1_graph):
        html = graph_to_html(example1_graph, title="Example 1")
        assert html.startswith("<!DOCTYPE html>")
        assert "Example 1" in html
        assert "http://" not in html and "https://" not in html, "no external assets"

    def test_html_embeds_lineage_json(self, example1_graph):
        html = graph_to_html(example1_graph)
        assert '"webact.wpage"' in html
        assert "column_edges" in html

    def test_html_contains_interaction_hooks(self, example1_graph):
        html = graph_to_html(example1_graph)
        for hook in ("explore", "highlightDownstream", "table-select", "show-reference"):
            assert hook in html


class TestDotAndText:
    def test_dot_structure(self, example1_graph):
        dot = graph_to_dot(example1_graph)
        assert dot.startswith("digraph")
        assert 'rankdir=LR' in dot
        assert '"web"' in dot and '"info"' in dot
        assert '"web":"page" -> "webinfo":"wpage"' in dot

    def test_dot_escapes_special_characters(self):
        from repro.core.column_refs import ColumnName
        from repro.core.lineage import LineageGraph, TableLineage

        graph = LineageGraph()
        view = TableLineage(name="v")
        view.add_contribution("*", ColumnName.of("t", "*"))
        graph.add(view)
        dot = graph_to_dot(graph)
        assert "digraph" in dot

    def test_text_output_lists_relations_and_lineage(self, example1_graph):
        text = graph_to_text(example1_graph)
        assert "info (view)" in text
        assert "web (base table)" in text
        assert "wpage <- web.page" in text

    def test_relation_to_text_referenced_only_line(self, example1_graph):
        block = relation_to_text(example1_graph["info"])
        assert "references:" in block
        assert "customers.cid" in block

    def test_edges_to_text_filters_by_kind(self, example1_graph):
        contribute_only = edges_to_text(example1_graph, kinds={EDGE_CONTRIBUTE})
        assert "[contribute]" in contribute_only
        assert "[reference]" not in contribute_only


class TestGraphOps:
    def test_column_digraph_nodes_and_edges(self, example1_graph):
        digraph = to_column_digraph(example1_graph)
        assert "web.page" in digraph
        assert digraph.has_edge("web.page", "webinfo.wpage")
        assert digraph.nodes["web.page"]["table"] == "web"

    def test_reference_edges_can_be_excluded(self, example1_graph):
        full = to_column_digraph(example1_graph, include_reference_edges=True)
        contribute_only = to_column_digraph(example1_graph, include_reference_edges=False)
        assert full.number_of_edges() > contribute_only.number_of_edges()
        kinds = {data["kind"] for _, _, data in contribute_only.edges(data=True)}
        assert EDGE_REFERENCE not in kinds

    def test_table_digraph(self, example1_graph):
        digraph = to_table_digraph(example1_graph)
        assert digraph.has_edge("web", "webinfo")
        assert digraph.has_edge("webact", "info")
        assert digraph.nodes["web"]["is_base_table"] is True

    def test_table_digraph_is_acyclic_for_example1(self, example1_graph):
        assert nx.is_directed_acyclic_graph(to_table_digraph(example1_graph))

    def test_edge_kind_counts(self, example1_graph):
        counts = edge_kind_counts(example1_graph)
        assert sum(counts.values()) == len(list(example1_graph.edges()))
        assert counts[EDGE_CONTRIBUTE] > 0
        assert counts[EDGE_REFERENCE] > 0
