"""The mermaid and OpenLineage renderers added alongside the reach index."""

import json

import pytest

from repro.output.mermaid_output import graph_to_mermaid
from repro.output.openlineage_output import EVENT_TIME, graph_to_openlineage
from repro.output.registry import content_type_of, render, renderer_names


class TestMermaid:
    def test_flowchart_header_and_direction(self, example1_graph):
        text = example1_graph_mermaid = graph_to_mermaid(example1_graph)
        assert text.startswith("flowchart LR\n")
        assert graph_to_mermaid(example1_graph, direction="TD").startswith(
            "flowchart TD\n"
        )

    def test_base_tables_are_cylinders_views_rounded(self, example1_graph):
        text = graph_to_mermaid(example1_graph)
        assert '[("web")]' in text  # base table -> cylinder
        assert '("webinfo")' in text and '[("webinfo")]' not in text

    def test_table_edges_present(self, example1_graph):
        text = graph_to_mermaid(example1_graph)
        ids = {
            name: f"n{i}"
            for i, name in enumerate(sorted(example1_graph.relations))
        }
        assert f"    {ids['web']} --> {ids['webinfo']}" in text

    def test_base_class_styling(self, example1_graph):
        text = graph_to_mermaid(example1_graph)
        assert "classDef base" in text
        assert "class " in text

    def test_include_columns_adds_labels(self, example1_graph):
        text = graph_to_mermaid(example1_graph, include_columns=True)
        assert "<br/>" in text and "page" in text

    def test_quote_escaping(self):
        from repro.core.lineage import LineageGraph, TableLineage

        graph = LineageGraph()
        entry = TableLineage(name='we"ird', is_base_table=True)
        entry.add_output_column("a")
        graph.add(entry)
        text = graph_to_mermaid(graph)
        assert "#quot;" in text and '"we"ird"' not in text


class TestOpenLineage:
    def test_document_is_sorted_run_events(self, example1_graph):
        events = json.loads(graph_to_openlineage(example1_graph))
        assert [event["job"]["name"] for event in events] == sorted(
            view.name for view in example1_graph.views
        )
        for event in events:
            assert event["eventType"] == "COMPLETE"
            assert event["eventTime"] == EVENT_TIME

    def test_column_lineage_facet_kinds(self, example1_graph):
        events = json.loads(graph_to_openlineage(example1_graph))
        by_name = {event["job"]["name"]: event for event in events}
        facet = by_name["webinfo"]["outputs"][0]["facets"]["columnLineage"]
        wpage = facet["fields"]["wpage"]["inputFields"]
        identities = {
            (field["name"], field["field"])
            for field in wpage
            if field["transformationType"] == "IDENTITY"
        }
        assert ("web", "page") in identities

    def test_run_ids_deterministic_and_distinct(self, example1_graph):
        first = json.loads(graph_to_openlineage(example1_graph))
        second = json.loads(graph_to_openlineage(example1_graph))
        assert first == second
        run_ids = [event["run"]["runId"] for event in first]
        assert len(set(run_ids)) == len(run_ids)

    def test_namespace_option(self, example1_graph):
        events = json.loads(graph_to_openlineage(example1_graph, namespace="prod"))
        assert all(event["job"]["namespace"] == "prod" for event in events)


class TestRegistration:
    def test_new_formats_registered(self):
        assert {"mermaid", "openlineage"} <= set(renderer_names())

    def test_content_types(self):
        assert content_type_of("mermaid") == "text/vnd.mermaid; charset=utf-8"
        assert content_type_of("openlineage") == "application/json; charset=utf-8"

    def test_render_dispatch(self, example1_result):
        assert render(example1_result, "mermaid") == graph_to_mermaid(
            example1_result.graph
        )
        assert json.loads(render(example1_result, "openlineage"))
