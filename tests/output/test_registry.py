"""Tests for the named renderer registry and the CSV/Markdown renderers."""

import csv
import io

import pytest

from repro.output.registry import (
    UnknownFormatError,
    get_renderer,
    register_renderer,
    render,
    renderer_names,
)


class TestRegistry:
    def test_builtin_formats_registered(self):
        assert {"json", "html", "dot", "text", "csv", "markdown", "stats"} <= set(
            renderer_names()
        )

    def test_get_renderer_returns_callable(self):
        assert callable(get_renderer("csv"))

    def test_unknown_format_error_lists_known_formats(self):
        with pytest.raises(UnknownFormatError) as excinfo:
            get_renderer("yaml")
        message = str(excinfo.value)
        assert "yaml" in message and "json" in message and "csv" in message

    def test_unknown_format_is_a_lookup_error(self):
        with pytest.raises(LookupError):
            get_renderer("nope")

    def test_custom_renderer_registration(self, example1_graph):
        @register_renderer("test-edge-count")
        def edge_count(graph, stats=None, **options):
            return str(len(list(graph.edges())))

        try:
            assert render(example1_graph, "test-edge-count").isdigit()
        finally:
            from repro.output import registry

            registry._RENDERERS.pop("test-edge-count")

    def test_render_accepts_result_objects(self, example1_result):
        # result objects contribute their stats() to stats-aware renderers
        assert "num_views: 3" in render(example1_result, "stats")

    def test_render_accepts_bare_graphs(self, example1_graph):
        assert "num_views: 3" in render(example1_graph, "stats")

    def test_result_render_method_matches_registry(self, example1_result):
        assert example1_result.render("dot") == render(example1_result, "dot")

    def test_every_builtin_renders_example1(self, example1_result):
        for name in renderer_names():
            text = example1_result.render(name)
            assert isinstance(text, str) and text


class TestCsvRenderer:
    def test_edge_rows_parse_as_csv(self, example1_result):
        rows = list(csv.reader(io.StringIO(example1_result.render("csv"))))
        assert rows[0] == ["source", "target", "kind"]
        assert ["web.page", "webinfo.wpage", "contribute"] in rows

    def test_columns_layout(self, example1_result):
        rows = list(
            csv.reader(io.StringIO(example1_result.render("csv", layout="columns")))
        )
        assert rows[0] == ["relation", "relation_kind", "column", "sources"]
        by_key = {(row[0], row[2]): row for row in rows[1:]}
        assert by_key[("webinfo", "wpage")][3] == "web.page"
        assert by_key[("web", "page")][1] == "base_table"

    def test_unknown_layout_rejected(self, example1_result):
        with pytest.raises(ValueError, match="unknown CSV layout"):
            example1_result.render("csv", layout="sideways")


class TestMarkdownRenderer:
    def test_sections_and_tables(self, example1_result):
        text = example1_result.render("markdown")
        assert "## `webinfo` (view)" in text
        assert "| `wpage` | `web.page` |" in text
        assert "## `web` (base table)" in text

    def test_stats_summary_included_for_results(self, example1_result):
        text = example1_result.render("markdown")
        assert "## Summary" in text and "| num_views | 3 |" in text

    def test_custom_title(self, example1_result):
        assert example1_result.render("markdown", title="Warehouse").startswith(
            "# Warehouse"
        )
