"""Byte-identical rendering of identical graphs.

A cold run and a warm-spliced run build equal graphs with *different
relation insertion orders* (seeded entries land first).  The cache-hit
golden checks — and any downstream artifact diffing — need every renderer
to produce byte-identical output for graphs that compare equal, so edge
iteration is sorted in the renderers rather than left in index order.
"""

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.store import LineageStore

FORMATS = ["csv", "dot", "markdown", "text", "json", "html", "mermaid", "openlineage"]


@pytest.fixture(scope="module")
def cold_and_warm(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("cache")
    warehouse = workload.generate_warehouse(
        num_base_tables=4, num_views=30, seed=21
    )
    sources = dict(warehouse.views)
    with LineageStore(cache_dir) as store:
        cold = LineageXRunner(catalog=warehouse.catalog(), store=store).run(sources)
    with LineageStore(cache_dir) as store:
        warm = LineageXRunner(catalog=warehouse.catalog(), store=store).run(sources)
    return cold, warm


def test_insertion_orders_actually_differ(cold_and_warm):
    # the premise: equal graphs, different relation iteration order
    cold, warm = cold_and_warm
    assert warm.report.reused  # everything spliced
    assert diff_graphs(warm.graph, cold.graph).is_identical


@pytest.mark.parametrize("fmt", FORMATS)
def test_renderers_are_byte_identical_cold_vs_warm(cold_and_warm, fmt):
    cold, warm = cold_and_warm
    if fmt in ("json",):
        # stats differ between runs (reuse counters); compare the graphs
        from repro.output.json_output import graph_to_json

        assert graph_to_json(warm.graph) == graph_to_json(cold.graph)
    elif fmt == "markdown":
        from repro.output.markdown_output import graph_to_markdown

        assert graph_to_markdown(warm.graph) == graph_to_markdown(cold.graph)
    else:
        from repro.output.registry import render

        assert render(warm.graph, fmt) == render(cold.graph, fmt)


def test_csv_columns_layout_deterministic(cold_and_warm):
    cold, warm = cold_and_warm
    from repro.output.csv_output import graph_to_csv

    assert graph_to_csv(warm.graph, layout="columns") == graph_to_csv(
        cold.graph, layout="columns"
    )


def test_edges_to_text_deterministic(cold_and_warm):
    cold, warm = cold_and_warm
    from repro.output.text_output import edges_to_text

    assert edges_to_text(warm.graph) == edges_to_text(cold.graph)
