"""Seeded differential cross-mode equivalence harness.

With four execution modes (dag/stack x serial/thread/process), two store
temperatures (cold/warm), two store layouts (single-file/sharded, plus a
``migrate`` between them), streaming vs materialized extraction, two
refresh paths (full/incremental) and order-independent planning, the
cheapest way to trust them all is to prove they *agree*: every generated warehouse — classic templates plus the
warehouse-DML surface (MERGE, ON CONFLICT upserts, QUALIFY, GROUPING
SETS/ROLLUP/CUBE, unnest/generate_series) — must produce byte-identical
sorted edge sets and byte-identical csv renderings on every axis.

Scale knobs (all via environment variables):

* ``DIFFERENTIAL_SMOKE=1`` — the reduced CI scale (3 seeds x 40 views);
* ``DIFFERENTIAL_SEEDS`` / ``DIFFERENTIAL_VIEWS`` — explicit overrides;
* ``DIFFERENTIAL_ARTIFACT_DIR`` — when set, a failing axis writes the
  reproducing seed and the full generated SQL script there (uploaded as a
  CI artifact by the ``differential-smoke`` job).

Every failure message prints the reproducing seed and the exact
``generate_warehouse(...)`` call that rebuilds the workload.
"""

import os

import pytest

from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.output.csv_output import graph_to_csv
from repro.store import LineageStore

SMOKE = bool(os.environ.get("DIFFERENTIAL_SMOKE"))
NUM_SEEDS = int(os.environ.get("DIFFERENTIAL_SEEDS", "3" if SMOKE else "10"))
NUM_VIEWS = int(os.environ.get("DIFFERENTIAL_VIEWS", "40" if SMOKE else "100"))
EXTENDED_PROBABILITY = 0.35
SEEDS = [1300 + index for index in range(NUM_SEEDS)]
#: the process-executor axis covers every seed (a pool that cannot start
#: degrades gracefully to threads, so the equivalence assertion holds on
#: any platform).
PROCESS_SEEDS = SEEDS
ARTIFACT_DIR = os.environ.get("DIFFERENTIAL_ARTIFACT_DIR")


def _recipe(seed):
    return (
        f"workload.generate_warehouse(num_base_tables={_num_base_tables()}, "
        f"num_views={NUM_VIEWS}, seed={seed}, "
        f"extended_probability={EXTENDED_PROBABILITY})"
    )


def _num_base_tables():
    return max(4, NUM_VIEWS // 12)


def _warehouse(seed):
    return workload.generate_warehouse(
        num_base_tables=_num_base_tables(),
        num_views=NUM_VIEWS,
        seed=seed,
        extended_probability=EXTENDED_PROBABILITY,
    )


def _graph_signature(graph):
    """Sorted edge set + csv rendering, as one comparable text blob."""
    edges = "\n".join(
        f"{edge.source}\t{edge.target}\t{edge.kind}" for edge in sorted(graph.edges())
    )
    return edges + "\n=== csv ===\n" + graph_to_csv(graph)


def _signature(result):
    return _graph_signature(result.graph)


def _dump_artifact(seed, warehouse, axis):
    if not ARTIFACT_DIR:
        return
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"seed_{seed}_{axis}.sql")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"-- differential failure: axis={axis} seed={seed}\n"
            f"-- rebuild the workload with: {_recipe(seed)}\n"
        )
        handle.write(warehouse.script)
        handle.write("\n")


def _assert_equivalent(seed, warehouse, axis, expected, actual):
    if expected == actual:
        return
    _dump_artifact(seed, warehouse, axis)
    expected_lines = expected.splitlines()
    actual_lines = actual.splitlines()
    first_diff = next(
        (
            index
            for index, pair in enumerate(zip(expected_lines, actual_lines))
            if pair[0] != pair[1]
        ),
        min(len(expected_lines), len(actual_lines)),
    )
    window = "\n".join(
        f"  baseline: {expected_lines[i] if i < len(expected_lines) else '<missing>'}\n"
        f"  {axis:>8}: {actual_lines[i] if i < len(actual_lines) else '<missing>'}"
        for i in range(first_diff, min(first_diff + 3, max(len(expected_lines), len(actual_lines))))
    )
    raise AssertionError(
        f"differential mismatch on axis {axis!r} for seed={seed}: edge sets "
        f"or csv renderings diverge from the dag/serial baseline.\n"
        f"Reproduce with: {_recipe(seed)}\nFirst divergence:\n{window}"
    )


def _run(warehouse, sources=None, **kwargs):
    runner = LineageXRunner(catalog=warehouse.catalog(), **kwargs)
    result = runner.run(dict(warehouse.views) if sources is None else sources)
    assert not result.report.unresolved, (
        f"seed={warehouse.seed}: unexpected unresolved entries "
        f"{dict(result.report.unresolved)} (reproduce with: "
        f"{_recipe(warehouse.seed)})"
    )
    return result


def _shuffled_sources(warehouse):
    """The same statements as a mapping in deterministically shuffled order."""
    import random

    names = list(warehouse.views)
    random.Random(warehouse.seed * 7 + 1).shuffle(names)
    return {name: warehouse.views[name] for name in names}


# ----------------------------------------------------------------------
# dag vs stack, serial vs thread, original vs shuffled order
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_mode_worker_and_order_equivalence(seed):
    warehouse = _warehouse(seed)
    baseline = _signature(_run(warehouse, mode="dag"))

    axes = {
        "stack": _run(warehouse, mode="stack"),
        "threads": _run(warehouse, mode="dag", workers=4, executor="thread"),
        "shuffled": _run(warehouse, sources=_shuffled_sources(warehouse)),
        "shuffled-stack": _run(
            warehouse, sources=_shuffled_sources(warehouse), mode="stack"
        ),
    }
    for axis, result in axes.items():
        _assert_equivalent(seed, warehouse, axis, baseline, _signature(result))


# ----------------------------------------------------------------------
# process executor (graceful thread degradation keeps this portable)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", PROCESS_SEEDS)
def test_process_executor_equivalence(seed):
    warehouse = _warehouse(seed)
    baseline = _signature(_run(warehouse))
    result = _run(warehouse, mode="dag", workers=2, executor="process")
    _assert_equivalent(seed, warehouse, "process", baseline, _signature(result))


# ----------------------------------------------------------------------
# cold vs warm persistent store
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_cold_vs_warm_store_equivalence(seed, tmp_path):
    warehouse = _warehouse(seed)
    baseline = _signature(_run(warehouse))

    store = LineageStore(tmp_path / "cache")
    try:
        cold = _run(warehouse, store=store)
        warm = _run(warehouse, store=store)
    finally:
        store.close()
    assert warm.stats()["num_reused_store"] > 0, (
        f"seed={seed}: the warm run spliced nothing from the store "
        f"(reproduce with: {_recipe(seed)})"
    )
    _assert_equivalent(seed, warehouse, "cold-store", baseline, _signature(cold))
    _assert_equivalent(seed, warehouse, "warm-store", baseline, _signature(warm))


# ----------------------------------------------------------------------
# streaming extraction (lazy source, AST release, wave batching)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_streaming_equivalence(seed):
    warehouse = _warehouse(seed)
    baseline = _signature(_run(warehouse))

    axes = {
        "stream": _run(warehouse, stream=True),
        "stream-threads": _run(
            warehouse, stream=True, workers=4, executor="thread"
        ),
        # a one-shot generator source: the shape the 100k tier feeds in
        "stream-generator": _run(
            warehouse, sources=iter(list(warehouse.views.items())), stream=True
        ),
    }
    for axis, result in axes.items():
        _assert_equivalent(seed, warehouse, axis, baseline, _signature(result))


# ----------------------------------------------------------------------
# sharded vs single-file store (cold, warm, and across a migration)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_store_equivalence(seed, tmp_path):
    warehouse = _warehouse(seed)
    baseline = _signature(_run(warehouse))
    num_statements = len(warehouse.views)

    sharded_dir = tmp_path / "sharded"
    store = LineageStore(sharded_dir, shards=4)
    try:
        cold = _run(warehouse, store=store, stream=True)
        warm_sharded = _run(warehouse, store=store, stream=True)
    finally:
        store.close()
    assert warm_sharded.stats()["num_reused_store"] == num_statements, (
        f"seed={seed}: sharded warm run spliced "
        f"{warm_sharded.stats()['num_reused_store']}/{num_statements} "
        f"(reproduce with: {_recipe(seed)})"
    )

    store = LineageStore(tmp_path / "single")
    try:
        _run(warehouse, store=store)
        warm_single = _run(warehouse, store=store)
    finally:
        store.close()
    assert warm_single.stats()["num_reused_store"] == num_statements

    # re-shard in place: cache keys are layout-independent, so the warm
    # run over the migrated store must splice everything, byte-identically
    assert LineageStore.migrate(sharded_dir, 1) > 0
    store = LineageStore(sharded_dir)
    try:
        warm_migrated = _run(warehouse, store=store)
    finally:
        store.close()
    assert warm_migrated.stats()["num_reused_store"] == num_statements

    for axis, result in (
        ("sharded-cold", cold),
        ("sharded-warm", warm_sharded),
        ("single-warm", warm_single),
        ("migrated-warm", warm_migrated),
    ):
        _assert_equivalent(seed, warehouse, axis, baseline, _signature(result))


# ----------------------------------------------------------------------
# full vs incremental refresh
# ----------------------------------------------------------------------
def _modified_sources(warehouse):
    """A deterministic delta: tweak one view, add one new view."""
    import random

    view_names = [
        name for name, sql in warehouse.views.items() if sql.startswith("CREATE VIEW")
    ]
    picked = random.Random(warehouse.seed * 13 + 5).choice(sorted(view_names))
    changes = {
        picked: warehouse.views[picked] + " LIMIT 3",
        "diff_extra_view": "CREATE VIEW diff_extra_view AS SELECT s.id FROM base_0 s",
    }
    modified = dict(warehouse.views)
    modified.update(changes)
    return changes, modified


@pytest.mark.parametrize("seed", SEEDS)
def test_full_vs_incremental_equivalence(seed):
    warehouse = _warehouse(seed)
    first = _run(warehouse)
    changes, modified = _modified_sources(warehouse)

    full = _run(warehouse, sources=modified)
    incremental = first.update(changes)
    assert not incremental.report.unresolved
    assert incremental.report.reused, (
        f"seed={seed}: the incremental refresh spliced nothing "
        f"(reproduce with: {_recipe(seed)})"
    )
    _assert_equivalent(
        seed, warehouse, "incremental", _signature(full), _signature(incremental)
    )


# ----------------------------------------------------------------------
# indexed vs BFS impact queries: the reachability-index axis
# ----------------------------------------------------------------------
def _impact_signature(graph, method):
    """Every column's partition in both directions, as one text blob."""
    from repro.analysis.impact import impact_analysis

    columns = sorted(
        set(graph.column_adjacency("downstream"))
        | set(graph.column_adjacency("upstream"))
    )
    lines = []
    for column in columns:
        for direction in ("downstream", "upstream"):
            result = impact_analysis(
                graph, column, direction=direction, method=method
            )
            rows = ";".join(
                f"{table}.{name}:{kind}" for table, name, kind in result.to_rows()
            )
            lines.append(f"{column}\t{direction}\t{rows}")
    return "\n".join(lines)


@pytest.mark.parametrize("seed", SEEDS)
def test_indexed_impact_equivalence(seed, tmp_path):
    """The precomputed reachability index must answer every impact query
    byte-identically to the kind-tracking BFS — on dag and stack graphs,
    over cold and warm stores, through frozen snapshots and on live graphs
    with a forced index build."""
    warehouse = _warehouse(seed)
    store = LineageStore(tmp_path / "cache")
    try:
        cold = _run(warehouse, store=store)
        warm = _run(warehouse, store=store)
    finally:
        store.close()
    stack = _run(warehouse, mode="stack")

    for axis, result in (("cold", cold), ("warm", warm), ("stack", stack)):
        graph = result.graph
        bfs = _impact_signature(graph, "bfs")
        _assert_equivalent(
            seed, warehouse, f"index-frozen-{axis}",
            bfs, _impact_signature(graph.freeze(), "auto"),
        )
        graph.reachability()  # force a live build; auto must then use it
        _assert_equivalent(
            seed, warehouse, f"index-live-{axis}",
            bfs, _impact_signature(graph, "auto"),
        )


@pytest.mark.parametrize("seed", SEEDS[:1] if SMOKE else SEEDS[:3])
def test_indexed_impact_serving_equivalence(seed):
    """The index pinned into the daemon's published snapshot answers
    identically to BFS over the same frozen graph."""
    import asyncio

    from repro.server import LineageApp

    warehouse = _classic_warehouse(seed)

    async def serve():
        app = LineageApp(catalog=warehouse.catalog(), batch_window=0.002)
        await app.start(port=0)
        try:
            await app.preload(dict(warehouse.views))
            return app.snapshots.current().graph
        finally:
            await app.stop()

    graph = asyncio.run(serve())
    _assert_equivalent(
        seed, warehouse, "index-serving",
        _impact_signature(graph, "bfs"), _impact_signature(graph, "auto"),
    )


# ----------------------------------------------------------------------
# crash recovery: journaled-then-killed-then-resumed ingest vs one shot
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS[:1] if SMOKE else SEEDS[:3])
def test_crash_recovery_equivalence(seed, tmp_path):
    """Ingesting half the corpus (journaled), abandoning the daemon
    without a clean shutdown, replaying the journal in a fresh daemon,
    and ingesting the rest must be byte-identical to a one-shot run."""
    import asyncio
    import random

    from repro.server import LineageApp

    warehouse = _classic_warehouse(seed)
    journal_dir = tmp_path / "journal"
    names = list(warehouse.views)
    random.Random(seed * 11 + 3).shuffle(names)
    half = max(1, len(names) // 2)

    async def one_shot():
        app = LineageApp(catalog=warehouse.catalog(), batch_window=0.002)
        app.batcher.start()
        try:
            await app.batcher.submit(dict(warehouse.views))
            return _graph_signature(app.snapshots.current().graph)
        finally:
            await app.stop()

    async def first_half():
        app = LineageApp(
            catalog=warehouse.catalog(),
            batch_window=0.002,
            journal_dir=str(journal_dir),
        )
        app.batcher.start()
        # chunked submissions so several journal batches land
        for index in range(0, half, 7):
            chunk = {
                name: warehouse.views[name]
                for name in names[index:index + 7]
            }
            await app.batcher.submit(chunk)
        # "crash": stop the loop and walk away — no app.stop(), no
        # journal close.  Every acknowledged entry is already fsync'd.
        await app.batcher.stop()

    async def resume():
        app = LineageApp(
            catalog=warehouse.catalog(),
            batch_window=0.002,
            journal_dir=str(journal_dir),
        )
        try:
            replayed = await app.recover()
            assert replayed >= half, (
                f"seed={seed}: journal replay returned {replayed} < {half} "
                f"(reproduce with: {_recipe(seed)} at extended_probability=0.0)"
            )
            rest = {name: warehouse.views[name] for name in names[half:]}
            if rest:
                await app.batcher.submit(rest)
            return _graph_signature(app.snapshots.current().graph)
        finally:
            await app.stop()

    baseline = asyncio.run(one_shot())
    asyncio.run(first_half())
    recovered = asyncio.run(resume())
    _assert_equivalent(seed, warehouse, "crash-recovery", baseline, recovered)


# ----------------------------------------------------------------------
# the serving daemon: shuffled concurrent /extract batches vs one shot
# ----------------------------------------------------------------------
def _classic_warehouse(seed):
    """Classic (pure CREATE VIEW) templates: any batch order converges.

    The extended DML templates (MERGE/upsert) mutate state across
    statements, so streaming them in arbitrary cross-batch order is not
    semantically order-independent; the serving axis therefore runs the
    classic workload, where every statement is a view definition.
    """
    return workload.generate_warehouse(
        num_base_tables=_num_base_tables(),
        num_views=NUM_VIEWS,
        seed=seed,
        extended_probability=0.0,
    )


async def _post_extract(host, port, statements):
    import asyncio
    import json

    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps({"statements": statements}).encode()
        writer.write(
            b"POST /extract HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    assert status == 200, f"POST /extract failed ({status}): {payload[:300]}"
    return json.loads(payload)


@pytest.mark.parametrize("seed", SEEDS)
def test_serving_daemon_stream_equivalence(seed, tmp_path):
    """Streaming the corpus through /extract in shuffled concurrent batches
    must leave the daemon's snapshot byte-identical to a one-shot run —
    and splice warm hits from the store the one-shot run populated."""
    import asyncio
    import random

    from repro.server import LineageApp

    warehouse = _classic_warehouse(seed)
    cache_dir = tmp_path / "cache"

    store = LineageStore(cache_dir)
    try:
        baseline = _signature(_run(warehouse, store=store))
    finally:
        store.close()

    names = list(warehouse.views)
    random.Random(seed * 3 + 2).shuffle(names)
    chunk_size = max(3, len(names) // 12)
    chunks = [
        {name: warehouse.views[name] for name in names[index:index + chunk_size]}
        for index in range(0, len(names), chunk_size)
    ]

    async def stream():
        app = LineageApp(
            catalog=warehouse.catalog(),
            cache_dir=str(cache_dir),
            batch_window=0.002,
        )
        host, port = await app.start(port=0)
        try:
            responses = []
            # waves of 4 concurrent chunked requests: exercises both the
            # micro-batch assembly and cross-batch ordering
            for index in range(0, len(chunks), 4):
                responses.extend(
                    await asyncio.gather(
                        *(
                            _post_extract(host, port, chunk)
                            for chunk in chunks[index:index + 4]
                        )
                    )
                )
            snapshot = app.snapshots.current()
            return _graph_signature(snapshot.graph), responses
        finally:
            await app.stop()

    served, responses = asyncio.run(stream())

    spliced = sum(
        response.get("batch", {}).get("reused_from_store", 0)
        for response in responses
    )
    assert spliced > 0, (
        f"seed={seed}: the daemon spliced nothing from the warm store "
        f"(reproduce with: {_recipe(seed)} at extended_probability=0.0)"
    )
    unresolved = responses[-1].get("batch", {}).get("unresolved", [])
    assert not unresolved, (
        f"seed={seed}: statements still unresolved after the final batch: "
        f"{unresolved}"
    )
    _assert_equivalent(seed, warehouse, "serving", baseline, served)
