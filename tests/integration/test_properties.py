"""Property-based tests over generated warehouses and core invariants.

The key invariants LineageX promises:

* extraction never fails on a well-formed pipeline, regardless of the order
  the statements arrive in (the auto-inference stack makes order irrelevant);
* every lineage edge points from a *source* relation of the view (table
  lineage and column lineage are consistent);
* views only ever depend on relations that exist in the pipeline (base
  tables or other views) — never on their own intermediates (CTE names must
  not leak);
* the JSON document round-trips losslessly;
* impact analysis closures are monotone (downstream sets only grow as edges
  are added) and consistent with upstream closures.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.diff import diff_graphs
from repro.analysis.impact import downstream_columns, upstream_columns
from repro.core.column_refs import ColumnName
from repro.core.runner import lineagex
from repro.datasets import workload
from repro.output import graph_from_json, graph_to_json


warehouse_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

warehouse_strategy = st.builds(
    workload.generate_warehouse,
    num_base_tables=st.integers(min_value=2, max_value=6),
    num_views=st.integers(min_value=3, max_value=25),
    columns_per_table=st.integers(min_value=3, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestGeneratedPipelines:
    @warehouse_settings
    @given(warehouse=warehouse_strategy)
    def test_extraction_always_resolves_all_views(self, warehouse):
        result = lineagex(warehouse.shuffled_script(), catalog=warehouse.catalog())
        assert not result.report.unresolved
        assert len(result.graph.views) == len(warehouse.views)

    @warehouse_settings
    @given(warehouse=warehouse_strategy)
    def test_order_independence(self, warehouse):
        ordered = lineagex(warehouse.script, catalog=warehouse.catalog())
        shuffled = lineagex(warehouse.shuffled_script(), catalog=warehouse.catalog())
        diff = diff_graphs(shuffled.graph, ordered.graph)
        assert diff.is_identical, diff.summary()

    @warehouse_settings
    @given(warehouse=warehouse_strategy)
    def test_column_lineage_consistent_with_table_lineage(self, warehouse):
        result = lineagex(warehouse.script, catalog=warehouse.catalog())
        for view in result.graph.views:
            for sources in view.contributions.values():
                for source in sources:
                    assert source.table in view.source_tables
            for source in view.referenced:
                assert source.table in view.source_tables

    @warehouse_settings
    @given(warehouse=warehouse_strategy)
    def test_edges_only_point_at_known_relations(self, warehouse):
        result = lineagex(warehouse.script, catalog=warehouse.catalog())
        known = set(warehouse.base_tables) | set(warehouse.views)
        for view in result.graph.views:
            assert view.source_tables <= known, "no CTE or alias names may leak"

    @warehouse_settings
    @given(warehouse=warehouse_strategy)
    def test_json_round_trip_lossless(self, warehouse):
        result = lineagex(warehouse.script, catalog=warehouse.catalog())
        rebuilt = graph_from_json(graph_to_json(result.graph))
        assert diff_graphs(rebuilt, result.graph).is_identical

    @warehouse_settings
    @given(warehouse=warehouse_strategy)
    def test_every_view_column_reaches_a_base_table_upstream(self, warehouse):
        result = lineagex(warehouse.script, catalog=warehouse.catalog())
        base_tables = set(warehouse.base_tables)
        for view in result.graph.views:
            for column in view.output_columns:
                sources = view.contributions.get(column, set())
                if not sources:
                    continue  # purely computed columns (count(*), literals)
                upstream = upstream_columns(
                    result.graph, ColumnName.of(view.name, column)
                )
                assert any(c.table in base_tables for c in upstream), (
                    f"{view.name}.{column} never reaches a base table"
                )

    @warehouse_settings
    @given(warehouse=warehouse_strategy, column_index=st.integers(min_value=0, max_value=200))
    def test_impact_closure_consistency(self, warehouse, column_index):
        result = lineagex(warehouse.script, catalog=warehouse.catalog())
        all_base_columns = [
            ColumnName.of(name, column)
            for name, columns in sorted(warehouse.base_tables.items())
            for column in columns
        ]
        start = all_base_columns[column_index % len(all_base_columns)]
        downstream = downstream_columns(result.graph, start)
        for reached in downstream:
            assert start in upstream_columns(result.graph, reached)


class TestStrictModeProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        num_views=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_strict_mode_never_changes_successful_results(self, num_views, seed):
        """When strict extraction succeeds, it agrees with the default mode."""
        from repro.core.errors import AmbiguousColumnError

        warehouse = workload.generate_warehouse(
            num_base_tables=3, num_views=num_views, seed=seed
        )
        relaxed = lineagex(warehouse.script, catalog=warehouse.catalog())
        try:
            strict = lineagex(warehouse.script, catalog=warehouse.catalog(), strict=True)
        except AmbiguousColumnError:
            return  # ambiguity found: strictness is allowed to refuse
        assert diff_graphs(strict.graph, relaxed.graph).is_identical
