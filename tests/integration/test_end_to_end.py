"""End-to-end integration tests across modules.

These reproduce the paper's worked example and the demonstration steps as a
single pipeline: preprocess -> auto-inference extraction -> graph -> impact
analysis -> serialisation, and check the static and database-connection
modes agree.
"""

import json

import pytest

from repro import Catalog, ColumnName, lineagex, lineagex_with_connection
from repro.analysis.diff import diff_graphs
from repro.analysis.impact import explore, impact_analysis
from repro.baselines import SQLLineageBaseline
from repro.datasets import example1, mimic, retail
from repro.output import graph_from_json


def col(table, column):
    return ColumnName.of(table, column)


class TestExample1EndToEnd:
    """The full Figure 1 / Figure 2 / Figure 5 story on Example 1."""

    def test_lineage_matches_ground_truth_exactly(self, example1_graph):
        diff = diff_graphs(example1_graph, example1.ground_truth())
        assert not diff.missing_relations
        assert not any(diff.missing_columns.values())
        assert not diff.missing_edges

    def test_paper_figure2_webinfo_lineage(self, example1_graph):
        webinfo = example1_graph["webinfo"]
        assert webinfo.contributions == {
            "wcid": {col("customers", "cid")},
            "wdate": {col("web", "date")},
            "wpage": {col("web", "page")},
            "wreg": {col("web", "reg")},
        }

    def test_paper_figure2_webact_lineage(self, example1_graph):
        webact = example1_graph["webact"]
        assert webact.output_columns == ["wcid", "wdate", "wpage", "wreg"]
        assert webact.contributions["wpage"] == {
            col("webinfo", "wpage"),
            col("web", "page"),
        }
        # the set operation references every input projection column
        assert col("web", "reg") in webact.referenced
        assert col("webinfo", "wcid") in webact.referenced

    def test_paper_figure2_info_lineage(self, example1_graph):
        info = example1_graph["info"]
        assert info.output_columns == [
            "name", "age", "oid", "wcid", "wdate", "wpage", "wreg",
        ]
        # the w.* columns point at webact (the adjacent view), not at web
        assert info.contributions["wdate"] == {col("webact", "wdate")}
        assert col("webact", "wcid") in info.referenced

    def test_step3_explore_sequence(self, example1_graph):
        _, first_hop = explore(example1_graph, "web")
        assert first_hop == {"webinfo", "webact"}
        _, second_hop = explore(example1_graph, "web", hops=2)
        assert "info" in second_hop
        _, third_hop = explore(example1_graph, "info")
        assert third_hop == set()

    def test_step4_impact_analysis(self, example1_graph):
        result = impact_analysis(example1_graph, "web.page")
        assert {str(c) for c in result.all_columns} == example1.IMPACT_OF_WEB_PAGE

    def test_json_and_html_round_trip(self, example1_result, tmp_path):
        json_path, html_path = example1_result.save(str(tmp_path))
        rebuilt = graph_from_json(open(json_path).read())
        assert diff_graphs(rebuilt, example1_result.graph).is_identical
        html = open(html_path).read()
        assert "webact" in html

    def test_comparison_with_sqllineage_baseline(self, example1_graph):
        baseline = SQLLineageBaseline().run(example1.QUERY_LOG)
        # LineageX finds the webact -> info edges the baseline misses entirely
        lineagex_edges = {
            (str(e.source), str(e.target))
            for e in example1_graph.edges()
            if e.source.table == "webact" and e.target.table == "info"
        }
        baseline_edges = {
            (str(e.source), str(e.target))
            for e in baseline.edges()
            if e.source.table == "webact" and e.target.table == "info"
        }
        assert lineagex_edges and all("*" not in s for s, _ in lineagex_edges)
        assert baseline_edges == {("webact.*", "info.*")}

    def test_static_and_connection_modes_agree(self, example1_with_catalog):
        connected = lineagex_with_connection(
            example1.QUERY_LOG, catalog=example1.base_table_catalog()
        )
        assert diff_graphs(connected.graph, example1_with_catalog.graph).is_identical


class TestWarehouseIntegration:
    def test_retail_every_view_column_traces_to_something(self, retail_result):
        for view in retail_result.graph.views:
            # every staging/mart column either has contributions or is a
            # computed aggregate over them; no view may be empty
            assert view.output_columns
            assert view.source_tables

    def test_retail_transitive_impact_of_order_items_discount(self, retail_result):
        result = impact_analysis(retail_result.graph, "order_items.discount")
        tables = set(result.impacted_tables())
        assert {"stg_order_items", "order_revenue", "customer_ltv"} <= tables

    def test_retail_upstream_of_ltv(self, retail_result):
        from repro.analysis.impact import upstream_columns

        upstream = upstream_columns(retail_result.graph, "customer_ltv.lifetime_value")
        assert col("order_items", "unit_price") in upstream
        assert col("order_items", "quantity") in upstream

    def test_mimic_scale_and_correctness_spot_checks(self, mimic_result):
        graph = mimic_result.graph
        assert len(graph.views) == 70
        # a deep chain: research_cohort <- elderly_admissions <- patient_admissions <- stg_*
        research = graph["research_cohort"]
        assert "primary_diagnosis" in research.source_tables
        result = impact_analysis(graph, "patients.dob")
        assert "research_cohort" in result.impacted_tables()

    def test_mimic_order_independence(self):
        first = lineagex(mimic.full_script(shuffle_seed=1))
        second = lineagex(mimic.full_script(shuffle_seed=2))
        diff = diff_graphs(first.graph, second.graph)
        assert diff.is_identical, diff.summary()

    def test_retail_connection_mode_agreement(self):
        static = lineagex(retail.VIEW_SCRIPT, catalog=retail.base_table_catalog())
        connected = lineagex_with_connection(
            retail.VIEW_SCRIPT, catalog=retail.base_table_catalog()
        )
        assert diff_graphs(connected.graph, static.graph).is_identical

    def test_incremental_catalog_knowledge_only_adds_columns(self):
        without_catalog = lineagex(example1.QUERY_LOG)
        with_catalog = lineagex(example1.QUERY_LOG, catalog=example1.base_table_catalog())
        for entry in without_catalog.graph.base_tables:
            enriched = with_catalog.graph[entry.name]
            assert set(entry.output_columns) <= set(enriched.output_columns)

    def test_stats_serialise_to_json(self, mimic_result):
        payload = json.loads(json.dumps(mimic_result.stats()))
        assert payload["num_views"] == 70
