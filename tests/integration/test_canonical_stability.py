"""Canonical-form and store-key stability guards.

Two invariants protect the persistent store across parser/printer/hash
refactors:

* **fixed point** — canonical print -> parse -> canonical print must be
  the identity: the store's lazy re-parse path and incremental source
  reconstruction both round-trip through ``statement_sql``;
* **golden hashes** — ``ParsedQuery.content_hash`` (the first component
  of every store key) is pinned byte-for-byte for a corpus of
  representative statements.  These constants were produced by the PR 3
  code base; if this test ever needs its constants re-generated, every
  existing lineage store on disk silently goes cold — bump
  ``EXTRACTOR_VERSION`` (or accept the invalidation) *deliberately*.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.preprocess import preprocess
from repro.datasets import workload
from repro.sqlparser import parse
from repro.sqlparser.printer import canonical_sql_and_hash, to_sql
from repro.store import make_key, schema_fingerprint


# ----------------------------------------------------------------------
# Fixed point: canonical print -> parse -> canonical print
# ----------------------------------------------------------------------
HANDWRITTEN = [
    "SELECT a, b FROM t WHERE a > 1 AND b IS NOT NULL",
    "SELECT DISTINCT ON (t.x) t.x, t.y FROM t ORDER BY t.x, t.y DESC NULLS LAST",
    "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5) SELECT * FROM r",
    "SELECT count(*) FILTER (WHERE t.ok), sum(t.v) OVER (PARTITION BY t.g ORDER BY t.ts) FROM t",
    "SELECT CASE WHEN t.a THEN 'x' ELSE 'y' END, CAST(t.b AS int), t.c::text FROM t",
    "SELECT e.x FROM sch.tbl e JOIN u USING (id) CROSS JOIN v",
    "SELECT * FROM (VALUES (1, 'a'), (2, 'b')) AS vals(n, s)",
    "SELECT g.i FROM generate_series(1, 10) AS g(i)",
    "INSERT INTO t (a, b) SELECT s.a, s.b FROM s",
    "UPDATE t AS x SET a = y.b FROM y WHERE x.id = y.id",
    "DELETE FROM t USING u WHERE t.id = u.id",
    "CREATE OR REPLACE MATERIALIZED VIEW mv (c1, c2) AS SELECT 1, 2",
    "CREATE TABLE IF NOT EXISTS w (a int, b text)",
    'SELECT q."Weird Name" FROM "Mixed Case" q',
    "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v EXCEPT SELECT d FROM w",
    "SELECT t.a NOT BETWEEN 1 AND 2, t.b NOT LIKE 'x%', t.c IN (1, 2) FROM t",
    "SELECT EXISTS (SELECT 1 FROM u WHERE u.id = t.id) FROM t",
    # the warehouse DML surface (PR 5)
    "MERGE INTO tgt AS t USING src AS s ON t.id = s.id "
    "WHEN MATCHED AND s.flag THEN UPDATE SET a = s.a "
    "WHEN NOT MATCHED THEN INSERT (id, a) VALUES (s.id, s.a) "
    "WHEN MATCHED THEN DELETE",
    "MERGE INTO tgt USING (SELECT a.id FROM a) AS s ON tgt.id = s.id "
    "WHEN MATCHED THEN DO NOTHING",
    "INSERT INTO t (a, b) SELECT s.a, s.b FROM s "
    "ON CONFLICT (a) DO UPDATE SET b = excluded.b WHERE t.a > 0",
    "INSERT INTO t (a) VALUES (1) ON CONFLICT DO NOTHING",
    "SELECT s.a, row_number() OVER (ORDER BY s.b) AS rn FROM s QUALIFY rn = 1",
    "SELECT s.a, s.b, count(*) AS n FROM s GROUP BY GROUPING SETS ((s.a, s.b), (s.a), ())",
    "SELECT s.a, s.b FROM s GROUP BY ROLLUP (s.a, s.b), CUBE (s.b)",
    "SELECT s.id, u.item FROM s CROSS JOIN unnest(s.tags) AS u(item)",
]


def _assert_fixed_point(sql):
    for statement in parse(sql):
        canonical = to_sql(statement)
        reparsed = parse(canonical)
        assert len(reparsed) == 1, canonical
        assert to_sql(reparsed[0]) == canonical, canonical


def test_handwritten_corpus_is_a_fixed_point():
    for sql in HANDWRITTEN:
        _assert_fixed_point(sql)


@settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    warehouse=st.builds(
        workload.generate_warehouse,
        num_base_tables=st.integers(min_value=2, max_value=5),
        num_views=st.integers(min_value=3, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
)
def test_generated_pipelines_are_a_fixed_point(warehouse):
    _assert_fixed_point(warehouse.script)


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    warehouse=st.builds(
        workload.generate_warehouse,
        num_base_tables=st.integers(min_value=2, max_value=5),
        num_views=st.integers(min_value=5, max_value=25),
        seed=st.integers(min_value=0, max_value=10_000),
        extended_probability=st.floats(min_value=0.2, max_value=0.6),
    )
)
def test_extended_pipelines_are_a_fixed_point(warehouse):
    """The warehouse-DML templates (MERGE/upsert/QUALIFY/grouping/unnest)
    round-trip through the canonical printer too."""
    _assert_fixed_point(warehouse.script)


def test_fused_hash_matches_two_pass_form():
    """canonical_sql_and_hash == (to_sql, hash-of-that-text), by construction."""
    import hashlib

    for sql in HANDWRITTEN:
        for statement in parse(sql):
            canonical, fused = canonical_sql_and_hash(statement, "view")
            assert canonical == to_sql(statement)
            digest = hashlib.sha256()
            digest.update(b"view\0")
            digest.update(canonical.encode("utf-8"))
            assert fused == digest.hexdigest()


# ----------------------------------------------------------------------
# Golden content hashes (store-key component #1)
# ----------------------------------------------------------------------
GOLDEN_CORPUS = {
    "plain_view": "CREATE VIEW plain_view AS SELECT o.id, o.amount FROM orders o",
    "filtered": "CREATE VIEW filtered AS SELECT s.id FROM stock s WHERE s.qty IS NOT NULL",
    "joined": (
        "CREATE VIEW joined AS SELECT l.id, r.name AS r_name "
        "FROM left_t l JOIN right_t r ON l.k = r.k"
    ),
    "aggregated": (
        "CREATE VIEW aggregated AS SELECT t.region, count(*) AS n, max(t.score) AS top "
        "FROM metrics t GROUP BY t.region HAVING count(*) > 1 ORDER BY 2 DESC LIMIT 5"
    ),
    "unioned": (
        "CREATE VIEW unioned AS SELECT a.x AS k FROM t1 a UNION SELECT b.y FROM t2 b"
    ),
    "starred": "CREATE VIEW starred AS SELECT s.* FROM base_tbl s",
    "with_cte": (
        "CREATE VIEW with_cte AS WITH recent AS (SELECT o.id FROM orders o WHERE o.ts > '2024-01-01') "
        "SELECT r.id FROM recent r"
    ),
    "tabled": "CREATE TABLE tabled AS SELECT x.a, x.b::int AS b_int FROM src x",
    "inserted": "INSERT INTO audit (who, what) SELECT u.name, a.action FROM u, a",
    "updated": "UPDATE target SET val = s.v FROM sync s WHERE target.id = s.id",
    "deleted": "DELETE FROM target WHERE target.flag = FALSE",
    "selected": "SELECT e.name, EXTRACT(year FROM e.hired) AS y FROM employees e",
    "quoted": 'CREATE VIEW quoted AS SELECT q."Weird Name" AS ok FROM "Mixed Case" q',
    "windowed": (
        "CREATE VIEW windowed AS SELECT w.id, row_number() OVER (PARTITION BY w.g ORDER BY w.id) AS rn "
        "FROM wins w"
    ),
    # --- the warehouse DML surface; constants produced by the PR 5 code ---
    "merged": (
        "MERGE INTO stage AS t USING src AS s ON t.id = s.id "
        "WHEN MATCHED AND s.flag IS NOT NULL THEN UPDATE SET amount = s.amount "
        "WHEN NOT MATCHED THEN INSERT (id, amount) VALUES (s.id, s.amount)"
    ),
    "upserted": (
        "INSERT INTO stage (id, val) SELECT s.id, s.val FROM src s "
        "ON CONFLICT (id) DO UPDATE SET val = excluded.val"
    ),
    "qualified": (
        "CREATE VIEW qualified AS SELECT w.id, row_number() OVER (PARTITION BY w.g ORDER BY w.id) AS rn "
        "FROM wins w QUALIFY rn = 1"
    ),
    "grouping_sets": (
        "CREATE VIEW grouping_sets AS SELECT t.region, t.kind, count(*) AS n "
        "FROM metrics t GROUP BY GROUPING SETS ((t.region, t.kind), (t.region), ())"
    ),
    "rolled_up": (
        "CREATE VIEW rolled_up AS SELECT t.region, sum(t.score) AS total "
        "FROM metrics t GROUP BY ROLLUP (t.region)"
    ),
    "unnested": (
        "CREATE VIEW unnested AS SELECT s.id, u.item FROM src s "
        "CROSS JOIN unnest(s.tags) AS u(item)"
    ),
    "series": (
        "CREATE VIEW series AS SELECT g.step FROM generate_series(1, 10) AS g(step)"
    ),
}

#: (corpus key, statement kind, content_hash) — produced by the PR 3 code
#: base and pinned; see the module docstring before touching these.
GOLDEN_HASHES = [
    ("plain_view", "view", "a04081473ec2566e95c6f644b76d00cab782d683403123c7d35c3beaad87e57e"),
    ("filtered", "view", "8c0bdeebadfc0994d871eb1deedd84eacb32c56b58e5233dab22df0c56ecfc17"),
    ("joined", "view", "c45b2b1ade1c349affe153ee236f93214885241ea0b6d8f9c809e3138b534678"),
    ("aggregated", "view", "599938cc203f7dafc74cc1d74bb5ae8de1181b55a250847cc550605541d49635"),
    ("unioned", "view", "5385a14e7212d0270e39a31abd6d7c4e7b6b35af69a0c687373ebf056128859d"),
    ("starred", "view", "6d315c19b93b51bbba6df4f3fb4eb89a856bed34b9381022491e1b439c4a6be8"),
    ("with_cte", "view", "0a8d1487e7200992e7d1f89c1c2bd83602fadb90ead8877a4223638aff9dcf95"),
    ("tabled", "table", "3f93eda5e0e64126d4cf8abc683a37d7e85b96858717a4e6de1cc5423dcd8aab"),
    ("inserted", "insert", "8e810adff7072402318f71f4ae479958702e5bfd5d13649e0390dd3268195a77"),
    ("updated", "update", "cac92c3d31e8f874760a9d2f9bd55b50aef49cdc8d279fae12511bf6deffa5cb"),
    ("deleted", "delete", "cc2f27d060f5ce6dc058612d4f9e2555c0966f33da6c8a63a365af8c9c280be4"),
    ("selected", "select", "68ee38d5c0a08ce8a12143d054188e0a3aedc7a04cf6b0ab31e6e498cb2abff0"),
    ("quoted", "view", "8906f258038d33ce8c6cfb2e8d5af30d58b34634847491660dcc27de29560e7a"),
    ("windowed", "view", "9d5db29fa1c07545a6ee8da0254134776a571b5559ac0e17ed0279ad34ac1719"),
    # warehouse DML kinds, pinned when the PR 5 grammar landed
    ("merged", "merge", "662dac2f4560b79612823ff63daa819962c588f81867ef433efdb3096c92175c"),
    ("upserted", "insert", "85b874e7245ba5357f0d47d45b665454b3630125b52442280f54cfe8295d7221"),
    ("qualified", "view", "e3e1eefcd363083a7e9c3fcb80511921a3d735552e623bca0b1729cf305905a5"),
    ("grouping_sets", "view", "dcef7ca48abddceaf54f55d71e5ce50c84a02929fe035b598efa1b69fd0cbabc"),
    ("rolled_up", "view", "a09cd00c780263d75c307b7900f39cd8b2b49ad70a22d4f9b298d04503dfa8d7"),
    ("unnested", "view", "f28070190cea35273fcbc660e7dfdb80ca5cb3299e4d94d1005a23bffa65d6fc"),
    ("series", "view", "beed8d6a4cc813ea6c99c2d8c4c864e1cb014ad5c9aedb4b9a2841bf6dbcc281"),
]


def test_golden_content_hashes():
    observed = []
    for name, sql in GOLDEN_CORPUS.items():
        for _, entry in preprocess(sql).items():
            observed.append((name, entry.kind, entry.content_hash))
    assert observed == GOLDEN_HASHES


def test_whitespace_and_comment_edits_do_not_change_the_hash():
    noisy = (
        "CREATE VIEW plain_view AS  -- definition\n"
        "  SELECT o.id, /* both columns */ o.amount\n"
        "  FROM orders o"
    )
    (_, entry), = preprocess(noisy).items()
    assert entry.content_hash == GOLDEN_HASHES[0][2]


def test_store_key_is_stable():
    """The combined store key over pinned inputs never drifts silently."""
    fingerprint = schema_fingerprint(
        [("orders", ["id", "amount"]), ("external", None)], strict=False
    )
    assert fingerprint == (
        schema_fingerprint([("external", None), ("orders", ["id", "amount"])])
    ), "fingerprint must be order-insensitive"
    assert fingerprint == (
        "a11474ec6a721e597191754ebeb77569f8c377623e094c556124fadea81ae244"
    )
    key = make_key(GOLDEN_HASHES[0][2], "postgres", 1, fingerprint)
    assert key == (
        "4e84e29a6ff22e9393df590080d06352c42f1d5d104d4767e21933e3d45b14d8"
    )
