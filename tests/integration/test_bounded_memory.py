"""Bounded memory under streaming extraction (the scale-tier claim).

Streaming mode must keep the transient population — tokens, ASTs, raw
SQL — from scaling with the corpus: ``preprocess`` consumes the source
lazily and drops each cold-parsed AST after hashing, and the scheduler
re-materialises and releases ASTs wave by wave.  What *may* grow
linearly is the result itself (one ``TableLineage`` per statement plus
the column graph); what must not is everything else.

Measured with ``tracemalloc`` (Python-heap peaks, immune to allocator
and RSS accounting noise).  Two assertions:

* growing the corpus 10x (1k -> 10k statements) grows the streaming
  peak by less than a pinned multiple — super-linear blowups (the
  all-ASTs-at-once regime) fail loudly;
* at the same scale, streaming peaks below the materialize-everything
  mode by a pinned margin, so the release machinery cannot silently
  stop working (``retain_asts=True`` would still pass the growth
  check, because the result dominates both modes).
"""

import gc
import tracemalloc

from repro.core.runner import LineageXRunner
from repro.datasets import workload

SEED = 31
#: 10x the statements must cost less than this multiple of the 1k peak.
#: The result's linear growth predicts ~10x; the pre-streaming regime
#: (every AST alive at once) measured well above 14x.
GROWTH_LIMIT = 13.0
#: streaming must peak at or below this fraction of the materialized
#: peak at 10k statements.  Measured ~0.76 on the recording machine (the
#: retained result dominates both modes; the released AST population is
#: the delta); a silently broken release path puts the ratio at ~1.0.
ABLATION_LIMIT = 0.9


def _traced_peak_mb(num_views, stream):
    warehouse = workload.iter_warehouse(
        num_base_tables=max(5, num_views // 200), num_views=num_views, seed=SEED
    )
    runner = LineageXRunner(catalog=warehouse.catalog(), stream=stream)
    gc.collect()
    tracemalloc.start()
    try:
        result = runner.run(warehouse)
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert not result.report.unresolved
    assert len(result.graph.views) == num_views
    return peak / (1024.0 * 1024.0)


def test_streaming_peak_grows_sublinearly_and_beats_materialized():
    small_peak = _traced_peak_mb(1_000, stream=True)
    large_peak = _traced_peak_mb(10_000, stream=True)
    growth = large_peak / small_peak
    assert growth < GROWTH_LIMIT, (
        f"streaming peak grew {growth:.1f}x for 10x the statements "
        f"({small_peak:.1f} MB -> {large_peak:.1f} MB); the transient "
        f"population is scaling with the corpus again"
    )

    materialized_peak = _traced_peak_mb(10_000, stream=False)
    ratio = large_peak / materialized_peak
    assert ratio <= ABLATION_LIMIT, (
        f"streaming peaked at {large_peak:.1f} MB vs {materialized_peak:.1f} "
        f"MB materialized ({ratio:.2f} of it; limit {ABLATION_LIMIT}) — "
        f"AST release is no longer dropping anything"
    )
