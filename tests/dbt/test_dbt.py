"""Tests for the dbt project model and the dbt wrapper."""

import pytest

from repro.core.column_refs import ColumnName
from repro.dbt import DbtProject, compile_jinja_refs, lineagex_dbt


def col(table, column):
    return ColumnName.of(table, column)


class TestJinjaCompilation:
    def test_ref_resolves_to_model_name(self):
        assert compile_jinja_refs("SELECT * FROM {{ ref('orders_clean') }}") == (
            "SELECT * FROM orders_clean"
        )

    def test_two_argument_ref_uses_model_name(self):
        assert (
            compile_jinja_refs("SELECT * FROM {{ ref('pkg', 'orders_clean') }}")
            == "SELECT * FROM orders_clean"
        )

    def test_source_resolves_to_qualified_name(self):
        compiled = compile_jinja_refs("SELECT * FROM {{ source('raw', 'web') }}")
        assert compiled == "SELECT * FROM raw.web"

    def test_source_mapping_override(self):
        compiled = compile_jinja_refs(
            "SELECT * FROM {{ source('raw', 'web') }}",
            source_mapping={("raw", "web"): "landing.web_events"},
        )
        assert compiled == "SELECT * FROM landing.web_events"

    def test_config_block_removed(self):
        compiled = compile_jinja_refs(
            "{{ config(materialized='view') }}\nSELECT a FROM t"
        )
        assert compiled == "SELECT a FROM t"

    def test_jinja_comments_removed(self):
        compiled = compile_jinja_refs("{# note #}SELECT a FROM t")
        assert compiled == "SELECT a FROM t"

    def test_whitespace_variants(self):
        compiled = compile_jinja_refs("SELECT * FROM {{ref( 'm1' )}}")
        assert compiled == "SELECT * FROM m1"


class TestDbtProject:
    MODELS = {
        "stg_web": "SELECT w.cid, w.page FROM {{ source('raw', 'web') }} w",
        "page_stats": (
            "{{ config(materialized='table') }}\n"
            "SELECT s.page, count(*) AS views FROM {{ ref('stg_web') }} s GROUP BY s.page"
        ),
    }

    def test_from_models_compiles_everything(self):
        project = DbtProject.from_models(self.MODELS)
        assert set(project.compiled()) == {"stg_web", "page_stats"}
        assert "{{" not in project.compiled()["page_stats"]

    def test_refs_and_sources_extracted(self):
        project = DbtProject.from_models(self.MODELS)
        assert project.models["page_stats"].refs() == ["stg_web"]
        assert project.models["stg_web"].sources() == [("raw", "web")]

    def test_dependency_edges(self):
        project = DbtProject.from_models(self.MODELS)
        assert ("stg_web", "page_stats") in project.dependency_edges()

    def test_from_directory_reads_model_files(self, tmp_path):
        models_dir = tmp_path / "models"
        models_dir.mkdir()
        (models_dir / "stg_web.sql").write_text(self.MODELS["stg_web"])
        (models_dir / "page_stats.sql").write_text(self.MODELS["page_stats"])
        project = DbtProject.from_directory(str(tmp_path))
        assert set(project.models) == {"stg_web", "page_stats"}
        assert project.models["stg_web"].path.endswith("stg_web.sql")

    def test_from_directory_without_models_subdir(self, tmp_path):
        (tmp_path / "only_model.sql").write_text("SELECT 1 AS x")
        project = DbtProject.from_directory(str(tmp_path))
        assert set(project.models) == {"only_model"}


class TestDbtWrapper:
    MODELS = TestDbtProject.MODELS

    def test_model_names_become_query_identifiers(self):
        result = lineagex_dbt(self.MODELS)
        assert {"stg_web", "page_stats"} <= {entry.name for entry in result.graph.views}

    def test_cross_model_lineage(self):
        result = lineagex_dbt(self.MODELS)
        stats = result.graph["page_stats"]
        assert stats.contributions["page"] == {col("stg_web", "page")}
        assert "stg_web" in stats.source_tables

    def test_source_macro_becomes_base_table(self):
        result = lineagex_dbt(self.MODELS)
        assert "raw.web" in result.graph
        assert result.graph["raw.web"].is_base_table

    def test_wrapper_accepts_project_instance_and_directory(self, tmp_path):
        project = DbtProject.from_models(self.MODELS)
        from_instance = lineagex_dbt(project)
        models_dir = tmp_path / "models"
        models_dir.mkdir()
        for name, sql in self.MODELS.items():
            (models_dir / f"{name}.sql").write_text(sql)
        from_directory = lineagex_dbt(str(tmp_path))
        assert {e.name for e in from_instance.graph.views} == {
            e.name for e in from_directory.graph.views
        }

    def test_catalog_enables_star_models(self):
        from repro.catalog import Catalog

        catalog = Catalog()
        catalog.create_table("raw.web", ["cid", "date", "page", "reg"])
        models = {
            "stg_web": "SELECT w.* FROM {{ source('raw', 'web') }} w",
            "downstream": "SELECT s.* FROM {{ ref('stg_web') }} s",
        }
        result = lineagex_dbt(models, catalog=catalog)
        assert result.graph["downstream"].output_columns == ["cid", "date", "page", "reg"]
