"""Tests for the unified Session API (config, engines, refresh, shims)."""

import dataclasses
import json

import pytest

from repro import (
    LineageResult,
    LineageSession,
    SessionConfig,
    lineagex,
    lineagex_dbt,
    lineagex_with_connection,
)
from repro.analysis.diff import diff_graphs
from repro.core.errors import SessionClosedError
from repro.datasets import example1
from repro.sources import DbtSource, TextSource


class TestSessionConfig:
    def test_defaults(self):
        config = SessionConfig()
        assert config.engine == "static"
        assert config.mode == "dag"
        assert config.workers is None
        assert config.use_stack is True
        assert config.collect_traces is False
        assert config.dialect == "postgres"

    def test_frozen(self):
        config = SessionConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.engine = "plan"

    def test_replace_revalidates(self):
        config = SessionConfig().replace(engine="plan")
        assert config.engine == "plan"
        with pytest.raises(ValueError):
            config.replace(engine="quantum")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            SessionConfig(engine="llm")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling mode"):
            SessionConfig(mode="random")

    @pytest.mark.parametrize("workers", [0, -1, 2.5, True])
    def test_invalid_workers_rejected(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            SessionConfig(workers=workers)

    def test_postgresql_dialect_alias(self):
        assert SessionConfig(dialect="postgresql").dialect == "postgres"

    def test_unsupported_dialect_rejected(self):
        with pytest.raises(ValueError, match="unsupported dialect"):
            SessionConfig(dialect="tsql")

    def test_kwarg_overrides_on_session(self):
        session = LineageSession(example1.QUERY_LOG, strict=True, workers=2)
        assert session.config.strict is True
        assert session.config.workers == 2

    def test_config_plus_overrides(self):
        config = SessionConfig(strict=True)
        session = LineageSession(example1.QUERY_LOG, config=config, mode="stack")
        assert session.config.strict is True and session.config.mode == "stack"


class TestExtractOverAdapters:
    """extract() works over every source adapter with identical lineage."""

    EXPECTED = {"webinfo", "webact", "info"}

    def _views(self, result):
        return {entry.name for entry in result.graph.views}

    def test_text(self):
        result = LineageSession(example1.QUERY_LOG).extract()
        assert self._views(result) == self.EXPECTED

    def test_file(self, tmp_path):
        path = tmp_path / "log.sql"
        path.write_text(example1.QUERY_LOG)
        session = LineageSession(str(path))
        assert session.source.kind == "file"
        assert self._views(session.extract()) == self.EXPECTED

    def test_directory(self, tmp_path):
        for name, sql in (("q1", example1.Q1), ("q2", example1.Q2), ("q3", example1.Q3)):
            (tmp_path / f"{name}.sql").write_text(sql)
        session = LineageSession(str(tmp_path))
        assert session.source.kind == "directory"
        assert self._views(session.extract()) == self.EXPECTED

    def test_dbt(self):
        models = {
            "stg": "SELECT w.page, w.cid FROM {{ source('raw', 'web') }} w",
            "rpt": "SELECT s.page FROM {{ ref('stg') }} s",
        }
        session = LineageSession(models)
        assert session.source.kind == "dbt"
        result = session.extract()
        assert {entry.name for entry in result.graph.views} == {"stg", "rpt"}
        assert "raw.web" in result.graph

    def test_query_log(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        lines = [
            {"name": f"q{i}", "sql": sql, "timestamp": f"2026-07-0{i}T00:00:00Z"}
            for i, sql in enumerate((example1.Q1, example1.Q2, example1.Q3), start=1)
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines))
        session = LineageSession(str(path))
        assert session.source.kind == "query_log"
        result = session.extract()
        assert self._views(result) == self.EXPECTED
        baseline = lineagex(example1.QUERY_LOG)
        assert diff_graphs(result.graph, baseline.graph).is_identical

    def test_extract_without_source_raises(self):
        with pytest.raises(ValueError, match="no source"):
            LineageSession().extract()

    def test_extract_argument_replaces_source(self):
        session = LineageSession("SELECT t.a FROM t")
        result = session.extract(example1.QUERY_LOG)
        assert self._views(result) == self.EXPECTED


class TestEngineSelection:
    def test_static_and_plan_agree_on_example1(self):
        catalog = example1.base_table_catalog()
        static = LineageSession(example1.QUERY_LOG, catalog=catalog).extract()
        plan = LineageSession(
            example1.QUERY_LOG, catalog=catalog, engine="plan"
        ).extract()
        diff = diff_graphs(plan.graph, static.graph)
        assert diff.is_identical, diff.summary()
        assert static.report.mode == "dag"
        assert plan.report.mode == "plan"

    def test_both_engines_satisfy_the_result_protocol(self):
        catalog = example1.base_table_catalog()
        for engine in ("static", "plan"):
            result = LineageSession(
                example1.QUERY_LOG, catalog=catalog, engine=engine
            ).extract()
            assert isinstance(result, LineageResult)
            assert "relations" in result.to_dict()
            assert result.render("stats")

    def test_plan_report_parity_fields(self):
        result = LineageSession(
            example1.QUERY_LOG,
            catalog=example1.base_table_catalog(),
            engine="plan",
        ).extract()
        assert result.report.reused == []
        payload = result.report.to_dict()
        assert payload["mode"] == "plan"
        assert payload["order"] == ["webinfo", "webact", "info"]
        assert payload["deferral_count"] == 2

    def test_plan_engine_renders_through_registry(self):
        result = LineageSession(
            example1.QUERY_LOG,
            catalog=example1.base_table_catalog(),
            engine="plan",
        ).extract()
        assert "source,target,kind" in result.render("csv")
        assert result.render("markdown").startswith("# Lineage")


class TestShimEquivalence:
    def test_lineagex_equals_session_extract(self):
        legacy = lineagex(example1.QUERY_LOG)
        session = LineageSession(example1.QUERY_LOG).extract()
        assert diff_graphs(legacy.graph, session.graph).is_identical
        assert legacy.stats() == session.stats()

    def test_lineagex_with_connection_equals_plan_session(self):
        catalog = example1.base_table_catalog()
        legacy = lineagex_with_connection(example1.QUERY_LOG, catalog=catalog)
        session = LineageSession(
            example1.QUERY_LOG, catalog=catalog, engine="plan"
        ).extract()
        assert diff_graphs(legacy.graph, session.graph).is_identical

    def test_lineagex_dbt_equals_dbt_session(self):
        models = {
            "stg": "SELECT w.page FROM {{ source('raw', 'web') }} w",
            "rpt": "SELECT s.page FROM {{ ref('stg') }} s",
        }
        legacy = lineagex_dbt(dict(models))
        session = LineageSession(DbtSource(dict(models))).extract()
        assert diff_graphs(legacy.graph, session.graph).is_identical

    def test_lineagex_dbt_forwards_mode(self):
        models = {
            "rpt": "SELECT s.page FROM {{ ref('stg') }} s",
            "stg": "SELECT w.page FROM {{ source('raw', 'web') }} w",
        }
        result = lineagex_dbt(models, mode="stack")
        assert result.report.mode == "stack"
        assert lineagex_dbt(models).report.mode == "dag"

    def test_lineagex_dbt_forwards_collect_traces(self):
        models = {"stg": "SELECT w.page FROM {{ source('raw', 'web') }} w"}
        traced = lineagex_dbt(models, collect_traces=True)
        assert traced.report.traces
        assert not lineagex_dbt(models).report.traces

    def test_lineagex_pins_legacy_input_handling(self, tmp_path):
        # a directory with BOTH top-level .sql files and dbt markers:
        # the legacy shim must keep reading the top-level files (no source
        # auto-detection), while the session auto-detects a dbt project
        (tmp_path / "top.sql").write_text("CREATE VIEW top AS SELECT t.a FROM t")
        models = tmp_path / "models"
        models.mkdir()
        (models / "inner.sql").write_text("SELECT u.b FROM u")
        legacy = lineagex(str(tmp_path))
        assert {entry.name for entry in legacy.graph.views} == {"top"}
        session = LineageSession(str(tmp_path))
        assert session.source.kind == "dbt"
        assert {entry.name for entry in session.extract().graph.views} == {"inner"}

    def test_lineagex_dbt_forwards_workers(self):
        models = {
            "stg": "SELECT w.page FROM {{ source('raw', 'web') }} w",
            "rpt": "SELECT s.page FROM {{ ref('stg') }} s",
        }
        parallel = lineagex_dbt(dict(models), workers=2)
        sequential = lineagex_dbt(dict(models))
        assert diff_graphs(parallel.graph, sequential.graph).is_identical


class TestRefresh:
    def _directory_session(self, tmp_path):
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT t.a FROM t")
        (tmp_path / "w.sql").write_text("CREATE VIEW w AS SELECT v.a FROM v")
        (tmp_path / "x.sql").write_text("CREATE VIEW x AS SELECT u.b FROM u")
        return LineageSession(str(tmp_path))

    def test_rescan_refresh_matches_full_rerun(self, tmp_path):
        session = self._directory_session(tmp_path)
        session.extract()
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT t.c FROM t")
        refreshed = session.refresh()
        full = lineagex(str(tmp_path))
        diff = diff_graphs(refreshed.graph, full.graph)
        assert diff.is_identical, diff.summary()
        # x is independent of v and must have been spliced, not re-extracted
        assert "x" in refreshed.report.reused
        assert set(refreshed.report.order) == {"v", "w"}

    def test_rescan_refresh_picks_up_new_and_deleted_files(self, tmp_path):
        session = self._directory_session(tmp_path)
        session.extract()
        (tmp_path / "y.sql").write_text("CREATE VIEW y AS SELECT w.a FROM w")
        (tmp_path / "x.sql").unlink()
        refreshed = session.refresh()
        assert "y" in refreshed.graph
        assert "x" not in refreshed.graph

    def test_refresh_without_changes_returns_last_result(self, tmp_path):
        session = self._directory_session(tmp_path)
        result = session.extract()
        assert session.refresh() is result

    def test_whitespace_only_edit_splices_everything(self, tmp_path):
        session = self._directory_session(tmp_path)
        session.extract()
        # raw-text hash changes, but the canonical statement hash does not
        (tmp_path / "v.sql").write_text("CREATE   VIEW v AS\nSELECT t.a FROM t")
        refreshed = session.refresh()
        assert set(refreshed.report.reused) == {"v", "w", "x"}

    def test_explicit_changes_on_text_source(self):
        new_webinfo = (
            "CREATE VIEW webinfo AS "
            "SELECT c.cid AS wcid, w.date AS wdate, w.page AS wpage, w.reg AS wreg "
            "FROM customers c JOIN web w ON c.cid = w.cid"
        )
        session = LineageSession(example1.QUERY_LOG)
        session.extract()
        refreshed = session.refresh({"webinfo": new_webinfo})
        # equivalent full run: changed sources apply after the carried ones
        full = lineagex(example1.Q1 + example1.Q2 + new_webinfo)
        assert diff_graphs(refreshed.graph, full.graph).is_identical

    def test_rescan_requires_rescannable_source(self):
        session = LineageSession(example1.QUERY_LOG)
        session.extract()
        with pytest.raises(ValueError, match="cannot be re-scanned"):
            session.refresh()

    def test_refresh_before_extract_extracts(self):
        session = LineageSession(example1.QUERY_LOG)
        result = session.refresh()
        assert "info" in result.graph
        assert session.result is result

    def test_plan_engine_refresh_reruns_fully(self, tmp_path):
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT web.page FROM web")
        session = LineageSession(
            str(tmp_path), catalog=example1.base_table_catalog(), engine="plan"
        )
        session.extract()
        (tmp_path / "w.sql").write_text("CREATE VIEW w AS SELECT v.page FROM v")
        refreshed = session.refresh()
        assert set(refreshed.report.order) == {"v", "w"}
        assert refreshed.report.reused == []

    def test_successive_refreshes(self, tmp_path):
        session = self._directory_session(tmp_path)
        session.extract()
        (tmp_path / "v.sql").write_text("CREATE VIEW v AS SELECT t.c FROM t")
        session.refresh()
        (tmp_path / "x.sql").write_text("CREATE VIEW x AS SELECT u.d FROM u")
        refreshed = session.refresh()
        assert set(refreshed.report.order) == {"x"}
        assert set(refreshed.report.reused) == {"v", "w"}
        assert diff_graphs(refreshed.graph, lineagex(str(tmp_path)).graph).is_identical


class TestSessionConveniences:
    def test_render_requires_extract(self):
        with pytest.raises(ValueError, match="extract"):
            LineageSession(example1.QUERY_LOG).render("text")

    def test_render_and_impact(self):
        session = LineageSession(example1.QUERY_LOG)
        session.extract()
        assert "webinfo (view)" in session.render("text")
        impact = session.impact("web.page")
        assert {str(c) for c in impact.all_columns} == example1.IMPACT_OF_WEB_PAGE

    def test_save(self, tmp_path):
        session = LineageSession(example1.QUERY_LOG)
        session.extract()
        json_path, html_path = session.save(str(tmp_path))
        assert json_path.endswith("lineagex.json") and html_path.endswith("lineagex.html")

    def test_repr(self):
        session = LineageSession(example1.QUERY_LOG, engine="static")
        assert "engine='static'" in repr(session)
        assert "extracted=False" in repr(session)

    def test_top_level_importability(self):
        import repro

        assert repro.LineageSession is LineageSession
        assert repro.SessionConfig is SessionConfig


class TestCacheAndExecutorConfig:
    def test_defaults(self):
        config = SessionConfig()
        assert config.executor == "thread"
        assert config.cache_dir is None

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            SessionConfig(executor="fiber")

    def test_cache_dir_accepts_pathlike(self, tmp_path):
        config = SessionConfig(cache_dir=tmp_path)
        assert config.cache_dir == str(tmp_path)

    def test_session_without_cache_dir_has_no_store(self):
        session = LineageSession("SELECT 1 AS one")
        assert session.store is None

    def test_session_store_is_lazy_and_shared(self, tmp_path):
        session = LineageSession(
            "CREATE VIEW v AS SELECT a FROM t", cache_dir=str(tmp_path / "c")
        )
        assert session._store is None
        store = session.store
        assert store is session.store
        session.close()
        assert session._store is None

    def test_process_executor_through_session(self):
        sources = {
            "a": "CREATE VIEW a AS SELECT x, y FROM base",
            "b": "CREATE VIEW b AS SELECT x FROM a",
            "c": "CREATE VIEW c AS SELECT y FROM a",
        }
        serial = LineageSession(dict(sources)).extract()
        parallel = LineageSession(
            dict(sources), workers=2, executor="process"
        ).extract()
        assert parallel.render("csv") == serial.render("csv")

    def test_refresh_reuses_the_store(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "a.sql").write_text("CREATE VIEW a AS SELECT x FROM base")
        (models / "b.sql").write_text("CREATE VIEW b AS SELECT x FROM a")
        cache_dir = str(tmp_path / "cache")
        with LineageSession(str(models), cache_dir=cache_dir) as session:
            session.extract()
            (models / "b.sql").write_text("CREATE VIEW b AS SELECT x, x AS x2 FROM a")
            refreshed = session.refresh()
            assert refreshed.report.reused_from.get("a") == "memory"
        # a fresh session over the edited corpus is fully store-warm
        with LineageSession(str(models), cache_dir=cache_dir) as session:
            warm = session.extract()
            assert warm.stats()["num_reused_store"] == 2


class TestClose:
    def test_close_is_idempotent(self, tmp_path):
        session = LineageSession(
            "CREATE VIEW v AS SELECT a FROM t", cache_dir=str(tmp_path / "c")
        )
        store = session.store
        session.close()
        assert session._store is None
        assert store.closed
        session.close()  # double-close: a no-op, not an error
        session.close()

    def test_close_without_ever_opening_the_store(self):
        session = LineageSession("SELECT 1 AS one")
        session.close()  # no cache_dir: nothing to release
        session.close()

    def test_close_when_the_lazy_open_failed(self, tmp_path, monkeypatch):
        # if the lazy LineageStore open raises, self._store is never
        # assigned — close() must still be safe
        import repro.store

        def exploding_store(*args, **kwargs):
            raise OSError("cache volume unavailable")

        monkeypatch.setattr(repro.store, "LineageStore", exploding_store)
        session = LineageSession(
            "CREATE VIEW v AS SELECT a FROM t", cache_dir=str(tmp_path / "c")
        )
        with pytest.raises(OSError):
            session.store  # the lazy open raises
        session.close()  # and close survives it
        assert session._store is None

    def test_close_swallows_store_close_errors(self, tmp_path):
        class ExplodingStore:
            def close(self):
                raise RuntimeError("disk on fire")

        session = LineageSession(
            "CREATE VIEW v AS SELECT a FROM t", cache_dir=str(tmp_path / "c")
        )
        session._store = ExplodingStore()
        session.close()  # the error is swallowed, the handle detached
        assert session._store is None


class TestCloseLifecycle:
    """close() is terminal for writes and safe against in-flight ones."""

    def test_extract_after_close_raises(self):
        session = LineageSession("CREATE VIEW v AS SELECT a FROM t")
        session.extract()
        session.close()
        with pytest.raises(SessionClosedError) as error:
            session.extract()
        assert error.value.operation == "extract"

    def test_refresh_after_close_raises(self):
        session = LineageSession("CREATE VIEW v AS SELECT a FROM t")
        session.extract()
        session.close()
        with pytest.raises(SessionClosedError):
            session.refresh(changes={"v": "CREATE VIEW v AS SELECT b FROM t"})

    def test_reads_survive_close(self):
        session = LineageSession("CREATE VIEW v AS SELECT a FROM t")
        result = session.extract()
        session.close()
        assert session.result is result  # the last result stays readable
        assert "v" in session.result.graph

    def test_close_during_in_flight_refresh_raises_and_adopts_nothing(self):
        import threading

        session = LineageSession("CREATE VIEW v AS SELECT a FROM t")
        before = session.extract()
        entered = threading.Event()
        release = threading.Event()
        real_update = before.update

        def slow_update(changes):
            entered.set()
            release.wait(timeout=10)
            return real_update(changes)

        session._result.update = slow_update
        raised = []

        def refresher():
            try:
                session.refresh(
                    changes={"v": "CREATE VIEW v AS SELECT b FROM t"}
                )
            except BaseException as error:  # noqa: BLE001 - recorded for assert
                raised.append(error)

        worker = threading.Thread(target=refresher)
        worker.start()
        assert entered.wait(timeout=10)
        session.close()  # lands while the refresh is mid-update
        release.set()
        worker.join(timeout=10)
        assert len(raised) == 1
        assert isinstance(raised[0], SessionClosedError)
        assert raised[0].operation == "refresh"
        # the torn refresh was not adopted: readers still see the
        # pre-close result, not one whose store flush was interrupted
        assert session.result is before


class TestSourcelessBootstrap:
    """refresh(changes=...) on a session built with no source (daemon shape)."""

    def test_first_delta_is_the_corpus(self):
        session = LineageSession()
        result = session.refresh(
            changes={"v": "CREATE VIEW v AS SELECT a FROM t"}
        )
        assert result is session.result
        assert "v" in result.graph

    def test_subsequent_deltas_are_incremental(self):
        session = LineageSession()
        session.refresh(changes={"v": "CREATE VIEW v AS SELECT a FROM t"})
        second = session.refresh(
            changes={"w": "CREATE VIEW w AS SELECT a FROM v"}
        )
        assert "v" in second.graph and "w" in second.graph
        assert "v" in getattr(second.report, "reused", ())

    def test_failed_bootstrap_leaves_a_clean_slate(self):
        session = LineageSession()
        with pytest.raises(Exception):
            session.refresh(changes={"bad": "CREATE VIEW bad AS SELEKT"})
        assert session.result is None
        assert session.source is None
        # and a good delta afterwards bootstraps normally
        result = session.refresh(
            changes={"v": "CREATE VIEW v AS SELECT a FROM t"}
        )
        assert "v" in result.graph

    def test_snapshot_before_extract_is_none(self):
        assert LineageSession().snapshot() is None

    def test_snapshot_is_frozen_and_pinned(self):
        from repro.core.lineage import FrozenLineageGraph

        session = LineageSession()
        session.refresh(changes={"v": "CREATE VIEW v AS SELECT a FROM t"})
        snapshot = session.snapshot()
        assert isinstance(snapshot, FrozenLineageGraph)
        session.refresh(changes={"w": "CREATE VIEW w AS SELECT a FROM v"})
        assert "w" not in snapshot
        assert "w" in session.snapshot()
