"""Warm-start behaviour: store splicing through runner, session and CLI."""

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.errors import CyclicDependencyError
from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.session import LineageSession
from repro.store import LineageStore

SQL = """
CREATE TABLE web (cid int, page text, date date);
CREATE VIEW staging AS SELECT cid, page FROM web WHERE date > '2024-01-01';
CREATE VIEW report AS SELECT s.page, count(*) AS hits FROM staging s GROUP BY s.page;
"""


def _run(tmp_path, sources=SQL, **kwargs):
    store = LineageStore(tmp_path / "cache")
    runner = LineageXRunner(store=store, **kwargs)
    result = runner.run(sources)
    store.close()
    return result


class TestRunnerWarmStart:
    def test_cold_run_stores_then_warm_run_splices(self, tmp_path):
        cold = _run(tmp_path)
        warm = _run(tmp_path)
        assert cold.stats()["num_reused_store"] == 0
        assert warm.stats()["num_reused_store"] == 2
        assert set(warm.report.reused) == {"staging", "report"}
        assert warm.report.reused_from == {"staging": "store", "report": "store"}
        assert diff_graphs(warm.graph, cold.graph).is_identical

    def test_warm_run_never_parses_lineage_entries(self, tmp_path):
        _run(tmp_path)
        store = LineageStore(tmp_path / "cache")
        result = LineageXRunner(store=store).run(SQL)
        for _, entry in result.query_dictionary.items():
            assert not entry.is_parsed, entry.identifier
        store.close()

    def test_content_change_invalidates_entry_and_dependents(self, tmp_path):
        _run(tmp_path)
        changed = SQL.replace("date > '2024-01-01'", "date > '2025-01-01'")
        warm = _run(tmp_path, sources=changed)
        # staging changed -> it re-extracts, and the pre-pass conservatively
        # re-extracts its dependents too (their resolved schemas can only be
        # trusted once the upstream entry is known again), mirroring how the
        # incremental layer dirties transitive dependents
        assert "staging" not in warm.report.reused
        assert "report" not in warm.report.reused
        # the second warm run over the changed corpus splices everything
        second = _run(tmp_path, sources=changed)
        assert set(second.report.reused) == {"staging", "report"}

    def test_upstream_schema_change_invalidates_dependents(self, tmp_path):
        _run(tmp_path)
        changed = SQL.replace(
            "SELECT cid, page FROM web", "SELECT cid, page, date FROM web"
        )
        warm = _run(tmp_path, sources=changed)
        # staging's output columns changed -> report's schema fingerprint
        # misses even though report's SQL is untouched
        assert "report" not in warm.report.reused
        assert "staging" not in warm.report.reused

    def test_ddl_schema_change_invalidates_readers(self, tmp_path):
        _run(tmp_path)
        changed = SQL.replace(
            "CREATE TABLE web (cid int, page text, date date);",
            "CREATE TABLE web (cid int, page text, date date, country text);",
        )
        warm = _run(tmp_path, sources=changed)
        assert "staging" not in warm.report.reused

    def test_strict_mode_does_not_reuse_lenient_records(self, tmp_path):
        _run(tmp_path)
        warm = _run(tmp_path, strict=True)
        assert warm.report.reused == []

    def test_ablation_mode_bypasses_the_store(self, tmp_path):
        _run(tmp_path)
        warm = _run(tmp_path, use_stack=False)
        assert warm.report.reused == []

    def test_cycles_still_raise_on_warm_runs(self, tmp_path):
        cyclic = {
            "a": "CREATE VIEW a AS SELECT x FROM b",
            "b": "CREATE VIEW b AS SELECT x FROM a",
        }
        store = LineageStore(tmp_path / "cache")
        runner = LineageXRunner(store=store)
        with pytest.raises(CyclicDependencyError):
            runner.run(cyclic)
        with pytest.raises(CyclicDependencyError):
            runner.run(cyclic)
        store.close()

    def test_warm_start_at_scale_splices_everything(self, tmp_path):
        warehouse = workload.generate_warehouse(
            num_base_tables=5, num_views=60, seed=13
        )
        sources = dict(warehouse.views)
        cold = _run(tmp_path, sources=sources, catalog=warehouse.catalog())
        warm = _run(tmp_path, sources=sources, catalog=warehouse.catalog())
        assert warm.stats()["num_reused_store"] == 60
        assert diff_graphs(warm.graph, cold.graph).is_identical

    def test_memory_and_store_splices_are_distinguished(self, tmp_path):
        store = LineageStore(tmp_path / "cache")
        runner = LineageXRunner(store=store)
        baseline = runner.run(SQL)
        updated = baseline.update(
            {"extra": "CREATE VIEW extra AS SELECT page FROM staging"}
        )
        origins = updated.report.reused_from
        assert origins["staging"] == "memory"
        assert origins["report"] == "memory"
        stats = updated.stats()
        assert stats["num_reused_memory"] == 2
        assert stats["num_reused_store"] == 0
        store.close()

    def test_refresh_after_revert_hits_the_store(self, tmp_path):
        store = LineageStore(tmp_path / "cache")
        runner = LineageXRunner(store=store)
        baseline = runner.run(SQL)
        edited = baseline.update(
            {"report": "CREATE VIEW report AS SELECT page FROM staging"}
        )
        assert "report" not in edited.report.reused
        reverted = edited.update(
            {
                "report": "CREATE VIEW report AS SELECT s.page, count(*) AS hits "
                "FROM staging s GROUP BY s.page"
            }
        )
        # the original definition's record is still in the store
        assert reverted.report.reused_from.get("report") == "store"
        assert diff_graphs(reverted.graph, baseline.graph).is_identical
        store.close()


class TestSessionWarmStart:
    def test_sessions_share_the_store_across_processes(self, tmp_path):
        cache_dir = tmp_path / "cache"
        with LineageSession(SQL, cache_dir=str(cache_dir)) as first:
            cold = first.extract()
        with LineageSession(SQL, cache_dir=str(cache_dir)) as second:
            warm = second.extract()
        assert warm.stats()["num_reused_store"] == 2
        assert diff_graphs(warm.graph, cold.graph).is_identical

    def test_cache_stats_surface(self, tmp_path):
        with LineageSession(SQL, cache_dir=str(tmp_path / "cache")) as session:
            session.extract()
            stats = session.cache_stats()
        assert stats["entries"] == 2
        assert stats["session_puts"] == 2

    def test_cache_stats_without_cache_dir_raises(self):
        session = LineageSession(SQL)
        with pytest.raises(ValueError):
            session.cache_stats()

    def test_plan_engine_ignores_the_store(self, tmp_path):
        from repro.catalog.introspect import catalog_from_sql

        catalog = catalog_from_sql(
            "CREATE TABLE web (cid int, page text, date date)"
        )
        cache_dir = str(tmp_path / "cache")
        with LineageSession(
            SQL, catalog=catalog, engine="plan", cache_dir=cache_dir
        ) as session:
            result = session.extract()
        assert result.report.reused == []

    def test_directory_source_warm_start(self, tmp_path):
        models = tmp_path / "models"
        models.mkdir()
        (models / "staging.sql").write_text(
            "CREATE VIEW staging AS SELECT cid, page FROM web"
        )
        (models / "report.sql").write_text(
            "CREATE VIEW report AS SELECT page FROM staging"
        )
        cache_dir = str(tmp_path / "cache")
        with LineageSession(str(models), cache_dir=cache_dir) as first:
            first.extract()
        with LineageSession(str(models), cache_dir=cache_dir) as second:
            warm = second.extract()
        assert warm.stats()["num_reused_store"] == 2


class TestSelfReferenceSoundness:
    """Queries reading the relation they write (INSERT INTO t ... FROM t)."""

    SELF_SQL = (
        "CREATE TABLE t (x int, y int);\n"
        "INSERT INTO t SELECT * FROM t;\n"
    )

    def test_process_executor_matches_serial_on_self_reads(self):
        # the worker's schema snapshot must include the self-read relation's
        # catalog schema, like the live provider does
        sources = {
            "q1": "CREATE TABLE t (x int, y int); INSERT INTO t SELECT * FROM t",
            "q2": "CREATE TABLE s (a int); INSERT INTO s SELECT * FROM s",
        }
        serial = LineageXRunner().run(sources)
        parallel = LineageXRunner(workers=2, executor="process").run(sources)
        assert parallel.render("csv") == serial.render("csv")
        assert "t.x" in parallel.render("csv")

    def test_self_read_schema_change_invalidates_warm_hit(self, tmp_path):
        cold = _run(tmp_path, sources=self.SELF_SQL)
        assert "t.y" in cold.render("csv")
        changed = self.SELF_SQL.replace("(x int, y int)", "(x int, y int, z int)")
        warm = _run(tmp_path, sources=changed)
        # the INSERT's SQL is unchanged, but the self-read table's schema is
        # part of its fingerprint -> no stale hit, and t.z lineage appears
        assert "t" not in warm.report.reused
        assert "t.z" in warm.render("csv")
        plain = LineageXRunner().run(changed)
        assert diff_graphs(warm.graph, plain.graph).is_identical

    def test_unchanged_self_read_still_splices(self, tmp_path):
        _run(tmp_path, sources=self.SELF_SQL)
        warm = _run(tmp_path, sources=self.SELF_SQL)
        assert warm.report.reused == ["t"]


class TestVersionSkew:
    """Records written by an older extractor must miss cleanly and heal."""

    def test_old_extractor_version_records_cold_miss_then_heal(
        self, tmp_path, monkeypatch
    ):
        import repro.core.runner as runner_module

        # simulate a store populated by the pre-PR extractor: every lineage
        # record is keyed under the previous EXTRACTOR_VERSION
        monkeypatch.setattr(
            runner_module, "EXTRACTOR_VERSION", runner_module.EXTRACTOR_VERSION - 1
        )
        old = _run(tmp_path)
        assert old.stats()["num_reused_store"] == 0
        monkeypatch.undo()

        # under the current version every old record is a silent cold miss:
        # the run re-extracts everything and re-persists under the new key
        warm = _run(tmp_path)
        assert warm.report.reused == []
        assert diff_graphs(warm.graph, old.graph).is_identical

        # ... so the store heals: the next run splices everything again
        healed = _run(tmp_path)
        assert set(healed.report.reused) == {"staging", "report"}
        assert diff_graphs(healed.graph, old.graph).is_identical

    def test_old_parse_record_version_is_a_cold_miss(self, tmp_path, monkeypatch):
        import importlib

        # repro.core re-exports the preprocess *function*, which shadows the
        # module attribute "import ... as" resolves through
        preprocess_module = importlib.import_module("repro.core.preprocess")

        monkeypatch.setattr(
            preprocess_module,
            "PARSE_RECORD_VERSION",
            preprocess_module.PARSE_RECORD_VERSION - 1,
        )
        _run(tmp_path)
        monkeypatch.undo()

        # parse records are keyed on PARSE_RECORD_VERSION: a version bump
        # means the fragments re-parse (entries are eagerly parsed again)
        store = LineageStore(tmp_path / "cache")
        result = LineageXRunner(store=store).run(SQL)
        store.close()
        assert all(entry.is_parsed for _, entry in result.query_dictionary.items())

    def test_merge_statements_warm_start(self, tmp_path):
        """The new statement kinds round-trip through the store."""
        sql = (
            "CREATE TABLE tgt (id int, amount int);\n"
            "CREATE TABLE src (id int, amount int, flag bool);\n"
            "CREATE VIEW picks AS SELECT s.id, s.amount, s.flag FROM src s;\n"
            "MERGE INTO tgt AS t USING picks AS p ON t.id = p.id "
            "WHEN MATCHED AND p.flag THEN UPDATE SET amount = p.amount "
            "WHEN NOT MATCHED THEN INSERT (id, amount) VALUES (p.id, p.amount);\n"
            "CREATE VIEW report AS SELECT t.amount FROM tgt t;\n"
        )
        cold = _run(tmp_path, sources=sql)
        warm = _run(tmp_path, sources=sql)
        assert set(warm.report.reused) == {"picks", "tgt", "report"}
        assert diff_graphs(warm.graph, cold.graph).is_identical

    def test_merge_target_ddl_change_invalidates_the_merge_record(self, tmp_path):
        sql = (
            "CREATE TABLE tgt (id int, amount int);\n"
            "CREATE TABLE src (id int, amount int);\n"
            "MERGE INTO tgt USING src AS s ON tgt.id = s.id "
            "WHEN MATCHED THEN UPDATE SET amount = s.amount;\n"
        )
        _run(tmp_path, sources=sql)
        changed = sql.replace(
            "CREATE TABLE tgt (id int, amount int);",
            "CREATE TABLE tgt (id int, amount int, extra int);",
        )
        warm = _run(tmp_path, sources=changed)
        # the MERGE's SQL is unchanged but its written target's schema is
        # part of the fingerprint -> no stale warm hit
        assert "tgt" not in warm.report.reused


class TestParseCacheCorruption:
    def test_poisoned_statement_record_degrades_to_cold_retry(self, tmp_path):
        import sqlite3

        from repro.store.store import STORE_FILENAME

        cold = _run(tmp_path)
        # tamper every cached statement_sql into non-SQL that still passes
        # the structural validation, and drop the lineage records so the
        # poisoned entries would actually need their ASTs
        db_path = tmp_path / "cache" / STORE_FILENAME
        connection = sqlite3.connect(db_path)
        rows = connection.execute("SELECT source_key, record FROM source_records").fetchall()
        import json as json_module

        for key, text in rows:
            records = json_module.loads(text)
            for record in records:
                if record.get("statement_sql"):
                    record["statement_sql"] = "CREATE VIEW broken AS SELEC"
            connection.execute(
                "UPDATE source_records SET record = ? WHERE source_key = ?",
                (json_module.dumps(records), key),
            )
        connection.execute("DELETE FROM lineage_records")
        connection.commit()
        connection.close()

        recovered = _run(tmp_path)
        assert diff_graphs(recovered.graph, cold.graph).is_identical
        # the retry overwrote the poisoned records: the next run is warm again
        healed = _run(tmp_path)
        assert set(healed.report.reused) == {"staging", "report"}
