"""The sharded store layout: routing, manifest discovery, migration,
and concurrent access through WAL + busy timeouts."""

import hashlib
import json
import os
import sqlite3
import threading

from repro.core.column_refs import ColumnName
from repro.core.lineage import TableLineage
from repro.store import (
    SHARD_MANIFEST,
    LineageStore,
    make_key,
    schema_fingerprint,
    shard_index,
)
from repro.store.store import BUSY_TIMEOUT_MS, STORE_FILENAME, _shard_filename


def _entry(name="v"):
    entry = TableLineage(name=name, sql=f"CREATE VIEW {name} AS SELECT a FROM t")
    entry.add_contribution("a", ColumnName.of("t", "a"))
    return entry


def _hash(tag):
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


def _key(tag):
    return make_key(_hash(tag), "postgres", 1, schema_fingerprint([("t", ["a"])]))


def _populate(store, count, prefix="v"):
    """Put ``count`` routed records; returns the list of (tag, key, hash)."""
    rows = []
    for index in range(count):
        tag = f"{prefix}{index}"
        key, content_hash = _key(tag), _hash(tag)
        assert store.put(key, _entry(tag), content_hash=content_hash)
        rows.append((tag, key, content_hash))
    return rows


class TestShardIndex:
    def test_single_shard_is_always_zero(self):
        for text in ("", "00ff", _hash("x"), "not-hex"):
            assert shard_index(text, 1) == 0

    def test_hex_prefix_routing(self):
        assert shard_index("deadbeef" + "0" * 56, 8) == int("deadbeef", 16) % 8

    def test_non_hex_and_empty_inputs_still_route(self):
        for text in ("", "zzzz", "view name with spaces", "sch.tbl"):
            index = shard_index(text, 8)
            assert 0 <= index < 8
            assert index == shard_index(text, 8)  # deterministic

    def test_real_hashes_spread_over_every_shard(self):
        hit = {shard_index(_hash(f"stmt {i}"), 8) for i in range(256)}
        assert hit == set(range(8))


class TestShardedLayout:
    def test_creates_shard_files_and_manifest(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            _populate(store, 8)
            assert store.stats()["shards"] == 4
        for index in range(4):
            assert (tmp_path / _shard_filename(index, 4)).exists()
        with open(tmp_path / SHARD_MANIFEST, encoding="utf-8") as handle:
            assert json.load(handle)["shards"] == 4
        assert not (tmp_path / STORE_FILENAME).exists()

    def test_manifest_wins_over_requested_count(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            rows = _populate(store, 8)
        # the shards= argument is only a request for *new* directories
        for requested in (None, 16):
            with LineageStore(tmp_path, shards=requested) as store:
                assert store.stats()["shards"] == 4
                for tag, key, content_hash in rows:
                    assert store.get(key, content_hash=content_hash).name == tag

    def test_legacy_single_file_wins_over_requested_count(self, tmp_path):
        with LineageStore(tmp_path) as store:  # default: single file
            rows = _populate(store, 4)
        assert (tmp_path / STORE_FILENAME).exists()
        with LineageStore(tmp_path, shards=8) as store:
            assert store.stats()["shards"] == 1
            for tag, key, content_hash in rows:
                assert store.get(key, content_hash=content_hash).name == tag

    def test_records_land_on_their_routed_shard(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            rows = _populate(store, 12)
        for _tag, key, content_hash in rows:
            expected = shard_index(content_hash, 4)
            path = tmp_path / _shard_filename(expected, 4)
            with sqlite3.connect(path) as connection:
                found = connection.execute(
                    "SELECT COUNT(*) FROM lineage_records WHERE cache_key = ?",
                    (key,),
                ).fetchone()[0]
            assert found == 1, f"{key} not on shard {expected}"

    def test_get_without_content_hash_probes_all_shards(self, tmp_path):
        with LineageStore(tmp_path, shards=8) as store:
            rows = _populate(store, 8)
        with LineageStore(tmp_path) as store:
            for tag, key, _content_hash in rows:
                assert store.get(key).name == tag

    def test_put_many_routes_and_counts(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            rows = [
                (
                    _key(f"m{i}"),
                    _entry(f"m{i}"),
                    {"content_hash": _hash(f"m{i}"), "dialect": "postgres",
                     "extractor_version": "1", "schema_fingerprint": "fp"},
                )
                for i in range(20)
            ]
            assert store.put_many(rows) == 20
        with LineageStore(tmp_path) as store:
            for i in range(20):
                got = store.get(_key(f"m{i}"), content_hash=_hash(f"m{i}"))
                assert got.name == f"m{i}"

    def test_prime_fans_out_and_fills_the_lru(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            rows = _populate(store, 16)
        store = LineageStore(tmp_path)
        store.prime([content_hash for _t, _k, content_hash in rows])
        # every shard file broken: primed records are served from memory
        for index in range(4):
            with open(tmp_path / _shard_filename(index, 4), "wb") as handle:
                handle.write(b"garbage")
        for tag, key, content_hash in rows:
            assert store.get(key, content_hash=content_hash).name == tag
        store.close()

    def test_sources_round_trip_across_shards(self, tmp_path):
        keys = [f"source:{_hash(str(i))}" for i in range(12)]
        with LineageStore(tmp_path, shards=4) as store:
            for key in keys:
                assert store.put_source(key, [{"kind": "view", "key": key}])
        with LineageStore(tmp_path) as store:
            found = store.get_sources(keys)
            assert set(found) == set(keys)
            for key in keys:
                assert found[key] == [{"kind": "view", "key": key}]

    def test_clear_and_gc_span_all_shards(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            _populate(store, 12)
            assert store.stats()["entries"] == 12
            store.gc(max_entries=5)
            assert store.stats()["entries"] <= 5
            store.clear()
            assert store.stats()["entries"] == 0


class TestMigrate:
    def test_single_file_to_sharded(self, tmp_path):
        with LineageStore(tmp_path) as store:
            rows = _populate(store, 10)
            for _tag, key, content_hash in rows[:3]:
                store.put_source(f"source:{content_hash}", [{"key": key}])
        moved = LineageStore.migrate(tmp_path, 8)
        assert moved == 13  # 10 lineage records + 3 source fragments
        assert not (tmp_path / STORE_FILENAME).exists()
        with LineageStore(tmp_path) as store:
            assert store.stats()["shards"] == 8
            for tag, key, content_hash in rows:
                assert store.get(key, content_hash=content_hash).name == tag
            for _tag, key, content_hash in rows[:3]:
                assert store.get_source(f"source:{content_hash}") == [{"key": key}]

    def test_sharded_back_to_single_file(self, tmp_path):
        with LineageStore(tmp_path, shards=8) as store:
            rows = _populate(store, 10)
        assert LineageStore.migrate(tmp_path, 1) == 10
        assert (tmp_path / STORE_FILENAME).exists()
        assert not any(
            name.startswith("lineage-") and name.endswith(".sqlite")
            for name in os.listdir(tmp_path)
        )
        with LineageStore(tmp_path, shards=4) as store:
            # the migrated single file takes precedence over shards=4
            assert store.stats()["shards"] == 1
            for tag, key, content_hash in rows:
                assert store.get(key, content_hash=content_hash).name == tag

    def test_migrate_to_current_count_is_a_noop(self, tmp_path):
        with LineageStore(tmp_path, shards=4) as store:
            rows = _populate(store, 6)
        assert LineageStore.migrate(tmp_path, 4) == 0  # already that layout
        with LineageStore(tmp_path) as store:
            assert store.stats()["shards"] == 4
            for tag, key, content_hash in rows:
                assert store.get(key, content_hash=content_hash).name == tag


class TestConcurrentAccess:
    def test_every_shard_connection_uses_wal_and_busy_timeout(self, tmp_path):
        store = LineageStore(tmp_path, shards=3)
        try:
            for shard in store._shards:
                connection = store._connect_shard(shard)
                assert connection.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
                timeout = connection.execute("PRAGMA busy_timeout").fetchone()[0]
                assert timeout == BUSY_TIMEOUT_MS
        finally:
            store.close()

    def test_two_handles_write_concurrently(self, tmp_path):
        """Two store handles on one directory, four writer threads: WAL plus
        the busy timeout must absorb the contention without dropping writes.

        The layout is created first (the manifest pins the shard count);
        both handles then discover it, as two real processes sharing a
        cache directory would."""
        with LineageStore(tmp_path, shards=4) as store:
            _populate(store, 1, prefix="seed")
        first = LineageStore(tmp_path)
        second = LineageStore(tmp_path)
        handles = [first, second]
        failures = []

        def writer(worker):
            store = handles[worker % 2]
            for index in range(25):
                tag = f"w{worker}-{index}"
                ok = store.put(_key(tag), _entry(tag), content_hash=_hash(tag))
                if not ok:
                    failures.append(tag)
                if index % 5 == 0:
                    store.flush()

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        first.close()
        second.close()
        assert not failures, f"dropped writes under contention: {failures[:5]}"

        with LineageStore(tmp_path) as store:
            assert store.stats()["shards"] == 4
            assert store.stats()["entries"] == 101  # 1 seed + 100 concurrent
            for worker in range(4):
                for index in range(25):
                    tag = f"w{worker}-{index}"
                    assert store.get(_key(tag), content_hash=_hash(tag)).name == tag

    def test_readers_run_against_an_active_writer(self, tmp_path):
        with LineageStore(tmp_path, shards=2) as store:
            rows = _populate(store, 10, prefix="r")
        writer_store = LineageStore(tmp_path)
        reader_store = LineageStore(tmp_path)
        errors = []
        stop = threading.Event()

        def writer():
            index = 0
            while not stop.is_set():
                tag = f"extra{index}"
                writer_store.put(_key(tag), _entry(tag), content_hash=_hash(tag))
                writer_store.flush()
                index += 1

        def reader():
            try:
                for _ in range(20):
                    for tag, key, content_hash in rows:
                        got = reader_store.get(key, content_hash=content_hash)
                        assert got is not None and got.name == tag
            except Exception as exc:  # noqa: BLE001 - surfaced via the list
                errors.append(exc)

        writer_thread = threading.Thread(target=writer)
        reader_threads = [threading.Thread(target=reader) for _ in range(3)]
        writer_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        stop.set()
        writer_thread.join()
        writer_store.close()
        reader_store.close()
        assert not errors, errors[0]
