"""Store compaction: superseded marks, priority eviction, orphan pruning."""

from repro.core.column_refs import ColumnName
from repro.core.lineage import TableLineage
from repro.store import LineageStore, make_key, schema_fingerprint


def _entry(name="v"):
    entry = TableLineage(name=name, sql=f"CREATE VIEW {name} AS SELECT a FROM t")
    entry.add_contribution("a", ColumnName.of("t", "a"))
    return entry


def _key(tag):
    return make_key(tag, "postgres", 1, schema_fingerprint([("t", ["a"])]))


def _put(store, tag, name="v"):
    # the tag doubles as the content hash so tests can route marks at it
    assert store.put(_key(tag), _entry(name), content_hash=tag)


class TestSupersededMarks:
    def test_mark_and_count(self, tmp_path):
        store = LineageStore(tmp_path)
        _put(store, "old-hash")
        assert store.mark_superseded({"old-hash"}) == 1
        assert store.superseded_count() == 1
        store.close()

    def test_empty_hashes_ignored(self, tmp_path):
        store = LineageStore(tmp_path)
        assert store.mark_superseded({"", None and "x"} - {None}) == 0
        assert store.superseded_count() == 0
        store.close()

    def test_re_put_clears_mark(self, tmp_path):
        # a definition that flips BACK to a marked hash is live again; the
        # write must unmark it or compaction would evict a live record
        store = LineageStore(tmp_path)
        _put(store, "flip")
        store.mark_superseded({"flip"})
        assert store.superseded_count() == 1
        _put(store, "flip")
        assert store.superseded_count() == 0
        store.close()

    def test_clear_drops_marks(self, tmp_path):
        store = LineageStore(tmp_path)
        _put(store, "h")
        store.mark_superseded({"h"})
        store.clear()
        assert store.superseded_count() == 0
        store.close()

    def test_stats_reports_superseded(self, tmp_path):
        store = LineageStore(tmp_path)
        _put(store, "h")
        store.mark_superseded({"h"})
        assert store.stats()["superseded_entries"] == 1
        store.close()


class TestPriorityEviction:
    def test_superseded_evicted_ahead_of_live(self, tmp_path):
        store = LineageStore(tmp_path)
        # "stale-*" are put FIRST (oldest stamps) then marked; "live-*"
        # come later.  Under pure LRU a cap of 3 would keep the newest 3;
        # with marks the two stale records must go first regardless of age
        for index in range(2):
            _put(store, f"stale-{index}")
        store.mark_superseded({"stale-0", "stale-1"})
        for index in range(3):
            _put(store, f"live-{index}")
        removed = store.gc(max_entries=3)
        assert removed >= 2
        store.flush()
        for index in range(3):
            assert store.get(_key(f"live-{index}"), content_hash=f"live-{index}")
        for index in range(2):
            assert store.get(_key(f"stale-{index}")) is None
        store.close()

    def test_marks_cleared_after_compaction(self, tmp_path):
        store = LineageStore(tmp_path)
        _put(store, "stale")
        store.mark_superseded({"stale"})
        _put(store, "live-a")
        _put(store, "live-b")
        store.gc(max_entries=2)
        assert store.superseded_count() == 0
        store.close()

    def test_under_cap_keeps_marked_records(self, tmp_path):
        # marks are advisory eviction hints, not deletions: while the
        # store is under its cap the marked records stay warm
        store = LineageStore(tmp_path)
        _put(store, "marked")
        store.mark_superseded({"marked"})
        assert store.gc(max_entries=10) == 0
        assert store.get(_key("marked"), content_hash="marked") is not None
        store.close()

    def test_marked_live_hash_never_starves_store(self, tmp_path):
        # even if every record is marked, gc converges to <= max_entries
        # without error (the LRU pass mops up what marks left behind)
        store = LineageStore(tmp_path)
        for index in range(4):
            _put(store, f"h{index}")
        store.mark_superseded({f"h{index}" for index in range(4)})
        store.gc(max_entries=2)
        assert store.stats()["entries"] == 0
        store.close()


class TestOrphanedSourceRecords:
    def _records(self, content_hash):
        return [
            {"kind": "views", "content_hash": content_hash, "name": "v"},
            {"kind": "ddl", "content_hash": "", "name": "t"},
        ]

    def test_gc_max_entries_prunes_orphaned_sources(self, tmp_path):
        # regression: max_entries used to evict lineage records but leave
        # the parse records that reference them stranded forever
        store = LineageStore(tmp_path)
        for index in range(4):
            _put(store, f"h{index}")
            store.put_source(f"src-{index}", self._records(f"h{index}"))
        removed = store.gc(max_entries=1)
        store.flush()
        stats = store.stats()
        assert stats["entries"] == 1
        # three lineage evictions + three orphaned parse records
        assert removed == 6
        assert stats["source_entries"] == 1
        store.close()

    def test_sources_with_live_hash_survive(self, tmp_path):
        store = LineageStore(tmp_path)
        _put(store, "alive")
        store.put_source("src", self._records("alive"))
        _put(store, "doomed")
        store.gc(max_entries=1)
        # "alive" was put first (older) — wait: LRU keeps the newest.
        # Either way, the surviving parse record must match the surviving
        # lineage record's hash
        stats = store.stats()
        assert stats["entries"] == 1
        store.close()

    def test_ddl_only_fragments_kept(self, tmp_path):
        # fragments that never produced lineage (pure DDL / skip) are not
        # orphans — there is nothing for them to be orphaned from
        store = LineageStore(tmp_path)
        store.put_source("ddl-only", [{"kind": "ddl", "name": "t"},
                                      {"kind": "skip", "warning": "w"}])
        for index in range(3):
            _put(store, f"h{index}")
        store.gc(max_entries=1)
        assert store.get_source("ddl-only") is not None
        store.close()

    def test_age_based_gc_also_prunes_orphans(self, tmp_path):
        import sqlite3 as _sqlite3

        store = LineageStore(tmp_path)
        _put(store, "old")
        store.put_source("src-old", self._records("old"))
        store.flush()
        from repro.store.store import STORE_FILENAME

        connection = _sqlite3.connect(tmp_path / STORE_FILENAME)
        connection.execute(
            "UPDATE lineage_records SET last_used_at = 0")
        connection.commit()
        connection.close()
        store._lru.clear()
        removed = store.gc(max_age_days=1)
        # the lineage record aged out; its parse record must not outlive it
        assert removed >= 2
        assert store.get_source("src-old") is None
        store.close()
