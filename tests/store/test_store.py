"""The LineageStore backend: persistence, LRU front, corruption handling."""

import json
import sqlite3

import pytest

from repro.core.column_refs import ColumnName
from repro.core.lineage import LINEAGE_RECORD_VERSION, TableLineage
from repro.store import LineageStore, make_key, schema_fingerprint
from repro.store.store import STORE_FILENAME


def _entry(name="v"):
    entry = TableLineage(name=name, sql=f"CREATE VIEW {name} AS SELECT a FROM t")
    entry.add_contribution("a", ColumnName.of("t", "a"))
    entry.add_reference(ColumnName.of("t", "b"))
    return entry


def _key(tag="x"):
    return make_key(tag, "postgres", 1, schema_fingerprint([("t", ["a", "b"])]))


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = LineageStore(tmp_path)
        entry = _entry()
        assert store.put(_key(), entry)
        assert store.get(_key()) == entry
        store.close()

    def test_miss_returns_none(self, tmp_path):
        store = LineageStore(tmp_path)
        assert store.get(_key("absent")) is None
        assert store.misses == 1
        store.close()

    def test_survives_process_boundary(self, tmp_path):
        first = LineageStore(tmp_path)
        first.put(_key(), _entry())
        first.close()  # flushes
        second = LineageStore(tmp_path)
        assert second.get(_key()) == _entry()
        second.close()

    def test_returned_objects_are_independent(self, tmp_path):
        # mutating what get() returned must not poison later hits
        store = LineageStore(tmp_path)
        store.put(_key(), _entry())
        first = store.get(_key())
        first.add_output_column("sneaky")
        assert store.get(_key()) == _entry()
        store.close()

    def test_distinct_keys_are_distinct_records(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key("a"), _entry("a"))
        store.put(_key("b"), _entry("b"))
        assert store.get(_key("a")).name == "a"
        assert store.get(_key("b")).name == "b"
        store.close()


class TestLRUFront:
    def test_hits_served_from_memory(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key(), _entry())
        store.flush()
        # break the database; the LRU front still serves the record
        store.get(_key())
        with open(store.path, "wb") as handle:
            handle.write(b"garbage")
        assert store.get(_key()) == _entry()
        store.close()

    def test_capacity_zero_disables_front(self, tmp_path):
        store = LineageStore(tmp_path, lru_size=0)
        store.put(_key(), _entry())
        assert store.get(_key()) == _entry()  # still served, via sqlite
        assert store.stats()["lru_entries"] == 0
        store.close()

    def test_prime_bulk_loads(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key("a"), _entry("a"), content_hash="hash-a")
        store.put(_key("b"), _entry("b"), content_hash="hash-b")
        store.close()
        warm = LineageStore(tmp_path)
        assert warm.prime(["hash-a", "hash-b", "hash-missing"]) == 2
        assert len(warm._lru) == 2
        warm.close()


class TestCorruption:
    def test_corrupted_database_file_is_a_cold_miss(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key(), _entry())
        store.close()
        with open(tmp_path / STORE_FILENAME, "wb") as handle:
            handle.write(b"not a database at all")
        reopened = LineageStore(tmp_path)
        assert reopened.get(_key()) is None
        reopened.close()

    def test_malformed_json_row_is_a_cold_miss(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key(), _entry())
        store.close()
        connection = sqlite3.connect(tmp_path / STORE_FILENAME)
        connection.execute(
            "UPDATE lineage_records SET record = ?", ("{not json",)
        )
        connection.commit()
        connection.close()
        reopened = LineageStore(tmp_path)
        assert reopened.get(_key()) is None
        assert reopened.corrupt >= 1
        reopened.close()

    def test_version_mismatch_is_a_cold_miss(self, tmp_path):
        store = LineageStore(tmp_path)
        record = _entry().to_record()
        record["record_version"] = LINEAGE_RECORD_VERSION + 10
        store.put(_key(), _entry())
        connection_text = json.dumps(record)
        store.close()
        connection = sqlite3.connect(tmp_path / STORE_FILENAME)
        connection.execute(
            "UPDATE lineage_records SET record = ?", (connection_text,)
        )
        connection.commit()
        connection.close()
        reopened = LineageStore(tmp_path)
        assert reopened.get(_key()) is None
        assert reopened.corrupt == 1
        reopened.close()

    def test_unwritable_directory_degrades_to_pass_through(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the store wants a directory")
        store = LineageStore(blocker / "cache")
        assert store.get(_key()) is None
        assert store.put(_key(), _entry()) is False
        store.close()


class TestMaintenance:
    def test_stats_counts(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key("a"), _entry("a"))
        store.put(_key("b"), _entry("b"))
        store.get(_key("a"))
        store.get(_key("missing"))
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["session_puts"] == 2
        assert stats["session_hits"] == 1
        assert stats["session_misses"] == 1
        assert stats["size_bytes"] > 0
        store.close()

    def test_clear(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key("a"), _entry("a"))
        store.put_source("source-key", [{"kind": "skip", "warning": "w"}])
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert store.get(_key("a")) is None
        store.close()

    def test_gc_max_entries(self, tmp_path):
        store = LineageStore(tmp_path)
        for index in range(5):
            store.put(_key(f"k{index}"), _entry(f"v{index}"))
        removed = store.gc(max_entries=2)
        assert removed == 3
        assert store.stats()["entries"] == 2
        store.close()

    def test_gc_max_age(self, tmp_path):
        store = LineageStore(tmp_path)
        store.put(_key("old"), _entry())
        store.flush()
        connection = sqlite3.connect(tmp_path / STORE_FILENAME)
        connection.execute("UPDATE lineage_records SET last_used_at = 0")
        connection.commit()
        connection.close()
        store._lru.clear()
        assert store.gc(max_age_days=1) == 1
        assert store.stats()["entries"] == 0
        store.close()


class TestKeys:
    def test_schema_fingerprint_order_independent(self):
        pairs = [("a", ["x"]), ("b", None)]
        assert schema_fingerprint(pairs) == schema_fingerprint(list(reversed(pairs)))

    def test_schema_fingerprint_distinguishes_unknown_from_empty(self):
        assert schema_fingerprint([("t", None)]) != schema_fingerprint([("t", [])])

    def test_schema_fingerprint_strict_flag(self):
        assert schema_fingerprint([], strict=True) != schema_fingerprint([], strict=False)

    def test_key_components_all_matter(self):
        base = make_key("c", "postgres", 1, "f")
        assert make_key("c2", "postgres", 1, "f") != base
        assert make_key("c", "mysql", 1, "f") != base
        assert make_key("c", "postgres", 2, "f") != base
        assert make_key("c", "postgres", 1, "f2") != base


class TestClosedLifecycle:
    """close() is idempotent and terminal: the shared handle degrades to
    a silent cold cache instead of erroring under late readers/writers."""

    def test_close_is_idempotent(self, tmp_path):
        store = LineageStore(str(tmp_path))
        store.put(_key(), _entry())
        assert not store.closed
        store.close()
        assert store.closed
        store.close()  # second close: no error
        assert store.closed

    def test_reads_after_close_are_cold_misses(self, tmp_path):
        store = LineageStore(str(tmp_path))
        store.put(_key(), _entry())
        assert store.get(_key()) is not None
        store.close()
        store._lru.clear()  # defeat the in-memory front too
        assert store.get(_key()) is None  # miss, not an exception

    def test_writes_after_close_are_dropped(self, tmp_path):
        store = LineageStore(str(tmp_path))
        store.close()
        store.put(_key("late"), _entry())  # dropped silently
        # a fresh handle proves nothing was persisted
        reopened = LineageStore(str(tmp_path))
        try:
            assert reopened.get(_key("late")) is None
        finally:
            reopened.close()

    def test_flush_after_close_is_safe(self, tmp_path):
        store = LineageStore(str(tmp_path))
        store.put(_key(), _entry())
        store.close()
        store.flush()  # no reopened connections, no error


class TestPerShardStats:
    def test_single_file_store_reports_one_shard(self, tmp_path):
        store = LineageStore(str(tmp_path))
        store.put(_key("a"), _entry("a"))
        try:
            stats = store.stats()
            assert stats["entries"] == 1
            shards = stats["per_shard"]
            assert len(shards) == 1
            assert shards[0]["shard"] == 0
            assert shards[0]["entries"] == 1
            assert shards[0]["path"].endswith(STORE_FILENAME)
            assert shards[0]["size_bytes"] > 0
        finally:
            store.close()

    def test_sharded_breakdown_sums_to_the_totals(self, tmp_path):
        store = LineageStore(str(tmp_path), shards=4)
        for index in range(12):
            store.put(_key(f"v{index}"), _entry(f"v{index}"))
        try:
            stats = store.stats()
            shards = stats["per_shard"]
            assert len(shards) == 4
            assert sum(s["entries"] for s in shards) == stats["entries"] == 12
            assert sum(s["source_entries"] for s in shards) == stats["source_entries"]
            assert len({s["path"] for s in shards}) == 4
        finally:
            store.close()

    def test_hit_counts_accumulate_per_shard(self, tmp_path):
        store = LineageStore(str(tmp_path))
        store.put(_key("hot"), _entry("hot"))
        store.flush()
        store._lru.clear()
        for _ in range(3):
            assert store.get(_key("hot")) is not None
            store.flush()
            store._lru.clear()
        try:
            stats = store.stats()
            assert stats["per_shard"][0]["hit_count"] >= 3
        finally:
            store.close()
