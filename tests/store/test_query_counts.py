"""Warm-start read-path query accounting.

The warm-start pre-pass knows the whole corpus up front, so its reads must
be *batched*: ``prime()`` loads lineage records with chunked ``IN (...)``
SELECTs keyed by content hash, and the parse cache resolves every source
fragment through one ``get_sources`` batch.  These tests pin the actual
SQL statement counts via sqlite's trace callback, so a regression back to
per-key point lookups fails loudly instead of just showing up as a slower
warm start.
"""

import shutil
import tempfile

import pytest

from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.store import LineageStore

NUM_VIEWS = 40


@pytest.fixture()
def cache_dir():
    path = tempfile.mkdtemp(prefix="lineage-store-queries-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _corpus():
    warehouse = workload.generate_warehouse(
        num_base_tables=5, num_views=NUM_VIEWS, seed=13
    )
    return dict(warehouse.views), warehouse.catalog()


def _traced_store(cache_dir, statements):
    """A store whose sqlite connection records every executed statement."""
    store = LineageStore(cache_dir)
    connection = store._connect()
    assert connection is not None
    connection.set_trace_callback(statements.append)
    return store


def test_warm_start_read_path_is_batched(cache_dir):
    sources, catalog = _corpus()

    cold_store = LineageStore(cache_dir)
    cold = LineageXRunner(catalog=catalog, store=cold_store).run(sources)
    assert cold.stats()["num_reused_store"] == 0
    cold_store.close()

    statements = []
    warm_store = _traced_store(cache_dir, statements)
    warm = LineageXRunner(catalog=catalog, store=warm_store).run(sources)
    warm_store.close()
    assert warm.stats()["num_reused_store"] == NUM_VIEWS

    source_selects = [
        stmt
        for stmt in statements
        if "SELECT" in stmt and "FROM source_records" in stmt
    ]
    lineage_selects = [
        stmt
        for stmt in statements
        if "SELECT" in stmt and "FROM lineage_records" in stmt
    ]
    # parse cache: one batched IN (...) SELECT for all fragments — never
    # one point query per fragment
    assert len(source_selects) == 1, source_selects
    assert "IN (" in source_selects[0]
    # lineage records: one prime() batch; every subsequent key resolves
    # from the primed LRU without touching sqlite again
    assert len(lineage_selects) == 1, lineage_selects
    assert "IN (" in lineage_selects[0]


def test_get_sources_batch_semantics(cache_dir):
    store = LineageStore(cache_dir)
    store.put_source("k1", [{"kind": "skip", "warning": "w"}])
    store.put_source("k2", [{"kind": "skip", "warning": "w2"}])
    store.flush()

    found = store.get_sources(["k1", "k2", "missing"])
    assert set(found) == {"k1", "k2"}
    assert found["k1"] == [{"kind": "skip", "warning": "w"}]
    assert store.get_sources([]) == {}
    store.close()


def test_get_sources_corrupt_row_is_a_miss(cache_dir):
    store = LineageStore(cache_dir)
    store.put_source("good", [{"kind": "skip", "warning": "w"}])
    store.flush()
    connection = store._connect()
    connection.execute(
        "INSERT INTO source_records (source_key, record, created_at, last_used_at) "
        "VALUES ('bad', 'not json', 0, 0)"
    )
    connection.commit()

    found = store.get_sources(["good", "bad"])
    assert set(found) == {"good"}
    assert store.corrupt == 1
    store.close()


def test_parse_cache_prefetch_miss_issues_no_point_queries(cache_dir):
    statements = []
    store = _traced_store(cache_dir, statements)
    cache = store.parse_cache("postgres")
    cache.prefetch(["SELECT 1", "SELECT 2"])
    before = len(
        [s for s in statements if "SELECT" in s and "source_records" in s]
    )
    assert cache.get("SELECT 1") is None
    assert cache.get("SELECT 2") is None
    after = len(
        [s for s in statements if "SELECT" in s and "source_records" in s]
    )
    # a definitive prefetch miss must not fall back to per-key lookups
    assert after == before
    store.close()
