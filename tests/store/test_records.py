"""Round-trip guarantees of the versioned lineage records.

The persistent store serialises :class:`TableLineage` via
``to_record()``/``from_record()``; these tests pin the loss-free contract
(property-style, over entries produced by real extraction runs) and the
version/corruption behaviour the store's "silent cold miss" depends on.
"""

import json

import pytest

from repro.core.column_refs import ColumnName
from repro.core.errors import LineageRecordError
from repro.core.lineage import LINEAGE_RECORD_VERSION, TableLineage
from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.datasets.example1 import QUERY_LOG


def _round_trip(entry):
    return TableLineage.from_record(entry.to_record())


class TestColumnNameRecords:
    def test_round_trip(self):
        column = ColumnName.of("schema.table", "column")
        assert ColumnName.from_record(column.to_record()) == column

    def test_record_keeps_parts_separate(self):
        # a dotted string form could not round-trip this one
        column = ColumnName(table="a.b", column="c")
        assert ColumnName.from_record(column.to_record()) == column

    @pytest.mark.parametrize(
        "bad", [None, "a.b", ["only-one"], ["a", "b", "c"], [1, "b"], {"a": "b"}]
    )
    def test_malformed_records_raise(self, bad):
        with pytest.raises(LineageRecordError):
            ColumnName.from_record(bad)


class TestTableLineageRoundTrip:
    def test_view_entry(self):
        entry = TableLineage(name="v", sql="CREATE VIEW v AS SELECT a FROM t")
        entry.add_contribution("a", ColumnName.of("t", "a"))
        entry.add_reference(ColumnName.of("t", "b"))
        entry.expressions["a"] = "t.a"
        assert _round_trip(entry) == entry

    def test_base_table_entry(self):
        entry = TableLineage(name="web", is_base_table=True)
        for column in ("cid", "date", "page"):
            entry.add_output_column(column)
        assert _round_trip(entry) == entry

    def test_usage_registered_columns_survive(self):
        entry = TableLineage(name="t", is_base_table=True)
        entry.add_output_column("late_column")
        restored = _round_trip(entry)
        assert restored.output_columns == ["late_column"]
        assert restored.is_base_table

    def test_output_column_order_is_preserved(self):
        entry = TableLineage(name="v")
        for column in ("z", "a", "m"):
            entry.add_output_column(column)
        assert _round_trip(entry).output_columns == ["z", "a", "m"]

    def test_source_table_without_column_edges_survives(self):
        entry = TableLineage(name="v")
        entry.add_source_table("phantom")
        restored = _round_trip(entry)
        assert restored.source_tables == {"phantom"}

    def test_survives_json_round_trip(self):
        entry = TableLineage(name="v", sql="CREATE VIEW v AS SELECT a, b FROM t")
        entry.add_contribution("a", ColumnName.of("t", "a"))
        entry.add_contribution("b", ColumnName.of("t", "b"))
        entry.add_reference(ColumnName.of("t", "c"))
        record = json.loads(json.dumps(entry.to_record()))
        assert TableLineage.from_record(record) == entry


class TestPropertyStyleRoundTrip:
    """Every entry of real extraction runs round-trips exactly."""

    def test_example1_entries(self):
        result = LineageXRunner(collect_traces=True).run(QUERY_LOG)
        entries = list(result.graph)
        assert entries
        for entry in entries:
            assert _round_trip(entry) == entry

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_generated_warehouses(self, seed):
        warehouse = workload.generate_warehouse(
            num_base_tables=4, num_views=25, seed=seed
        )
        result = LineageXRunner(catalog=warehouse.catalog()).run(dict(warehouse.views))
        assert not result.report.unresolved
        for entry in result.graph:
            restored = _round_trip(entry)
            assert restored == entry
            # the record is JSON-serialisable as-is (what the store writes)
            assert TableLineage.from_record(
                json.loads(json.dumps(entry.to_record()))
            ) == entry


class TestRecordVersioning:
    def test_version_is_stamped(self):
        record = TableLineage(name="v").to_record()
        assert record["record_version"] == LINEAGE_RECORD_VERSION

    def test_version_mismatch_raises(self):
        record = TableLineage(name="v").to_record()
        record["record_version"] = LINEAGE_RECORD_VERSION + 1
        with pytest.raises(LineageRecordError):
            TableLineage.from_record(record)

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda record: record.pop("name"),
            lambda record: record.pop("output_columns"),
            lambda record: record.update(contributions="not-a-dict"),
            lambda record: record.update(referenced=[["only-one-part"]]),
            lambda record: record.pop("record_version"),
        ],
    )
    def test_malformed_records_raise(self, mutate):
        entry = TableLineage(name="v")
        entry.add_contribution("a", ColumnName.of("t", "a"))
        record = entry.to_record()
        mutate(record)
        with pytest.raises(LineageRecordError):
            TableLineage.from_record(record)

    def test_non_dict_raises(self):
        with pytest.raises(LineageRecordError):
            TableLineage.from_record([1, 2, 3])
