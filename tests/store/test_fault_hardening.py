"""Shard I/O under injected faults: retry, degraded counters, breaker."""

import logging
import random
import sqlite3
import time

import pytest

from repro.core.column_refs import ColumnName
from repro.core.lineage import TableLineage
from repro.store import LineageStore, make_key, schema_fingerprint
from repro.store.store import BREAKER_THRESHOLD, RETRY_ATTEMPTS
from repro.testing import faults


def _entry(name="v"):
    entry = TableLineage(name=name, sql=f"CREATE VIEW {name} AS SELECT a FROM t")
    entry.add_contribution("a", ColumnName.of("t", "a"))
    entry.add_reference(ColumnName.of("t", "b"))
    return entry


def _key(tag="x"):
    return make_key(tag, "postgres", 1, schema_fingerprint([("t", ["a", "b"])]))


def _seed_with(pattern, site, rate):
    """A seed whose per-site schedule at ``rate`` matches ``pattern``."""
    for seed in range(10000):
        rng = random.Random(f"{seed}:{site}")
        if [rng.random() < rate for _ in pattern] == list(pattern):
            return seed
    raise AssertionError("no seed found")  # pragma: no cover


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.reset()
    yield
    faults.reset()


@pytest.fixture
def store(tmp_path):
    # lru_size=0 so every read reaches sqlite (the LRU would mask faults)
    store = LineageStore(tmp_path, lru_size=0)
    yield store
    faults.reset()
    store.close()


class TestRetry:
    def test_transient_read_fault_is_retried_to_success(self, store):
        store.put(_key(), _entry())
        # a schedule that faults the first attempt and spares the retry
        seed = _seed_with([True, False], "store.read", 0.5)
        faults.install(faults.FaultPlan(seed=seed, rates={"store.read": 0.5}))
        assert store.get(_key()) == _entry()
        assert store.error_misses == 0  # the retry absorbed the fault
        assert store._shards[0].failures == 0

    def test_transient_write_fault_is_retried_to_success(self, store):
        seed = _seed_with([True, False], "store.write", 0.5)
        faults.install(faults.FaultPlan(seed=seed, rates={"store.write": 0.5}))
        assert store.put(_key(), _entry()) is True
        assert store.dropped_writes == 0
        faults.reset()
        assert store.get(_key()) == _entry()


class TestDegradedCounters:
    def test_exhausted_read_is_a_counted_cold_miss(self, store):
        store.put(_key(), _entry())
        faults.install(faults.FaultPlan(seed=0, rates={"store.read": 1.0}))
        assert store.get(_key()) is None  # miss, not an exception
        assert store.error_misses == 1
        assert store._shards[0].error_misses == 1
        # plain misses are not conflated with error misses
        assert store.misses == 1

    def test_exhausted_write_is_a_counted_drop(self, store):
        faults.install(faults.FaultPlan(seed=0, rates={"store.write": 1.0}))
        assert store.put(_key(), _entry()) is False
        assert store.dropped_writes == 1
        assert store._shards[0].dropped_writes == 1
        faults.reset()
        assert store.get(_key()) is None  # the write really was dropped

    def test_first_failure_per_shard_warns_once(self, store, caplog):
        store.put(_key("a"), _entry("a"))
        faults.install(faults.FaultPlan(seed=0, rates={"store.read": 1.0}))
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            store.get(_key("a"))
            store.get(_key("a"))
        warnings = [
            record for record in caplog.records if "degrading" in record.message
        ]
        assert len(warnings) == 1  # warned once, not per failure

    def test_stats_surface_degradation(self, store):
        faults.install(faults.FaultPlan(seed=0, rates={"store.write": 1.0}))
        store.put(_key(), _entry())
        faults.reset()
        stats = store.stats()
        assert stats["session_dropped_writes"] == 1
        assert stats["per_shard"][0]["dropped_writes"] == 1
        assert stats["per_shard"][0]["breaker"] == "closed"
        assert stats["degraded_shards"] == 0


class TestCircuitBreaker:
    def _trip(self, store):
        faults.install(faults.FaultPlan(seed=0, rates={"store.read": 1.0}))
        for _ in range(BREAKER_THRESHOLD):
            store.get(_key())

    def test_consecutive_failures_open_the_breaker(self, store):
        self._trip(store)
        health = store.health()
        assert health["status"] == "degraded"
        assert health["degraded_shards"] == 1
        assert health["shards"][0]["breaker"] == "open"
        assert health["shards"][0]["trips"] == 1

    def test_open_breaker_short_circuits(self, store):
        self._trip(store)
        plan = faults.active()
        hits_when_open = plan.hits("store.read")
        store.get(_key())  # degrades without touching sqlite
        assert plan.hits("store.read") == hits_when_open  # no attempt made
        assert store.error_misses == BREAKER_THRESHOLD + 1
        # the breaker outlives the fault: reads stay degraded until cooldown
        faults.reset()
        assert store.get(_key()) is None

    def test_probe_after_cooldown_closes_the_breaker(self, store):
        store.put(_key(), _entry())
        self._trip(store)
        faults.reset()
        # expire the cooldown: the next read is the half-open probe
        store._shards[0].open_until = time.monotonic() - 1.0
        assert store.get(_key()) == _entry()
        health = store.health()
        assert health["status"] == "ok"
        assert health["shards"][0]["breaker"] == "closed"
        assert health["shards"][0]["consecutive_failures"] == 0

    def test_failed_probe_rearms_without_a_new_trip(self, store):
        self._trip(store)
        store._shards[0].open_until = time.monotonic() - 1.0
        store.get(_key())  # probe under the still-armed fault: fails
        health = store.health()
        assert health["shards"][0]["breaker"] == "open"
        assert health["shards"][0]["trips"] == 1  # re-armed, not re-tripped

    def test_success_resets_the_failure_streak(self, store):
        store.put(_key(), _entry())
        # threshold-1 failures, then a success, then threshold-1 more:
        # the breaker must never open (failures are *consecutive*)
        faults.install(faults.FaultPlan(seed=0, rates={"store.read": 1.0}))
        for _ in range(BREAKER_THRESHOLD - 1):
            store.get(_key())
        faults.reset()
        assert store.get(_key()) == _entry()
        faults.install(faults.FaultPlan(seed=0, rates={"store.read": 1.0}))
        for _ in range(BREAKER_THRESHOLD - 1):
            store.get(_key())
        assert store.health()["shards"][0]["breaker"] == "closed"


class TestTransactionHygiene:
    def test_failed_write_rolls_back_between_attempts(self, store):
        # an operation that stages rows and then dies (e.g. a failed
        # commit) must not leave an open write transaction: it would pin
        # the shard's write lock until busy-timeout, and the staged rows
        # would ride along with the next unrelated commit
        shard = store._shards[0]
        with shard.lock:
            connection = store._connect_shard(shard)

            def poisoned_write():
                connection.execute(
                    "INSERT OR REPLACE INTO source_records "
                    "(source_key, record, created_at, last_used_at) "
                    "VALUES ('stale', '[]', 0, 0)"
                )
                raise sqlite3.OperationalError("commit failed")

            ok, _ = store._shard_io(shard, 0, "write", poisoned_write)
            assert ok is False
            assert connection.in_transaction is False
        # a later successful commit must not carry the stale row with it
        assert store.put_source("good", []) is True
        with shard.lock:
            rows = connection.execute(
                "SELECT source_key FROM source_records"
            ).fetchall()
        assert rows == [("good",)]

    def test_backoff_sleeps_release_the_shard_lock(self, store, monkeypatch):
        # retry backoff must not stall every other reader/writer of the
        # shard behind a sleeping thread during a fault storm
        shard = store._shards[0]
        held_during_sleep = []
        monkeypatch.setattr(
            "repro.store.store.time.sleep",
            lambda duration: held_during_sleep.append(shard.lock.locked()),
        )
        faults.install(faults.FaultPlan(seed=0, rates={"store.write": 1.0}))
        assert store.put(_key(), _entry()) is False
        assert held_during_sleep == [False] * RETRY_ATTEMPTS


class TestRetryBudget:
    def test_attempt_count_is_bounded(self, store):
        store.put(_key(), _entry())
        plan = faults.install(
            faults.FaultPlan(seed=0, rates={"store.read": 1.0})
        )
        store.get(_key())
        assert plan.hits("store.read") == 1 + RETRY_ATTEMPTS
