"""The precomputed reachability index: equivalence with BFS and staleness.

The load-bearing property: for EVERY column and direction, the indexed
partition (contributed/referenced/both) must be byte-identical to the
kind-tracking BFS — on hypothesis-generated graphs including cycles,
self-reads and mixed edge kinds, and across full builds, incremental
refreshes, and frozen snapshots.  Secondary properties: a stale index is
never served (the state-token machinery), and freezing pins results
against later mutation of the source graph.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.impact import impact_analysis
from repro.analysis.ordering import creation_order, root_tables, terminal_views
from repro.analysis.reach import ReachabilityIndex
from repro.core.column_refs import ColumnName
from repro.core.errors import UnknownColumnError
from repro.core.lineage import LineageGraph, TableLineage


# ----------------------------------------------------------------------
# graph generation
# ----------------------------------------------------------------------
def _build_graph(recipe):
    """Materialise a generated recipe into a LineageGraph.

    ``recipe`` is a list of per-relation edge plans; table ``ti`` may read
    from any table (later, earlier, or itself), so cycles and self-reads
    arise naturally.
    """
    n_tables, plans = recipe
    graph = LineageGraph()
    for i in range(n_tables):
        entry = TableLineage(name=f"t{i}", is_base_table=(i == 0))
        for c in range(3):
            entry.add_output_column(f"c{c}")
        graph.add(entry)
    for table_index, edges in plans:
        entry = graph[f"t{table_index % n_tables}"]
        for source_table, source_column, target_column, is_reference in edges:
            source = ColumnName.of(
                f"t{source_table % n_tables}", f"c{source_column}"
            )
            if is_reference:
                entry.add_reference(source)
            else:
                entry.add_contribution(f"c{target_column}", source)
    return graph


_edge = st.tuples(
    st.integers(0, 7),      # source table (mod n -> cycles/self-reads)
    st.integers(0, 2),      # source column
    st.integers(0, 2),      # target column
    st.booleans(),          # reference vs contribution
)
_recipe = st.tuples(
    st.integers(2, 8),
    st.lists(
        st.tuples(st.integers(0, 7), st.lists(_edge, max_size=6)),
        max_size=8,
    ),
)


def _partition(result):
    return (
        frozenset(result.contributed),
        frozenset(result.referenced),
        frozenset(result.both),
    )


def _assert_index_matches_bfs(graph, index_graph=None):
    """Index results on ``index_graph`` must equal BFS on ``graph``."""
    if index_graph is None:
        index_graph = graph
    columns = set(graph.column_adjacency("downstream"))
    columns |= set(graph.column_adjacency("upstream"))
    columns.add(ColumnName.of("t0", "c0"))
    for column in sorted(columns):
        for direction in ("downstream", "upstream"):
            bfs = impact_analysis(graph, column, direction=direction, method="bfs")
            indexed = impact_analysis(index_graph, column, direction=direction)
            assert _partition(indexed) == _partition(bfs), (
                f"{column} {direction}: index != BFS"
            )
            assert indexed.to_rows() == bfs.to_rows()


prop_settings = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestIndexEqualsBfs:
    @prop_settings
    @given(recipe=_recipe)
    def test_frozen_index_matches_bfs(self, recipe):
        graph = _build_graph(recipe)
        _assert_index_matches_bfs(graph, graph.freeze())

    @prop_settings
    @given(recipe=_recipe)
    def test_forced_live_index_matches_bfs(self, recipe):
        graph = _build_graph(recipe)
        graph.reachability()  # force a build; auto method must then use it
        assert graph.reachability(build=False) is not None
        _assert_index_matches_bfs(graph, graph)

    @prop_settings
    @given(recipe=_recipe, extra=st.lists(_edge, min_size=1, max_size=5))
    def test_index_after_mutation_matches_bfs(self, recipe, extra):
        """Mutating after a build must never serve stale closures."""
        graph = _build_graph(recipe)
        graph.reachability()
        entry = graph["t1"]
        for source_table, source_column, target_column, is_reference in extra:
            source = ColumnName.of(
                f"t{source_table % len(graph)}", f"c{source_column}"
            )
            if is_reference:
                entry.add_reference(source)
            else:
                entry.add_contribution(f"c{target_column}", source)
        # the old index is stale and must not be returned
        assert graph.reachability(build=False) is None
        _assert_index_matches_bfs(graph, graph.freeze())


class TestIncrementalRefresh:
    def _chain_graph(self):
        graph = LineageGraph()
        base = TableLineage(name="base", is_base_table=True)
        for c in ("a", "b"):
            base.add_output_column(c)
        graph.add(base)
        previous = "base"
        for i in range(4):
            view = TableLineage(name=f"v{i}")
            view.add_output_column("a")
            view.add_contribution("a", ColumnName.of(previous, "a"))
            view.add_reference(ColumnName.of(previous, "b" if previous == "base" else "a"))
            graph.add(view)
            previous = f"v{i}"
        return graph

    def test_append_only_growth_refreshes_incrementally(self):
        graph = self._chain_graph()
        first = graph.reachability()
        assert first.revision == 0
        # append new views reading existing relations (+ a new self-read)
        for i in (10, 11):
            view = TableLineage(name=f"w{i}")
            view.add_output_column("a")
            view.add_contribution("a", ColumnName.of("v3", "a"))
            view.add_reference(ColumnName.of(f"w{i}", "a"))
            graph.add(view)
        second = graph.reachability()
        assert second.revision == 1, "append-only growth should patch, not rebuild"
        _assert_index_matches_bfs(graph, graph)
        # and must agree with a from-scratch build
        fresh = ReachabilityIndex.build(graph.freeze())
        for column in sorted(graph.column_adjacency("downstream")):
            for direction in ("downstream", "upstream"):
                assert second.partition(column, direction) == fresh.partition(
                    column, direction
                )

    def test_non_append_mutation_forces_full_rebuild(self):
        graph = self._chain_graph()
        graph.reachability()
        # a new edge between two OLD nodes is not an append
        graph["v2"].add_reference(ColumnName.of("base", "b"))
        rebuilt = graph.reachability()
        assert rebuilt.revision == 0, "old->old edge must force a full rebuild"
        _assert_index_matches_bfs(graph, graph)

    def test_seeded_freeze_patches_from_previous_snapshot(self):
        graph = self._chain_graph()
        frozen_1 = graph.freeze()
        view = TableLineage(name="extra")
        view.add_output_column("a")
        view.add_contribution("a", ColumnName.of("v3", "a"))
        graph.add(view)
        frozen_2 = graph.freeze(reach_seed=frozen_1.reachability())
        assert frozen_2.reachability().revision == 1
        _assert_index_matches_bfs(frozen_2, frozen_2)


class TestFrozenPinning:
    def test_frozen_results_survive_source_mutation(self):
        graph = LineageGraph()
        base = TableLineage(name="base", is_base_table=True)
        base.add_output_column("a")
        graph.add(base)
        view = TableLineage(name="view")
        view.add_output_column("a")
        view.add_contribution("a", ColumnName.of("base", "a"))
        graph.add(view)
        frozen = graph.freeze()
        before = impact_analysis(frozen, "base.a").to_rows()
        # mutate the live graph through a shared entry
        view.add_reference(ColumnName.of("base", "a"))
        assert impact_analysis(frozen, "base.a").to_rows() == before
        assert impact_analysis(graph, "base.a").to_rows() != before

    def test_freeze_reuses_current_live_index(self):
        graph = LineageGraph()
        base = TableLineage(name="base", is_base_table=True)
        base.add_output_column("a")
        graph.add(base)
        live = graph.reachability()
        frozen = graph.freeze()
        assert frozen.reachability() is live


class TestOrderingFromIndex:
    def test_frozen_ordering_matches_live(self, example1_graph):
        frozen = example1_graph.freeze()
        assert creation_order(frozen) == creation_order(example1_graph)
        assert terminal_views(frozen) == terminal_views(example1_graph)
        assert root_tables(frozen) == root_tables(example1_graph)

    def test_cyclic_table_order_raises_consistently(self):
        from repro.core.errors import CyclicDependencyError

        graph = LineageGraph()
        for name, other in (("a", "b"), ("b", "a")):
            entry = TableLineage(name=name)
            entry.add_output_column("x")
            entry.add_contribution("x", ColumnName.of(other, "x"))
            graph.add(entry)
        with pytest.raises(CyclicDependencyError):
            creation_order(graph)
        frozen = graph.freeze()
        with pytest.raises(CyclicDependencyError):
            creation_order(frozen)
        with pytest.raises(CyclicDependencyError):  # memoised outcome re-raises
            creation_order(frozen)


class TestQuerySurface:
    def test_max_depth_limits_hops(self, example1_graph):
        full = impact_analysis(example1_graph, "web.page")
        one = impact_analysis(example1_graph, "web.page", max_depth=1)
        assert one.all_columns < full.all_columns
        assert {column.table for column in one.all_columns} == {
            "webact", "webinfo",
        }
        deep = impact_analysis(example1_graph, "web.page", max_depth=99)
        assert _partition(deep) == _partition(full)

    def test_missing_raise_flags_unknown_column(self, example1_graph):
        with pytest.raises(UnknownColumnError):
            impact_analysis(example1_graph, "nowhere.nothing", missing="raise")
        with pytest.raises(KeyError):  # KeyError-derived for library callers
            impact_analysis(example1_graph, "nowhere.nothing", missing="raise")
        # default keeps the historical empty-result behaviour
        empty = impact_analysis(example1_graph, "nowhere.nothing")
        assert not empty.all_columns

    def test_missing_raise_hint_names_nearest_column(self, example1_graph):
        with pytest.raises(UnknownColumnError) as caught:
            impact_analysis(example1_graph, "web.pagee", missing="raise")
        assert caught.value.hint == "web.page"

    def test_edgeless_known_column_is_not_missing(self, example1_graph):
        # a real column with no lineage edges must NOT raise
        frozen = example1_graph.freeze()
        index = frozen.reachability()
        stats = index.stats()
        assert stats["nodes"] > 0 and stats["components"] > 0

    def test_index_stats_shape(self, example1_graph):
        stats = example1_graph.freeze().reachability().stats()
        assert set(stats) >= {
            "nodes", "components", "cyclic_components",
            "exceptions_downstream", "exceptions_upstream", "revision",
        }


class TestPythonFallback:
    """With numpy absent (``reach._np = None``) the index must build and
    answer identically — the pure-Python walk is the portability floor the
    vectorised path is differentially checked against."""

    _RECIPE = (
        6,
        [
            (0, [(1, 0, 0, False), (2, 1, 1, True)]),
            (1, [(2, 0, 0, False), (1, 1, 2, False)]),   # self-read
            (2, [(0, 2, 1, True), (3, 0, 0, False)]),
            (3, [(4, 1, 1, False), (0, 0, 0, True)]),
            (4, [(5, 2, 2, False), (3, 1, 0, False)]),   # 3 <-> 4 cycle
            (5, [(0, 0, 1, True), (2, 2, 2, False)]),
        ],
    )

    def _all_starts(self, graph):
        columns = set(graph.column_adjacency("downstream"))
        columns |= set(graph.column_adjacency("upstream"))
        return sorted(columns)

    def test_fallback_build_matches_numpy_and_bfs(self, monkeypatch):
        import repro.analysis.reach as reach_module

        numpy_frozen = _build_graph(self._RECIPE).freeze()
        monkeypatch.setattr(reach_module, "_np", None)
        graph = _build_graph(self._RECIPE)
        frozen = graph.freeze()
        # no position arrays are derived when numpy is unavailable
        assert frozen.reachability()._vector == {}
        _assert_index_matches_bfs(graph, frozen)
        for column in self._all_starts(graph):
            for direction in ("downstream", "upstream"):
                assert _partition(
                    impact_analysis(frozen, column, direction=direction)
                ) == _partition(
                    impact_analysis(numpy_frozen, column, direction=direction)
                )

    def test_numpy_built_index_answers_without_numpy(self, monkeypatch):
        """Dispatch is per query: an index built with numpy keeps serving
        (via the Python walk) if numpy disappears afterwards."""
        import repro.analysis.reach as reach_module

        graph = _build_graph(self._RECIPE)
        frozen = graph.freeze()
        expected = {
            (column, direction): _partition(
                impact_analysis(frozen, column, direction=direction)
            )
            for column in self._all_starts(graph)
            for direction in ("downstream", "upstream")
        }
        frozen.reachability()._cache.clear()
        monkeypatch.setattr(reach_module, "_np", None)
        for (column, direction), parts in expected.items():
            assert _partition(
                impact_analysis(frozen, column, direction=direction)
            ) == parts
