"""Tests for the impact analysis (the demonstration's Steps 3-4)."""

import pytest

from repro.analysis.impact import (
    explore,
    downstream_columns,
    impact_analysis,
    impact_report,
    upstream_columns,
)
from repro.core.column_refs import ColumnName
from repro.core.lineage import EDGE_BOTH, EDGE_CONTRIBUTE, EDGE_REFERENCE
from repro.datasets import example1


def names(columns):
    return {str(column) for column in columns}


class TestExample1Impact:
    """Step 4 of the demonstration: the impact of editing ``web.page``."""

    def test_full_impact_set_matches_paper(self, example1_graph):
        result = impact_analysis(example1_graph, "web.page")
        assert names(result.all_columns) == example1.IMPACT_OF_WEB_PAGE

    def test_wpage_is_directly_contributed(self, example1_graph):
        result = impact_analysis(example1_graph, "web.page")
        assert result.kind_of(ColumnName.of("webinfo", "wpage")) in (
            EDGE_CONTRIBUTE,
            EDGE_BOTH,
        )

    def test_webact_columns_reached_through_set_operation(self, example1_graph):
        result = impact_analysis(example1_graph, "web.page")
        for column in ("wcid", "wdate", "wreg"):
            kind = result.kind_of(ColumnName.of("webact", column))
            assert kind in (EDGE_REFERENCE, EDGE_BOTH)

    def test_webact_wpage_is_both(self, example1_graph):
        # contributed positionally by the INTERSECT and referenced by the row
        # comparison -> "both" (the orange highlighting of Figure 5).
        result = impact_analysis(example1_graph, "web.page")
        assert result.kind_of(ColumnName.of("webact", "wpage")) == EDGE_BOTH

    def test_info_columns_all_impacted(self, example1_graph):
        result = impact_analysis(example1_graph, "web.page")
        info_columns = {c for c in result.all_columns if c.table == "info"}
        assert len(info_columns) == 7

    def test_impacted_tables(self, example1_graph):
        result = impact_analysis(example1_graph, "web.page")
        assert result.impacted_tables() == ["info", "webact", "webinfo"]

    def test_impact_of_web_date_also_covers_webinfo_filter(self, example1_graph):
        # web.date is used in webinfo's WHERE clause -> every webinfo column
        # is impacted, and everything downstream of webinfo follows.
        result = impact_analysis(example1_graph, "web.date")
        assert names(result.all_columns) >= {
            "webinfo.wcid", "webinfo.wdate", "webinfo.wpage", "webinfo.wreg",
        }

    def test_unused_column_has_no_impact(self, example1_with_catalog):
        result = impact_analysis(example1_with_catalog.graph, "orders.amount")
        assert result.all_columns == set()

    def test_unknown_start_column_is_empty(self, example1_graph):
        result = impact_analysis(example1_graph, "nowhere.nothing")
        assert result.all_columns == set()

    def test_rows_are_sorted_and_labelled(self, example1_graph):
        rows = impact_analysis(example1_graph, "web.page").to_rows()
        assert rows == sorted(rows)
        assert all(kind in (EDGE_CONTRIBUTE, EDGE_REFERENCE, EDGE_BOTH) for _, _, kind in rows)

    def test_report_text(self, example1_graph):
        text = impact_report(example1_graph, "web.page")
        assert "webinfo.wpage" in text
        assert "impacted tables" in text


class TestDirections:
    def test_downstream_vs_upstream(self, example1_graph):
        downstream = downstream_columns(example1_graph, "web.page")
        upstream = upstream_columns(example1_graph, "info.wpage")
        assert ColumnName.of("info", "wpage") in downstream
        assert ColumnName.of("web", "page") in upstream

    def test_upstream_of_view_column_reaches_base_tables(self, example1_graph):
        upstream = upstream_columns(example1_graph, "info.name")
        assert ColumnName.of("customers", "name") in upstream

    def test_invalid_direction_raises(self, example1_graph):
        with pytest.raises(ValueError):
            impact_analysis(example1_graph, "web.page", direction="sideways")

    def test_upstream_is_inverse_reachability(self, example1_graph):
        # if Y is downstream of X then X is upstream of Y
        downstream = downstream_columns(example1_graph, "web.page")
        for column in downstream:
            assert ColumnName.of("web", "page") in upstream_columns(
                example1_graph, column
            )


class TestExplore:
    """Step 3 of the demonstration: explore reveals adjacent tables."""

    def test_first_explore_from_web(self, example1_graph):
        upstream, downstream = explore(example1_graph, "web")
        assert downstream == {"webinfo", "webact"}
        assert upstream == set()

    def test_second_explore_reaches_info(self, example1_graph):
        _, downstream = explore(example1_graph, "web", hops=2)
        assert downstream == {"webinfo", "webact", "info"}

    def test_info_has_no_downstream(self, example1_graph):
        _, downstream = explore(example1_graph, "info")
        assert downstream == set()

    def test_upstream_of_info(self, example1_graph):
        upstream, _ = explore(example1_graph, "info")
        assert upstream == {"customers", "orders", "webact"}

    def test_unknown_table(self, example1_graph):
        assert explore(example1_graph, "ghost") == (set(), set())
