"""Tests for dependency ordering and warehouse hygiene reports."""

import pytest

from repro.analysis.ordering import (
    creation_order,
    drop_order,
    migration_script,
    root_tables,
    terminal_views,
    unused_base_columns,
)
from repro.core.runner import lineagex
from repro.datasets import example1, retail


class TestCreationOrder:
    def test_example1_dependencies_first(self, example1_graph):
        order = creation_order(example1_graph)
        assert order.index("webinfo") < order.index("webact") < order.index("info")

    def test_only_views_listed(self, example1_graph):
        order = creation_order(example1_graph)
        assert set(order) == {"info", "webact", "webinfo"}

    def test_drop_order_is_reverse(self, example1_graph):
        assert drop_order(example1_graph) == list(reversed(creation_order(example1_graph)))

    def test_retail_staging_before_marts(self, retail_result):
        order = creation_order(retail_result.graph)
        assert order.index("stg_order_items") < order.index("order_revenue")
        assert order.index("order_revenue") < order.index("customer_ltv")
        assert set(order) == set(retail.ALL_VIEW_NAMES)

    def test_replaying_migration_script_gives_same_lineage(self, retail_result):
        script = migration_script(retail_result.graph)
        replayed = lineagex(retail.BASE_TABLE_DDL + script)
        # the replay is already in dependency order: no deferrals needed
        assert replayed.report.deferral_count == 0
        assert {v.name for v in replayed.graph.views} == {
            v.name for v in retail_result.graph.views
        }

    def test_unmaterialised_source_table_is_not_a_cycle(self):
        # a view can read a table that never becomes a relation node (no
        # column reference ever hits it); the phantom edge must not make
        # the topological sort report a cycle
        result = lineagex("CREATE VIEW v AS SELECT 1 AS one FROM t")
        assert "t" not in result.graph
        assert creation_order(result.graph) == ["v"]
        assert drop_order(result.graph) == ["v"]

    def test_migration_script_statements_end_with_semicolons(self, example1_graph):
        script = migration_script(example1_graph)
        assert script.count("CREATE") == 3
        assert script.strip().endswith(";")


class TestHygieneReports:
    def test_terminal_views_example1(self, example1_graph):
        assert terminal_views(example1_graph) == ["info"]

    def test_terminal_views_retail_include_reports(self, retail_result):
        terminals = terminal_views(retail_result.graph)
        assert "churn_candidates" in terminals
        assert "top_pages" in terminals
        assert "stg_orders" not in terminals

    def test_root_tables(self, example1_graph):
        assert root_tables(example1_graph) == ["customers", "orders", "web"]

    def test_unused_base_columns_example1(self, example1_with_catalog):
        report = unused_base_columns(
            example1_with_catalog.graph, example1.base_table_catalog()
        )
        assert report == {"orders": ["amount"]}

    def test_unused_base_columns_retail(self, retail_result):
        report = unused_base_columns(retail_result.graph, retail.base_table_catalog())
        # the addresses table is never read by any view in the pipeline
        assert set(report.get("addresses", [])) == {
            "aid", "cid", "street", "city", "postal_code", "country",
        }

    def test_every_unused_column_is_really_unused(self, retail_result):
        from repro.analysis.impact import downstream_columns
        from repro.core.column_refs import ColumnName

        report = unused_base_columns(retail_result.graph, retail.base_table_catalog())
        for table, columns in report.items():
            for column in columns:
                assert not downstream_columns(
                    retail_result.graph, ColumnName.of(table, column)
                )
