"""Tests for graph diffing and the accuracy metrics."""

import pytest

from repro.analysis.diff import diff_graphs
from repro.analysis.metrics import (
    MetricReport,
    column_metrics,
    edge_metrics,
    impact_metrics,
    set_metrics,
)
from repro.core.column_refs import ColumnName
from repro.core.lineage import LineageGraph, TableLineage
from repro.datasets import example1


def small_graph(extra_column=False, wrong_edge=False):
    graph = LineageGraph()
    view = TableLineage(name="v")
    view.add_contribution("x", ColumnName.of("t", "a"))
    if extra_column:
        view.add_output_column("y")
    if wrong_edge:
        view.add_contribution("x", ColumnName.of("t", "wrong"))
    view.add_reference(ColumnName.of("t", "b"))
    graph.add(view)
    return graph


class TestGraphDiff:
    def test_identical_graphs(self):
        diff = diff_graphs(small_graph(), small_graph())
        assert diff.is_identical
        assert diff.matching_edges

    def test_extra_column_detected(self):
        diff = diff_graphs(small_graph(extra_column=True), small_graph())
        assert diff.extra_columns == {"v": {"y"}}
        assert not diff.is_identical

    def test_missing_column_detected(self):
        diff = diff_graphs(small_graph(), small_graph(extra_column=True))
        assert diff.missing_columns == {"v": {"y"}}

    def test_extra_edge_detected(self):
        diff = diff_graphs(small_graph(wrong_edge=True), small_graph())
        assert any("t.wrong" in edge[0] for edge in diff.extra_edges)

    def test_missing_relation_detected(self):
        reference = small_graph()
        reference.add(TableLineage(name="other"))
        diff = diff_graphs(small_graph(), reference)
        assert diff.missing_relations == {"other"}

    def test_ignore_kind_collapses_edge_kinds(self):
        candidate = small_graph()
        reference = small_graph()
        strict_diff = diff_graphs(candidate, reference, ignore_kind=False)
        loose_diff = diff_graphs(candidate, reference, ignore_kind=True)
        assert strict_diff.is_identical and loose_diff.is_identical

    def test_summary_text(self):
        summary = diff_graphs(small_graph(extra_column=True), small_graph()).summary()
        assert "columns" in summary and "+1" in summary

    def test_lineagex_vs_ground_truth_is_identical(self, example1_graph):
        truth = example1.ground_truth()
        diff = diff_graphs(example1_graph, truth)
        assert not diff.missing_relations
        assert not diff.missing_edges
        assert not any(diff.missing_columns.values())
        view_names = {"info", "webact", "webinfo"}
        extra_view_edges = {
            edge for edge in diff.extra_edges if edge[1].split(".")[0] in view_names
        }
        assert not extra_view_edges


class TestMetricReport:
    def test_perfect_scores(self):
        report = MetricReport(true_positives=5, false_positives=0, false_negatives=0)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_zero_denominators(self):
        report = MetricReport(true_positives=0, false_positives=0, false_negatives=0)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0  # vacuously perfect: nothing expected, nothing predicted

    def test_precision_recall_values(self):
        report = MetricReport(true_positives=3, false_positives=1, false_negatives=2)
        assert report.precision == pytest.approx(0.75)
        assert report.recall == pytest.approx(0.6)
        assert report.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)

    def test_as_row(self):
        row = MetricReport(3, 1, 2).as_row()
        assert row[:3] == (3, 1, 2)
        assert len(row) == 6

    def test_set_metrics(self):
        report = set_metrics({"a", "b"}, {"b", "c"})
        assert (report.true_positives, report.false_positives, report.false_negatives) == (1, 1, 1)


class TestGraphMetrics:
    def test_edge_metrics_perfect_on_ground_truth(self, example1_graph):
        report = edge_metrics(example1_graph, example1.ground_truth(), kinds=None)
        # every ground-truth edge is found
        assert report.recall == 1.0

    def test_column_metrics_single_relation(self, example1_graph):
        report = column_metrics(example1_graph, example1.ground_truth(), relation="webact")
        assert report.precision == 1.0 and report.recall == 1.0

    def test_column_metrics_all_relations(self, example1_graph):
        report = column_metrics(example1_graph, example1.ground_truth())
        assert report.recall == 1.0

    def test_baseline_scores_below_lineagex(self, example1_graph):
        from repro.baselines import SQLLineageBaseline

        baseline_graph = SQLLineageBaseline().run(example1.QUERY_LOG)
        truth = example1.ground_truth()
        lineagex_edges = edge_metrics(example1_graph, truth)
        baseline_edges = edge_metrics(baseline_graph, truth)
        assert baseline_edges.recall < lineagex_edges.recall
        baseline_columns = column_metrics(baseline_graph, truth, relation="webact")
        assert baseline_columns.precision < 1.0

    def test_impact_metrics(self):
        predicted = {ColumnName.of("a", "x")}
        expected = {ColumnName.of("a", "x"), ColumnName.of("b", "y")}
        report = impact_metrics(predicted, expected)
        assert report.recall == 0.5
        assert report.precision == 1.0
