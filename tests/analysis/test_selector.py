"""The InfoTracker-style selector surface."""

import pytest

from repro.analysis.impact import impact_analysis, merge_impacts
from repro.analysis.selector import (
    SelectorError,
    parse_selector,
    selector_impact,
    selector_starts,
)
from repro.core.column_refs import ColumnName
from repro.core.errors import UnknownColumnError


class TestParse:
    def test_bare_column_defaults_downstream(self):
        selector = parse_selector("web.page")
        assert (selector.table, selector.column) == ("web", "page")
        assert not selector.wildcard
        assert selector.directions == ["downstream"]

    def test_plus_prefix_is_upstream(self):
        selector = parse_selector("+info.age")
        assert selector.directions == ["upstream"]

    def test_plus_suffix_is_downstream(self):
        selector = parse_selector("web.page+")
        assert selector.directions == ["downstream"]

    def test_both_pluses_walk_both_ways(self):
        selector = parse_selector("+webact.wpage+")
        assert selector.directions == ["upstream", "downstream"]

    def test_table_star_is_a_wildcard(self):
        selector = parse_selector("web.*")
        assert selector.wildcard and selector.table == "web"

    def test_schema_qualified_star(self):
        selector = parse_selector("+analytics.web.*")
        assert selector.wildcard
        assert selector.table == "analytics.web"
        assert selector.directions == ["upstream"]

    def test_bare_table_name_selects_all_columns(self):
        selector = parse_selector("web")
        assert selector.wildcard and selector.table == "web"

    def test_surrounding_whitespace_is_tolerated(self):
        selector = parse_selector("  +web.page+  ")
        assert selector.directions == ["upstream", "downstream"]

    @pytest.mark.parametrize("bad", ["", "+", "++", ".*", "+.*+", "a++b"])
    def test_malformed_selectors_raise(self, bad):
        with pytest.raises(SelectorError):
            parse_selector(bad)


class TestStarts:
    def test_wildcard_expands_to_all_columns(self, example1_graph):
        starts = selector_starts(example1_graph, parse_selector("web.*"))
        assert ColumnName.of("web", "page") in starts
        assert len(starts) == len(example1_graph.columns_of("web"))

    def test_unknown_table_raises_with_hint(self, example1_graph):
        with pytest.raises(UnknownColumnError) as caught:
            selector_starts(example1_graph, parse_selector("webb.*"))
        assert "webb" in str(caught.value)


class TestImpactLowering:
    def test_downstream_selector_matches_plain_impact(self, example1_graph):
        outcome = selector_impact(example1_graph, "web.page+")
        plain = impact_analysis(example1_graph, "web.page")
        assert outcome.downstream.all_columns == plain.all_columns
        assert outcome.upstream is None

    def test_both_directions_run_both_queries(self, example1_graph):
        outcome = selector_impact(example1_graph, "+webact.wpage+")
        up = impact_analysis(example1_graph, "webact.wpage", direction="upstream")
        down = impact_analysis(example1_graph, "webact.wpage")
        assert outcome.upstream.all_columns == up.all_columns
        assert outcome.downstream.all_columns == down.all_columns

    def test_wildcard_merges_per_column_results(self, example1_graph):
        outcome = selector_impact(example1_graph, "web.*")
        merged = merge_impacts(
            impact_analysis(example1_graph, start)
            for start in selector_starts(example1_graph, parse_selector("web.*"))
        )
        assert outcome.downstream.all_columns == merged.all_columns
        assert outcome.downstream.both == merged.both

    def test_merge_unions_kinds_across_starts(self, example1_graph):
        # a column contributed from one start and referenced from another
        # must come out as "both" in the merged partition
        merged = selector_impact(example1_graph, "web.*").downstream
        for column in merged.both:
            assert merged.kind_of(column) == "both"
        assert not (merged.contributed & merged.referenced)

    def test_unknown_column_raises(self, example1_graph):
        with pytest.raises(UnknownColumnError):
            selector_impact(example1_graph, "web.nope+")

    def test_max_depth_lowering(self, example1_graph):
        limited = selector_impact(example1_graph, "web.page+", max_depth=1)
        full = selector_impact(example1_graph, "web.page+")
        assert limited.downstream.all_columns < full.downstream.all_columns

    def test_indexed_and_bfs_lowering_agree(self, example1_graph):
        frozen = example1_graph.freeze()
        indexed = selector_impact(frozen, "+web.*+")
        bfs = selector_impact(example1_graph, "+web.*+", method="bfs")
        for direction in ("upstream", "downstream"):
            left = getattr(indexed, direction)
            right = getattr(bfs, direction)
            assert left.to_rows() == right.to_rows()

    def test_payload_and_report_shapes(self, example1_graph):
        outcome = selector_impact(example1_graph, "+web.page+")
        payload = outcome.to_payload()
        assert payload["selector"] == "+web.page+"
        assert payload["starts"] == ["web.page"]
        assert {"upstream", "downstream"} <= set(payload)
        for direction in ("upstream", "downstream"):
            for row in payload[direction]["columns"]:
                assert set(row) == {"table", "column", "kind"}
        report = outcome.report()
        assert "selector +web.page+" in report
        assert "downstream:" in report and "upstream:" in report
