"""Parser tests for SELECT queries: projections, FROM, joins, clauses."""

import pytest

from repro.sqlparser import ParseError, ast, parse_one


def select_of(sql):
    statement = parse_one(sql)
    assert isinstance(statement, ast.QueryStatement)
    return statement.query


class TestProjections:
    def test_single_column(self):
        select = select_of("SELECT a FROM t")
        assert len(select.projections) == 1
        expression = select.projections[0].expression
        assert isinstance(expression, ast.ColumnRef)
        assert expression.name == "a"

    def test_qualified_column(self):
        select = select_of("SELECT t.a FROM t")
        expression = select.projections[0].expression
        assert expression.qualifier == ["t"]
        assert expression.table == "t"

    def test_schema_qualified_column(self):
        select = select_of("SELECT s.t.a FROM s.t")
        expression = select.projections[0].expression
        assert expression.qualifier == ["s", "t"]

    def test_alias_with_as(self):
        select = select_of("SELECT a AS b FROM t")
        assert select.projections[0].alias == "b"

    def test_alias_without_as(self):
        select = select_of("SELECT a b FROM t")
        assert select.projections[0].alias == "b"

    def test_bare_star(self):
        select = select_of("SELECT * FROM t")
        assert isinstance(select.projections[0].expression, ast.Star)
        assert select.projections[0].expression.qualifier == []

    def test_qualified_star(self):
        select = select_of("SELECT w.* FROM webact w")
        star = select.projections[0].expression
        assert isinstance(star, ast.Star)
        assert star.table == "w"

    def test_multiple_projections(self):
        select = select_of("SELECT a, b AS x, t.c, count(*) FROM t")
        assert len(select.projections) == 4

    def test_output_name_from_alias(self):
        select = select_of("SELECT a + 1 AS total FROM t")
        assert select.projections[0].output_name == "total"

    def test_output_name_from_column(self):
        select = select_of("SELECT t.amount FROM t")
        assert select.projections[0].output_name == "amount"

    def test_output_name_from_function(self):
        select = select_of("SELECT count(*) FROM t")
        assert select.projections[0].output_name == "count"

    def test_distinct(self):
        select = select_of("SELECT DISTINCT a FROM t")
        assert select.distinct is True

    def test_distinct_on(self):
        select = select_of("SELECT DISTINCT ON (a, b) a, b, c FROM t")
        assert select.distinct is True
        assert len(select.distinct_on) == 2


class TestFromAndJoins:
    def test_simple_table(self):
        select = select_of("SELECT a FROM customers")
        source = select.from_sources[0]
        assert isinstance(source, ast.TableRef)
        assert source.name.dotted() == "customers"

    def test_schema_qualified_table(self):
        select = select_of("SELECT a FROM public.customers")
        assert select.from_sources[0].name.dotted() == "public.customers"

    def test_table_alias(self):
        select = select_of("SELECT c.a FROM customers c")
        assert select.from_sources[0].alias == "c"
        assert select.from_sources[0].effective_name == "c"

    def test_table_alias_with_as(self):
        select = select_of("SELECT c.a FROM customers AS c")
        assert select.from_sources[0].alias == "c"

    def test_comma_join(self):
        select = select_of("SELECT a FROM t1, t2")
        assert len(select.from_sources) == 2

    def test_inner_join_on(self):
        select = select_of("SELECT a FROM t1 JOIN t2 ON t1.id = t2.id")
        join = select.from_sources[0]
        assert isinstance(join, ast.Join)
        assert join.join_type == "INNER"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_left_outer_join(self):
        select = select_of("SELECT a FROM t1 LEFT OUTER JOIN t2 ON t1.id = t2.id")
        assert select.from_sources[0].join_type == "LEFT"

    def test_right_join(self):
        select = select_of("SELECT a FROM t1 RIGHT JOIN t2 ON t1.id = t2.id")
        assert select.from_sources[0].join_type == "RIGHT"

    def test_full_join(self):
        select = select_of("SELECT a FROM t1 FULL JOIN t2 ON t1.id = t2.id")
        assert select.from_sources[0].join_type == "FULL"

    def test_cross_join(self):
        select = select_of("SELECT a FROM t1 CROSS JOIN t2")
        join = select.from_sources[0]
        assert join.join_type == "CROSS"
        assert join.condition is None

    def test_join_using(self):
        select = select_of("SELECT a FROM t1 JOIN t2 USING (id, code)")
        assert select.from_sources[0].using_columns == ["id", "code"]

    def test_natural_join(self):
        select = select_of("SELECT a FROM t1 NATURAL JOIN t2")
        assert select.from_sources[0].natural is True

    def test_chained_joins(self):
        select = select_of(
            "SELECT a FROM t1 JOIN t2 ON t1.id = t2.id JOIN t3 ON t2.id = t3.id"
        )
        outer = select.from_sources[0]
        assert isinstance(outer, ast.Join)
        assert isinstance(outer.left, ast.Join)
        assert isinstance(outer.right, ast.TableRef)
        assert outer.right.name.dotted() == "t3"

    def test_derived_table(self):
        select = select_of("SELECT v.a FROM (SELECT a FROM t) v")
        source = select.from_sources[0]
        assert isinstance(source, ast.SubquerySource)
        assert source.alias == "v"

    def test_derived_table_with_column_aliases(self):
        select = select_of("SELECT v.x FROM (SELECT a, b FROM t) AS v(x, y)")
        source = select.from_sources[0]
        assert source.column_aliases == ["x", "y"]

    def test_values_source(self):
        select = select_of("SELECT v.a FROM (VALUES (1, 2), (3, 4)) AS v(a, b)")
        source = select.from_sources[0]
        assert isinstance(source, ast.ValuesSource)
        assert len(source.rows) == 2

    def test_function_source(self):
        select = select_of("SELECT g FROM generate_series(1, 10) g")
        source = select.from_sources[0]
        assert isinstance(source, ast.FunctionSource)
        assert source.function.name == "generate_series"

    def test_lateral_subquery(self):
        select = select_of(
            "SELECT x.a FROM t, LATERAL (SELECT a FROM u WHERE u.id = t.id) x"
        )
        assert select.from_sources[1].lateral is True

    def test_parenthesised_join(self):
        select = select_of("SELECT a FROM (t1 JOIN t2 ON t1.id = t2.id)")
        assert isinstance(select.from_sources[0], ast.Join)


class TestClauses:
    def test_where(self):
        select = select_of("SELECT a FROM t WHERE a > 5")
        assert isinstance(select.where, ast.BinaryOp)

    def test_group_by(self):
        select = select_of("SELECT a, count(*) FROM t GROUP BY a, b")
        assert len(select.group_by) == 2

    def test_having(self):
        select = select_of("SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 1")
        assert select.having is not None

    def test_order_by_directions(self):
        select = select_of("SELECT a FROM t ORDER BY a DESC, b ASC")
        assert select.order_by[0].descending is True
        assert select.order_by[1].descending is False

    def test_order_by_nulls(self):
        select = select_of("SELECT a FROM t ORDER BY a DESC NULLS LAST")
        assert select.order_by[0].nulls == "LAST"

    def test_limit_offset(self):
        select = select_of("SELECT a FROM t LIMIT 10 OFFSET 20")
        assert select.limit.value == 10
        assert select.offset.value == 20

    def test_limit_all(self):
        select = select_of("SELECT a FROM t LIMIT ALL")
        assert select.limit.kind == "null"

    def test_named_window(self):
        select = select_of(
            "SELECT rank() OVER w FROM t WINDOW w AS (PARTITION BY a ORDER BY b)"
        )
        assert len(select.windows) == 1
        name, spec = select.windows[0]
        assert name == "w"
        assert len(spec.partition_by) == 1

    def test_select_without_from(self):
        select = select_of("SELECT 1, 'x'")
        assert select.from_sources == []
        assert len(select.projections) == 2


class TestCTEsAndSetOperations:
    def test_single_cte(self):
        select = select_of("WITH x AS (SELECT a FROM t) SELECT a FROM x")
        assert len(select.ctes) == 1
        assert select.ctes[0].name == "x"

    def test_multiple_ctes(self):
        select = select_of(
            "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM x) SELECT a FROM y"
        )
        assert [cte.name for cte in select.ctes] == ["x", "y"]

    def test_recursive_cte(self):
        select = select_of(
            "WITH RECURSIVE r AS (SELECT 1 AS n UNION ALL SELECT n + 1 FROM r) SELECT n FROM r"
        )
        assert select.recursive is True

    def test_cte_with_column_list(self):
        select = select_of("WITH x(p, q) AS (SELECT a, b FROM t) SELECT p FROM x")
        assert select.ctes[0].column_names == ["p", "q"]

    def test_union(self):
        query = select_of("SELECT a FROM t UNION SELECT b FROM u")
        assert isinstance(query, ast.SetOperation)
        assert query.operator == "UNION"
        assert query.all is False

    def test_union_all(self):
        query = select_of("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert query.all is True

    def test_intersect(self):
        query = select_of("SELECT a FROM t INTERSECT SELECT b FROM u")
        assert query.operator == "INTERSECT"

    def test_except(self):
        query = select_of("SELECT a FROM t EXCEPT SELECT b FROM u")
        assert query.operator == "EXCEPT"

    def test_intersect_binds_tighter_than_union(self):
        query = select_of(
            "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v"
        )
        assert query.operator == "UNION"
        assert isinstance(query.right, ast.SetOperation)
        assert query.right.operator == "INTERSECT"

    def test_set_operation_leaves(self):
        query = select_of(
            "SELECT a FROM t UNION SELECT b FROM u UNION SELECT c FROM v"
        )
        leaves = list(query.leaves())
        assert len(leaves) == 3
        assert all(isinstance(leaf, ast.Select) for leaf in leaves)

    def test_set_operation_with_order_and_limit(self):
        query = select_of("SELECT a FROM t UNION SELECT b FROM u ORDER BY 1 LIMIT 5")
        assert isinstance(query, ast.SetOperation)
        assert len(query.order_by) == 1
        assert query.limit.value == 5

    def test_parenthesised_query(self):
        query = select_of("(SELECT a FROM t)")
        assert isinstance(query, ast.Select)


class TestParseErrors:
    def test_missing_from_table(self):
        with pytest.raises(ParseError):
            parse_one("SELECT a FROM")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_one("SELECT a FROM (SELECT b FROM t")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse_one("FOO BAR BAZ")

    def test_two_statements_in_parse_one(self):
        with pytest.raises(ParseError):
            parse_one("SELECT 1; SELECT 2")

    def test_error_mentions_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_one("SELECT a FROM t WHERE")
        assert "line" in str(excinfo.value)
