"""Parser tests for scalar expressions."""

import pytest

from repro.sqlparser import ast, parse_one


def expr_of(sql_fragment):
    statement = parse_one(f"SELECT {sql_fragment} FROM t")
    return statement.query.projections[0].expression


def where_of(sql_fragment):
    statement = parse_one(f"SELECT a FROM t WHERE {sql_fragment}")
    return statement.query.where


class TestLiterals:
    def test_integer(self):
        literal = expr_of("42")
        assert literal.kind == "number"
        assert literal.value == 42

    def test_float(self):
        assert expr_of("3.5").value == 3.5

    def test_string(self):
        literal = expr_of("'abc'")
        assert literal.kind == "string"
        assert literal.value == "abc"

    def test_boolean_true(self):
        assert expr_of("TRUE").value is True

    def test_boolean_false(self):
        assert expr_of("FALSE").value is False

    def test_null(self):
        assert expr_of("NULL").kind == "null"

    def test_interval(self):
        literal = expr_of("INTERVAL '30 days'")
        assert literal.kind == "interval"
        assert literal.value == "30 days"

    def test_parameter(self):
        assert isinstance(expr_of("$1"), ast.Parameter)


class TestOperators:
    def test_arithmetic_precedence(self):
        expression = expr_of("a + b * c")
        assert expression.operator == "+"
        assert expression.right.operator == "*"

    def test_parentheses_override_precedence(self):
        expression = expr_of("(a + b) * c")
        assert expression.operator == "*"
        assert expression.left.operator == "+"

    def test_unary_minus(self):
        expression = expr_of("-a")
        assert isinstance(expression, ast.UnaryOp)
        assert expression.operator == "-"

    def test_comparison(self):
        expression = where_of("a >= 10")
        assert expression.operator == ">="

    def test_and_or_precedence(self):
        expression = where_of("a = 1 OR b = 2 AND c = 3")
        assert expression.operator == "OR"
        assert expression.right.operator == "AND"

    def test_not(self):
        expression = where_of("NOT a = 1")
        assert isinstance(expression, ast.UnaryOp)
        assert expression.operator == "NOT"

    def test_concatenation(self):
        expression = expr_of("a || '-' || b")
        assert expression.operator == "||"

    def test_postgres_cast_operator(self):
        expression = expr_of("a::text")
        assert isinstance(expression, ast.Cast)
        assert expression.type_name == "text"

    def test_chained_cast(self):
        expression = expr_of("a::text::varchar(10)")
        assert isinstance(expression, ast.Cast)
        assert isinstance(expression.operand, ast.Cast)

    def test_is_null(self):
        expression = where_of("a IS NULL")
        assert isinstance(expression, ast.IsNullExpr)
        assert expression.negated is False

    def test_is_not_null(self):
        expression = where_of("a IS NOT NULL")
        assert expression.negated is True

    def test_between(self):
        expression = where_of("a BETWEEN 1 AND 10")
        assert isinstance(expression, ast.BetweenExpr)
        assert expression.low.value == 1
        assert expression.high.value == 10

    def test_not_between(self):
        assert where_of("a NOT BETWEEN 1 AND 10").negated is True

    def test_like(self):
        expression = where_of("name LIKE 'A%'")
        assert isinstance(expression, ast.LikeExpr)
        assert expression.operator == "LIKE"

    def test_ilike(self):
        assert where_of("name ILIKE 'a%'").operator == "ILIKE"

    def test_not_like(self):
        assert where_of("name NOT LIKE 'A%'").negated is True

    def test_in_list(self):
        expression = where_of("a IN (1, 2, 3)")
        assert isinstance(expression, ast.InExpr)
        assert len(expression.values) == 3
        assert expression.query is None

    def test_not_in_list(self):
        assert where_of("a NOT IN (1, 2)").negated is True

    def test_in_subquery(self):
        expression = where_of("a IN (SELECT id FROM u)")
        assert expression.query is not None
        assert expression.values == []


class TestFunctionsAndCase:
    def test_function_call(self):
        call = expr_of("lower(name)")
        assert isinstance(call, ast.FunctionCall)
        assert call.name == "lower"
        assert len(call.args) == 1

    def test_count_star(self):
        call = expr_of("count(*)")
        assert call.is_star_arg is True

    def test_count_distinct(self):
        call = expr_of("count(DISTINCT cid)")
        assert call.distinct is True

    def test_nested_function_calls(self):
        call = expr_of("coalesce(nullif(a, ''), b)")
        assert call.name == "coalesce"
        assert isinstance(call.args[0], ast.FunctionCall)

    def test_zero_argument_function(self):
        call = expr_of("now()")
        assert call.args == []

    def test_current_date_keyword_function(self):
        call = expr_of("CURRENT_DATE")
        assert isinstance(call, ast.FunctionCall)
        assert call.name == "current_date"

    def test_window_function(self):
        call = expr_of("row_number() OVER (PARTITION BY a ORDER BY b DESC)")
        assert call.over is not None
        assert len(call.over.partition_by) == 1
        assert call.over.order_by[0].descending is True

    def test_window_frame(self):
        call = expr_of(
            "sum(x) OVER (ORDER BY d ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)"
        )
        assert call.over.frame is not None
        assert call.over.frame.kind == "ROWS"

    def test_named_window_reference(self):
        call = expr_of("rank() OVER w")
        assert call.over.name == "w"

    def test_filter_clause(self):
        call = expr_of("count(*) FILTER (WHERE status = 'ok')")
        assert call.filter_clause is not None

    def test_cast_call(self):
        cast = expr_of("CAST(a AS numeric(10, 2))")
        assert isinstance(cast, ast.Cast)
        assert "numeric" in cast.type_name

    def test_extract(self):
        extract = expr_of("EXTRACT(YEAR FROM created_at)")
        assert isinstance(extract, ast.ExtractExpr)
        assert extract.part.upper() == "YEAR"
        assert isinstance(extract.operand, ast.ColumnRef)

    def test_searched_case(self):
        case = expr_of("CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END")
        assert isinstance(case, ast.Case)
        assert len(case.whens) == 2
        assert case.else_result is not None
        assert case.operand is None

    def test_simple_case(self):
        case = expr_of("CASE status WHEN 'a' THEN 1 ELSE 0 END")
        assert case.operand is not None

    def test_keyword_named_functions(self):
        call = expr_of("left(name, 3)")
        assert call.name == "left"
        assert len(call.args) == 2


class TestSubqueryExpressions:
    def test_scalar_subquery(self):
        expression = expr_of("(SELECT max(x) FROM u)")
        assert isinstance(expression, ast.SubqueryExpr)

    def test_exists(self):
        expression = where_of("EXISTS (SELECT 1 FROM u WHERE u.id = t.id)")
        assert isinstance(expression, ast.ExistsExpr)
        assert expression.negated is False

    def test_not_exists(self):
        expression = where_of("NOT EXISTS (SELECT 1 FROM u)")
        assert isinstance(expression, ast.ExistsExpr)
        assert expression.negated is True

    def test_row_tuple(self):
        expression = where_of("(a, b) IN (SELECT x, y FROM u)")
        assert isinstance(expression, ast.InExpr)
        assert isinstance(expression.operand, ast.ExpressionList)


class TestNodeHelpers:
    def test_children_enumeration(self):
        expression = expr_of("a + b")
        children = list(expression.children())
        assert len(children) == 2
        assert all(isinstance(child, ast.ColumnRef) for child in children)

    def test_column_ref_str(self):
        assert str(ast.ColumnRef(name="c", qualifier=["t"])) == "t.c"

    def test_star_str(self):
        assert str(ast.Star(qualifier=["w"])) == "w.*"
        assert str(ast.Star()) == "*"

    def test_qualified_name_helpers(self):
        name = ast.QualifiedName(parts=["public", "orders"])
        assert name.name == "orders"
        assert name.schema == "public"
        assert name.dotted() == "public.orders"

    def test_node_name(self):
        assert expr_of("a").node_name == "ColumnRef"
