"""Parser/printer coverage for the warehouse DML surface.

MERGE, INSERT ... ON CONFLICT, QUALIFY and GROUP BY GROUPING
SETS/ROLLUP/CUBE: structural assertions, canonical-print round trips,
hypothesis statement strategies, and the trailing-garbage regression tests
(a statement followed by anything but ``;`` or end of input must raise a
positioned ParseError, never be accepted silently).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlparser import ast, parse, parse_one
from repro.sqlparser.errors import ParseError
from repro.sqlparser.printer import to_sql


class TestMergeParsing:
    def test_full_merge_shape(self):
        statement = parse_one(
            "MERGE INTO tgt AS t USING src AS s ON t.id = s.id "
            "WHEN MATCHED AND s.flag THEN UPDATE SET amount = s.amount, status = s.status "
            "WHEN NOT MATCHED THEN INSERT (id, amount) VALUES (s.id, s.amount) "
            "WHEN MATCHED THEN DELETE"
        )
        assert isinstance(statement, ast.MergeStatement)
        assert statement.target.dotted() == "tgt"
        assert statement.alias == "t"
        assert isinstance(statement.source, ast.TableRef)
        assert isinstance(statement.condition, ast.BinaryOp)
        actions = [when.action for when in statement.when_clauses]
        assert actions == ["update", "insert", "delete"]
        update = statement.when_clauses[0]
        assert update.matched and update.condition is not None
        assert [column for column, _ in update.assignments] == ["amount", "status"]
        insert = statement.when_clauses[1]
        assert not insert.matched and insert.columns == ["id", "amount"]
        assert len(insert.values) == 2

    def test_merge_with_subquery_source_and_do_nothing(self):
        statement = parse_one(
            "MERGE INTO tgt USING (SELECT a.id FROM a) AS s ON tgt.id = s.id "
            "WHEN MATCHED THEN DO NOTHING "
            "WHEN NOT MATCHED THEN INSERT VALUES (s.id)"
        )
        assert isinstance(statement.source, ast.SubquerySource)
        assert statement.when_clauses[0].action == "nothing"
        assert statement.when_clauses[1].columns == []

    def test_merge_requires_when_clause(self):
        with pytest.raises(ParseError):
            parse("MERGE INTO t USING s ON t.id = s.id")

    def test_merge_and_matched_stay_usable_as_identifiers(self):
        """MERGE/MATCHED are soft keywords: only 'MERGE INTO' and
        'WHEN [NOT] MATCHED' are special, so existing corpora naming
        columns or tables 'merge'/'matched' keep parsing."""
        statement = parse_one("SELECT t.merge, t.matched AS matched FROM merge t")
        columns = [p.expression.name for p in statement.query.projections]
        assert columns == ["merge", "matched"]
        target = parse_one(
            "MERGE INTO merge USING matched AS s ON merge.id = s.id "
            "WHEN MATCHED THEN DELETE"
        )
        assert target.target.dotted() == "merge"
        assert target.source.name.dotted() == "matched"

    def test_invalid_matched_action_combinations_raise(self):
        """Every real warehouse engine rejects these shapes; accepting them
        would produce confident-looking lineage for invalid SQL."""
        with pytest.raises(ParseError, match="cannot UPDATE"):
            parse(
                "MERGE INTO t USING s ON t.id = s.id "
                "WHEN NOT MATCHED THEN UPDATE SET a = s.a"
            )
        with pytest.raises(ParseError, match="cannot DELETE"):
            parse(
                "MERGE INTO t USING s ON t.id = s.id WHEN NOT MATCHED THEN DELETE"
            )
        with pytest.raises(ParseError, match="cannot INSERT"):
            parse(
                "MERGE INTO t USING s ON t.id = s.id "
                "WHEN MATCHED THEN INSERT (a) VALUES (s.a)"
            )

    def test_merge_insert_arity_mismatch_raises(self):
        with pytest.raises(ParseError) as exc:
            parse(
                "MERGE INTO t USING s ON t.id = s.id "
                "WHEN NOT MATCHED THEN INSERT (a, b) VALUES (s.a)"
            )
        assert "declares 2 columns" in str(exc.value)
        with pytest.raises(ParseError):
            parse(
                "MERGE INTO t USING s ON t.id = s.id "
                "WHEN NOT MATCHED THEN INSERT (a) VALUES (s.a, s.b)"
            )

    def test_merge_bare_alias(self):
        statement = parse_one(
            "MERGE INTO tgt t USING src s ON t.id = s.id "
            "WHEN MATCHED THEN DELETE"
        )
        assert statement.alias == "t"
        assert statement.source.alias == "s"


class TestOnConflictParsing:
    def test_do_update(self):
        statement = parse_one(
            "INSERT INTO t (a, b) SELECT s.a, s.b FROM s "
            "ON CONFLICT (a) DO UPDATE SET b = excluded.b WHERE t.a > 0"
        )
        clause = statement.on_conflict
        assert clause is not None and clause.do_update
        assert clause.columns == ["a"]
        assert [column for column, _ in clause.assignments] == ["b"]
        assert clause.where is not None

    def test_do_nothing_without_target(self):
        statement = parse_one("INSERT INTO t (a) VALUES (1) ON CONFLICT DO NOTHING")
        clause = statement.on_conflict
        assert clause is not None and not clause.do_update and clause.columns == []

    def test_plain_insert_has_no_clause(self):
        assert parse_one("INSERT INTO t (a) VALUES (1)").on_conflict is None

    def test_conflict_requires_do(self):
        with pytest.raises(ParseError):
            parse("INSERT INTO t (a) VALUES (1) ON CONFLICT (a) UPDATE SET a = 1")


class TestQualifyParsing:
    def test_qualify_after_having(self):
        statement = parse_one(
            "SELECT s.a, count(*) AS n FROM s GROUP BY s.a HAVING count(*) > 1 "
            "QUALIFY row_number() OVER (ORDER BY s.a) = 1"
        )
        assert statement.query.qualify is not None

    def test_qualify_after_window_clause(self):
        statement = parse_one(
            "SELECT s.a, rank() OVER w FROM s WINDOW w AS (ORDER BY s.a) QUALIFY rank() OVER w < 3"
        )
        assert statement.query.qualify is not None
        assert statement.query.windows

    def test_qualify_stays_usable_as_an_identifier(self):
        """QUALIFY is a soft keyword: 'qualify' keeps working as a column
        or table name, and as an explicit (AS) alias."""
        statement = parse_one("SELECT t.qualify FROM t")
        assert statement.query.projections[0].expression.name == "qualify"
        statement = parse_one("SELECT q.a FROM qualify AS q")
        assert statement.query.from_sources[0].name.dotted() == "qualify"
        statement = parse_one("SELECT a AS qualify FROM t")
        assert statement.query.projections[0].alias == "qualify"
        # only the *implicit* FROM-item alias position treats the bare word
        # as the clause introducer (the Snowflake/DuckDB tradeoff)
        statement = parse_one("SELECT t.a FROM t QUALIFY t.a = 1")
        assert statement.query.qualify is not None
        assert statement.query.from_sources[0].alias is None

    def test_qualify_then_order_by(self):
        statement = parse_one(
            "SELECT s.a, row_number() OVER (ORDER BY s.a) AS rn FROM s "
            "QUALIFY rn = 1 ORDER BY s.a LIMIT 5"
        )
        query = statement.query
        assert query.qualify is not None
        assert query.order_by and query.limit is not None


class TestGroupingSets:
    def test_grouping_sets_structure(self):
        statement = parse_one(
            "SELECT s.a, s.b FROM s GROUP BY GROUPING SETS ((s.a, s.b), (s.a), ())"
        )
        (spec,) = statement.query.group_by
        assert isinstance(spec, ast.GroupingSetSpec)
        assert spec.kind == "GROUPING SETS"
        assert [len(item.items) for item in spec.items] == [2, 1, 0]

    def test_rollup_and_cube(self):
        statement = parse_one(
            "SELECT s.a, s.b FROM s GROUP BY ROLLUP (s.a, s.b), CUBE (s.a), s.b"
        )
        rollup, cube, plain = statement.query.group_by
        assert rollup.kind == "ROLLUP" and len(rollup.items) == 2
        assert cube.kind == "CUBE" and len(cube.items) == 1
        assert isinstance(plain, ast.ColumnRef)

    def test_rollup_as_plain_identifier_still_works(self):
        # without a following '(' the words stay ordinary identifiers
        statement = parse_one("SELECT t.rollup FROM t GROUP BY t.rollup")
        (item,) = statement.query.group_by
        assert isinstance(item, ast.ColumnRef)


ROUND_TRIP = [
    "MERGE INTO tgt AS t USING src AS s ON t.id = s.id WHEN MATCHED THEN UPDATE SET a = s.a",
    "MERGE INTO tgt USING src AS s ON tgt.id = s.id WHEN NOT MATCHED THEN INSERT (id) VALUES (s.id) WHEN MATCHED THEN DELETE",
    "MERGE INTO tgt USING (SELECT a.id FROM a) AS s ON tgt.id = s.id WHEN MATCHED THEN DO NOTHING",
    "INSERT INTO t (a, b) SELECT s.a, s.b FROM s ON CONFLICT (a) DO UPDATE SET b = excluded.b",
    "INSERT INTO t (a) VALUES (1) ON CONFLICT DO NOTHING",
    "SELECT s.a, row_number() OVER (PARTITION BY s.a ORDER BY s.b) AS rn FROM s QUALIFY rn = 1",
    "SELECT s.a, s.b, count(*) AS n FROM s GROUP BY GROUPING SETS ((s.a, s.b), (s.a), ())",
    "SELECT s.a, s.b FROM s GROUP BY ROLLUP (s.a, s.b)",
    "SELECT s.a, s.b FROM s GROUP BY CUBE (s.a, (s.a, s.b)), s.b",
    "SELECT u.x FROM unnest(arr) AS u(x)",
    "SELECT g.i, s.id FROM s CROSS JOIN generate_series(1, 5) AS g(i)",
]


def test_round_trip_fixed_point():
    for sql in ROUND_TRIP:
        first = to_sql(parse_one(sql))
        second = to_sql(parse_one(first))
        assert first == second, sql


# ----------------------------------------------------------------------
# Hypothesis statement strategies for the new grammar
# ----------------------------------------------------------------------
_NAMES = st.sampled_from(["t0", "t1", "src", "tgt", "stage"])
_COLUMNS = st.sampled_from(["id", "a", "b", "amount", "status", "val"])


@st.composite
def merge_sql(draw):
    target = draw(_NAMES)
    source = draw(_NAMES.filter(lambda name: name != target))
    match = draw(_COLUMNS)
    arms = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        matched = draw(st.booleans())
        guard = f" AND s.{draw(_COLUMNS)} IS NOT NULL" if draw(st.booleans()) else ""
        action = draw(
            st.sampled_from(
                ["update", "delete", "nothing"] if matched else ["insert", "nothing"]
            )
        )
        if action == "update":
            body = f"UPDATE SET {draw(_COLUMNS)} = s.{draw(_COLUMNS)}"
        elif action == "delete":
            body = "DELETE"
        elif action == "insert":
            columns = draw(st.lists(_COLUMNS, min_size=1, max_size=3, unique=True))
            values = ", ".join(f"s.{draw(_COLUMNS)}" for _ in columns)
            body = f"INSERT ({', '.join(columns)}) VALUES ({values})"
        else:
            body = "DO NOTHING"
        arms.append(
            f"WHEN {'MATCHED' if matched else 'NOT MATCHED'}{guard} THEN {body}"
        )
    return (
        f"MERGE INTO {target} AS t USING {source} AS s ON t.{match} = s.{match} "
        + " ".join(arms)
    )


@st.composite
def qualify_sql(draw):
    source = draw(_NAMES)
    kept = draw(st.lists(_COLUMNS, min_size=1, max_size=3, unique=True))
    partition = draw(_COLUMNS)
    order = draw(_COLUMNS)
    projected = ", ".join(f"s.{column}" for column in kept)
    return (
        f"SELECT {projected}, row_number() OVER (PARTITION BY s.{partition} "
        f"ORDER BY s.{order}) AS rn FROM {source} s QUALIFY rn = 1"
    )


@st.composite
def grouping_sql(draw):
    source = draw(_NAMES)
    first = draw(_COLUMNS)
    second = draw(_COLUMNS.filter(lambda column: column != first))
    kind = draw(st.sampled_from(["GROUPING SETS", "ROLLUP", "CUBE"]))
    if kind == "GROUPING SETS":
        clause = f"GROUPING SETS ((s.{first}, s.{second}), (s.{first}), ())"
    else:
        clause = f"{kind} (s.{first}, s.{second})"
    return (
        f"SELECT s.{first}, s.{second}, count(*) AS n "
        f"FROM {source} s GROUP BY {clause}"
    )


@st.composite
def unnest_sql(draw):
    source = draw(_NAMES)
    kept = draw(_COLUMNS)
    if draw(st.booleans()):
        return (
            f"SELECT s.{kept}, u.item FROM {source} s "
            f"CROSS JOIN unnest(s.{draw(_COLUMNS)}) AS u(item)"
        )
    return (
        f"SELECT s.{kept}, g.step FROM {source} s "
        f"CROSS JOIN generate_series(1, {draw(st.integers(min_value=2, max_value=99))}) AS g(step)"
    )


@settings(max_examples=40, deadline=None)
@given(sql=st.one_of(merge_sql(), qualify_sql(), grouping_sql(), unnest_sql()))
def test_generated_dml_round_trips(sql):
    statement = parse_one(sql)
    canonical = to_sql(statement)
    assert to_sql(parse_one(canonical)) == canonical


# ----------------------------------------------------------------------
# Trailing garbage after a statement must raise, with a position
# ----------------------------------------------------------------------
GARBAGE_CASES = [
    "SELECT a FROM t WHERE a = 1 1 2",
    "SELECT a FROM t ORDER BY a DESC extra junk",
    "UPDATE t SET a = 1 JUNK",
    "DELETE FROM t WHERE t.a = 1 JUNK MORE",
    "DROP TABLE t JUNK",
    "INSERT INTO t (a) VALUES (1) trailing",
    "CREATE VIEW v AS SELECT 1 JUNK extra",
    "MERGE INTO t USING s ON t.id = s.id WHEN MATCHED THEN DELETE garbage here",
    "SELECT a FROM t QUALIFY",  # QUALIFY with no predicate
    "SELECT a FROM t; SELECT b FROM u 1",
]


class TestTrailingGarbage:
    @pytest.mark.parametrize("sql", GARBAGE_CASES)
    def test_garbage_raises(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_error_names_the_token_and_position(self):
        with pytest.raises(ParseError) as exc:
            parse("UPDATE t SET a = 1 JUNK")
        message = str(exc.value)
        assert "unexpected token 'JUNK' after end of statement" in message
        assert "column 20" in message

    def test_keyword_garbage_also_raises(self):
        with pytest.raises(ParseError) as exc:
            parse("SELECT a FROM t WHERE a = 1 GROUP BY a ROLLUP")
        assert "after end of statement" in str(exc.value)

    def test_semicolon_separated_statements_still_parse(self):
        statements = parse("SELECT a FROM t; SELECT b FROM u;")
        assert len(statements) == 2
