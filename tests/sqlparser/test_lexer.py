"""Unit tests for the SQL tokenizer."""

import pytest

from repro.sqlparser import Lexer, TokenizeError, TokenType, tokenize


def token_values(sql, **kwargs):
    return [(t.type, t.value) for t in tokenize(sql, **kwargs) if t.type != TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = token_values("select from where")
        assert tokens == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_keywords_case_insensitive(self):
        assert token_values("SeLeCt") == [(TokenType.KEYWORD, "SELECT")]

    def test_identifiers_preserve_case(self):
        tokens = token_values("MyTable other_col")
        assert tokens == [
            (TokenType.IDENTIFIER, "MyTable"),
            (TokenType.IDENTIFIER, "other_col"),
        ]

    def test_punctuation(self):
        tokens = token_values("( ) , . ; *")
        assert [t for t, _ in tokens] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.DOT,
            TokenType.SEMICOLON,
            TokenType.STAR,
        ]

    def test_eof_token_always_present(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type == TokenType.EOF

    def test_whitespace_and_newlines_skipped(self):
        assert token_values("a\n\t b  \r\n c") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
            (TokenType.IDENTIFIER, "c"),
        ]

    def test_positions_track_lines_and_columns(self):
        tokens = tokenize("select\n  col")
        col_token = tokens[1]
        assert col_token.line == 2
        assert col_token.column == 3


class TestLiterals:
    def test_string_literal(self):
        assert token_values("'hello'") == [(TokenType.STRING, "hello")]

    def test_string_with_escaped_quote(self):
        assert token_values("'it''s'") == [(TokenType.STRING, "it's")]

    def test_e_string(self):
        assert token_values("E'abc'") == [(TokenType.STRING, "abc")]

    def test_dollar_quoted_string(self):
        assert token_values("$$some text$$") == [(TokenType.STRING, "some text")]

    def test_tagged_dollar_quoted_string(self):
        assert token_values("$tag$a 'b' c$tag$") == [(TokenType.STRING, "a 'b' c")]

    def test_unicode_tagged_dollar_quoted_string(self):
        assert token_values("$étiquette$body$étiquette$") == [
            (TokenType.STRING, "body")
        ]

    def test_integer_literal(self):
        assert token_values("42") == [(TokenType.NUMBER, "42")]

    def test_decimal_literal(self):
        assert token_values("3.14") == [(TokenType.NUMBER, "3.14")]

    def test_leading_dot_decimal(self):
        assert token_values(".5") == [(TokenType.NUMBER, ".5")]

    def test_scientific_notation(self):
        assert token_values("1e6 2.5E-3") == [
            (TokenType.NUMBER, "1e6"),
            (TokenType.NUMBER, "2.5E-3"),
        ]

    def test_quoted_identifier(self):
        assert token_values('"My Column"') == [(TokenType.QUOTED_IDENTIFIER, "My Column")]

    def test_quoted_identifier_with_escaped_quote(self):
        assert token_values('"a""b"') == [(TokenType.QUOTED_IDENTIFIER, 'a"b')]


class TestOperatorsAndParameters:
    def test_single_char_operators(self):
        values = [v for _, v in token_values("a + b - c / d % e")]
        assert values == ["a", "+", "b", "-", "c", "/", "d", "%", "e"]

    def test_multi_char_operators(self):
        tokens = token_values("a <= b >= c <> d != e || f :: g")
        operators = [v for t, v in tokens if t == TokenType.OPERATOR]
        assert operators == ["<=", ">=", "<>", "!=", "||", "::"]

    def test_json_operators(self):
        operators = [v for t, v in token_values("a -> b ->> c") if t == TokenType.OPERATOR]
        assert operators == ["->", "->>"]

    def test_positional_parameter(self):
        assert token_values("$1") == [(TokenType.PARAMETER, "$1")]

    def test_named_parameter(self):
        assert token_values(":name") == [(TokenType.PARAMETER, ":name")]

    def test_pyformat_parameter(self):
        assert token_values("%(key)s") == [(TokenType.PARAMETER, "%(key)s")]

    def test_star_is_distinct_token(self):
        tokens = token_values("count(*)")
        assert (TokenType.STAR, "*") in tokens


class TestComments:
    def test_line_comment_skipped(self):
        assert token_values("a -- comment\n b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_block_comment_skipped(self):
        assert token_values("a /* comment */ b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_nested_block_comment(self):
        assert token_values("a /* x /* y */ z */ b") == [
            (TokenType.IDENTIFIER, "a"),
            (TokenType.IDENTIFIER, "b"),
        ]

    def test_keep_comments_option(self):
        tokens = token_values("a -- note", keep_comments=True)
        assert (TokenType.COMMENT, "-- note") in tokens

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("a /* never closed")


class TestCommentPositions:
    """keep_comments=True must carry COMMENT tokens with exact positions.

    The master-pattern scanner folds whitespace into token matches and
    derives line/column lazily, so these tests pin that comment tokens
    still report the offset/line/column of their first character and that
    surrounding tokens are unaffected.
    """

    def _comments(self, sql):
        return [t for t in tokenize(sql, keep_comments=True) if t.type == TokenType.COMMENT]

    def test_line_comment_position(self):
        sql = "SELECT a -- trailing note\nFROM t"
        (comment,) = self._comments(sql)
        assert comment.value == "-- trailing note"
        assert comment.position == sql.index("--")
        assert comment.line == 1
        assert comment.column == sql.index("--") + 1

    def test_line_comment_on_later_line(self):
        sql = "SELECT a\nFROM t\n  -- here\nWHERE a > 1"
        (comment,) = self._comments(sql)
        assert comment.position == sql.index("--")
        assert comment.line == 3
        assert comment.column == 3

    def test_block_comment_position_and_text(self):
        sql = "SELECT /* mid\nline */ a FROM t"
        (comment,) = self._comments(sql)
        assert comment.value == "/* mid\nline */"
        assert comment.position == sql.index("/*")
        assert comment.line == 1
        assert comment.column == 8

    def test_nested_block_comment_kept_whole(self):
        sql = "a /* x /* y */ z */ b"
        (comment,) = self._comments(sql)
        assert comment.value == "/* x /* y */ z */"
        assert comment.position == 2

    def test_comment_does_not_shift_following_tokens(self):
        sql = "SELECT a -- note\nFROM t"
        with_comments = tokenize(sql, keep_comments=True)
        without = tokenize(sql)
        stripped = [t for t in with_comments if t.type != TokenType.COMMENT]
        assert [(t.type, t.value, t.position) for t in stripped] == [
            (t.type, t.value, t.position) for t in without
        ]
        from_token = next(t for t in stripped if t.value == "FROM")
        assert from_token.line == 2
        assert from_token.column == 1

    def test_multiple_comments_in_order(self):
        sql = "-- first\nSELECT a /* second */ FROM t -- third"
        comments = self._comments(sql)
        assert [c.value for c in comments] == ["-- first", "/* second */", "-- third"]
        assert [c.position for c in comments] == [
            0,
            sql.index("/*"),
            sql.rindex("--"),
        ]
        assert [c.line for c in comments] == [1, 2, 2]

    def test_comment_token_dropped_by_default(self):
        assert self._comments("SELECT a FROM t") == []
        tokens = tokenize("a -- note\n b")
        assert all(t.type != TokenType.COMMENT for t in tokens)


class TestErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(TokenizeError):
            tokenize('"oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(TokenizeError) as excinfo:
            tokenize("a ` b")
        assert excinfo.value.line == 1

    def test_none_input_raises(self):
        with pytest.raises(TokenizeError):
            Lexer(None)

    def test_error_carries_position(self):
        with pytest.raises(TokenizeError) as excinfo:
            tokenize("ab\ncd `")
        assert excinfo.value.line == 2


class TestRealQueries:
    def test_example1_q3_token_stream(self):
        sql = "SELECT c.cid AS wcid FROM customers c WHERE EXTRACT(YEAR from w.date) = 2022"
        types = [t.type for t in tokenize(sql)]
        assert TokenType.KEYWORD in types
        assert types[-1] == TokenType.EOF

    def test_keyword_boundary_not_greedy(self):
        # "selection" must not be split into the SELECT keyword plus "ion"
        assert token_values("selection") == [(TokenType.IDENTIFIER, "selection")]

    def test_identifier_with_digits_and_dollar(self):
        assert token_values("tab1e_2") == [(TokenType.IDENTIFIER, "tab1e_2")]
