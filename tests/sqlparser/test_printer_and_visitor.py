"""Tests for the SQL printer (round-trips) and the visitor utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlparser import ast, parse, parse_one, to_sql
from repro.sqlparser.visitor import (
    created_name,
    find_all,
    query_of,
    referenced_tables,
    transform,
    walk,
    walk_postorder,
)


ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS x FROM t WHERE a > 1",
    "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id",
    "SELECT a FROM t LEFT JOIN u USING (id)",
    "SELECT a FROM t CROSS JOIN u",
    "SELECT count(*) AS n FROM t GROUP BY a HAVING count(*) > 2 ORDER BY n DESC LIMIT 5 OFFSET 2",
    "SELECT w.* FROM webact AS w",
    "SELECT * FROM t",
    "WITH x AS (SELECT a FROM t) SELECT a FROM x",
    "WITH x AS (SELECT a FROM t), y AS (SELECT a FROM x) SELECT y.a FROM y",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t INTERSECT SELECT b FROM u",
    "SELECT a FROM t EXCEPT SELECT b FROM u ORDER BY a LIMIT 1",
    "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END AS bucket FROM t",
    "SELECT CAST(a AS text) FROM t",
    "SELECT EXTRACT(YEAR FROM d) FROM t",
    "SELECT sum(x) OVER (PARTITION BY a ORDER BY b) FROM t",
    "SELECT count(*) FILTER (WHERE a > 0) FROM t",
    "SELECT a FROM t WHERE b IN (SELECT id FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
    "SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t WHERE b BETWEEN 1 AND 10 AND c LIKE 'x%'",
    "SELECT a FROM t WHERE b IS NOT NULL",
    "SELECT a FROM (SELECT a FROM t) AS sub",
    "SELECT v.x FROM (SELECT a, b FROM t) AS v(x, y)",
    "SELECT a FROM (VALUES (1, 2), (3, 4)) AS v(a, b)",
    "CREATE VIEW v AS SELECT a FROM t",
    "CREATE OR REPLACE MATERIALIZED VIEW v AS SELECT a FROM t",
    "CREATE TABLE t2 AS SELECT a FROM t",
    "CREATE TABLE x (a integer, b text)",
    "INSERT INTO target (a, b) SELECT x, y FROM src",
    "DROP VIEW IF EXISTS v CASCADE",
]


class TestRoundTrips:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_printed_sql_reparses(self, sql):
        statement = parse_one(sql)
        printed = to_sql(statement)
        reparsed = parse_one(printed)
        assert to_sql(reparsed) == printed, "printing must be a fixpoint after one round"

    def test_example1_round_trip(self):
        from repro.datasets import example1

        for statement in parse(example1.QUERY_LOG):
            printed = to_sql(statement)
            assert to_sql(parse_one(printed)) == printed

    def test_unknown_node_type_raises(self):
        with pytest.raises(TypeError):
            to_sql(object())

    def test_quoted_identifier_rendering(self):
        statement = parse_one('SELECT "Weird Name" FROM "My Table"')
        printed = to_sql(statement)
        assert '"Weird Name"' in printed
        assert '"My Table"' in printed

    def test_string_literal_escaping(self):
        printed = to_sql(parse_one("SELECT 'it''s' FROM t"))
        assert "'it''s'" in printed


class TestPropertyBasedRoundTrip:
    """Property-based round-trips over a small generated query space."""

    identifiers = st.sampled_from(["a", "b", "c", "total", "x1"])
    tables = st.sampled_from(["t", "u", "orders", "web_events"])

    @st.composite
    def simple_queries(draw):
        columns = draw(
            st.lists(
                st.sampled_from(["a", "b", "c", "total", "x1"]), min_size=1, max_size=4, unique=True
            )
        )
        table = draw(st.sampled_from(["t", "u", "orders", "web_events"]))
        alias = draw(st.sampled_from(["", "src", "z"]))
        use_where = draw(st.booleans())
        use_limit = draw(st.booleans())
        prefix = alias or table
        projection = ", ".join(f"{prefix}.{column}" for column in columns)
        sql = f"SELECT {projection} FROM {table}"
        if alias:
            sql += f" AS {alias}"
        if use_where:
            sql += f" WHERE {prefix}.{columns[0]} > 0"
        if use_limit:
            sql += " LIMIT 10"
        return sql

    @settings(max_examples=60, deadline=None)
    @given(simple_queries())
    def test_generated_queries_round_trip(self, sql):
        printed = to_sql(parse_one(sql))
        assert to_sql(parse_one(printed)) == printed

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4, unique=True
        ),
        st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]),
    )
    def test_set_operations_round_trip(self, columns, operator):
        projection = ", ".join(columns)
        sql = f"SELECT {projection} FROM t {operator} SELECT {projection} FROM u"
        printed = to_sql(parse_one(sql))
        assert to_sql(parse_one(printed)) == printed


class TestVisitor:
    def test_walk_visits_all_column_refs(self):
        statement = parse_one("SELECT a, b FROM t WHERE c > 1")
        refs = [node for node in walk(statement) if isinstance(node, ast.ColumnRef)]
        assert {ref.name for ref in refs} == {"a", "b", "c"}

    def test_walk_preorder_root_first(self):
        statement = parse_one("SELECT a FROM t")
        nodes = list(walk(statement))
        assert nodes[0] is statement

    def test_walk_postorder_root_last(self):
        statement = parse_one("SELECT a FROM t")
        nodes = list(walk_postorder(statement))
        assert nodes[-1] is statement

    def test_walk_postorder_children_before_parent(self):
        statement = parse_one("SELECT a + b FROM t")
        nodes = list(walk_postorder(statement))
        binary_index = next(
            i for i, node in enumerate(nodes) if isinstance(node, ast.BinaryOp)
        )
        ref_indexes = [
            i for i, node in enumerate(nodes) if isinstance(node, ast.ColumnRef)
        ]
        assert all(index < binary_index for index in ref_indexes)

    def test_walk_none_is_empty(self):
        assert list(walk(None)) == []
        assert list(walk_postorder(None)) == []

    def test_find_all_with_stop_at(self):
        statement = parse_one(
            "SELECT a, (SELECT max(x) FROM u) FROM t WHERE b > 1"
        )
        refs = find_all(
            statement.query, ast.ColumnRef, stop_at=ast.QueryExpression
        )
        # 'x' lives inside the nested subquery, which is not descended into
        names = {ref.name for ref in refs}
        assert "a" in names and "b" in names
        assert "x" not in names

    def test_find_all_without_stop(self):
        statement = parse_one("SELECT a, (SELECT max(x) FROM u) FROM t")
        names = {ref.name for ref in find_all(statement, ast.ColumnRef)}
        assert "x" in names

    def test_transform_rewrites_nodes(self):
        statement = parse_one("SELECT a FROM old_table")

        def rename(node):
            if isinstance(node, ast.QualifiedName) and node.name == "old_table":
                return ast.QualifiedName(parts=["new_table"])
            return node

        rewritten = transform(statement, rename)
        assert "new_table" in to_sql(rewritten)

    def test_query_of_statements(self):
        assert isinstance(query_of(parse_one("SELECT 1")), ast.Select)
        assert isinstance(
            query_of(parse_one("CREATE VIEW v AS SELECT 1")), ast.Select
        )
        assert query_of(parse_one("DROP TABLE t")) is None

    def test_created_name(self):
        assert created_name(parse_one("CREATE VIEW v AS SELECT 1")) == "v"
        assert created_name(parse_one("INSERT INTO t SELECT 1")) == "t"
        assert created_name(parse_one("SELECT 1")) is None

    def test_referenced_tables(self):
        statement = parse_one(
            "SELECT a FROM t JOIN u ON t.id = u.id WHERE b IN (SELECT id FROM v)"
        )
        assert referenced_tables(statement) == {"t", "u", "v"}
