"""Tests for identifier normalisation and quoting helpers."""

from hypothesis import given, strategies as st

from repro.sqlparser.dialect import (
    normalize_identifier,
    normalize_name,
    quote_identifier,
    quote_literal,
)


class TestNormalization:
    def test_identifiers_fold_to_lowercase(self):
        assert normalize_identifier("Orders") == "orders"
        assert normalize_identifier("OID") == "oid"

    def test_none_passes_through(self):
        assert normalize_identifier(None) is None
        assert normalize_name(None) is None

    def test_dotted_names(self):
        assert normalize_name("Public.Orders") == "public.orders"

    def test_already_lowercase_unchanged(self):
        assert normalize_name("web.page") == "web.page"


class TestQuoting:
    def test_safe_identifier_not_quoted(self):
        assert quote_identifier("orders") == "orders"
        assert quote_identifier("order_items_2") == "order_items_2"

    def test_unsafe_identifier_quoted(self):
        assert quote_identifier("My Table") == '"My Table"'
        assert quote_identifier("select") == "select"  # keywords are caller's concern

    def test_uppercase_identifier_quoted(self):
        assert quote_identifier("Orders") == '"Orders"'

    def test_embedded_quote_escaped(self):
        assert quote_identifier('a"b') == '"a""b"'

    def test_literal_quoting(self):
        assert quote_literal("abc") == "'abc'"
        assert quote_literal("it's") == "'it''s'"

    def test_quote_identifier_none(self):
        assert quote_identifier(None) == ""

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20))
    def test_quoted_literals_always_balanced(self, value):
        quoted = quote_literal(value)
        assert quoted.startswith("'") and quoted.endswith("'")
        # interior single quotes are always doubled
        assert quoted[1:-1].count("'") % 2 == 0
