"""Parser tests for top-level statements: CREATE, INSERT, DROP, scripts."""

import pytest

from repro.sqlparser import ParseError, ast, parse, parse_one


class TestCreateView:
    def test_basic_create_view(self):
        statement = parse_one("CREATE VIEW v AS SELECT a FROM t")
        assert isinstance(statement, ast.CreateView)
        assert statement.name.dotted() == "v"
        assert isinstance(statement.query, ast.Select)

    def test_or_replace(self):
        statement = parse_one("CREATE OR REPLACE VIEW v AS SELECT a FROM t")
        assert statement.or_replace is True

    def test_materialized_view(self):
        statement = parse_one("CREATE MATERIALIZED VIEW v AS SELECT a FROM t")
        assert statement.materialized is True

    def test_view_with_column_list(self):
        statement = parse_one("CREATE VIEW v (x, y) AS SELECT a, b FROM t")
        assert statement.column_names == ["x", "y"]

    def test_schema_qualified_view(self):
        statement = parse_one("CREATE VIEW analytics.v AS SELECT a FROM t")
        assert statement.name.dotted() == "analytics.v"

    def test_view_over_set_operation(self):
        statement = parse_one(
            "CREATE VIEW v AS SELECT a FROM t INTERSECT SELECT b FROM u"
        )
        assert isinstance(statement.query, ast.SetOperation)


class TestCreateTable:
    def test_create_table_as(self):
        statement = parse_one("CREATE TABLE t2 AS SELECT a, b FROM t")
        assert isinstance(statement, ast.CreateTableAs)
        assert statement.name.dotted() == "t2"

    def test_create_temp_table_as(self):
        statement = parse_one("CREATE TEMP TABLE t2 AS SELECT a FROM t")
        assert statement.temporary is True

    def test_create_table_ddl(self):
        statement = parse_one(
            "CREATE TABLE web (cid integer PRIMARY KEY, page varchar(255) NOT NULL, reg boolean)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert [c.name for c in statement.columns] == ["cid", "page", "reg"]
        assert statement.columns[0].type_name == "integer"

    def test_create_table_multiword_types(self):
        statement = parse_one(
            "CREATE TABLE x (d double precision, ts timestamp with time zone, v character varying(20))"
        )
        types = [c.type_name for c in statement.columns]
        assert types[0] == "double precision"
        assert "with time zone" in types[1]

    def test_create_table_if_not_exists(self):
        statement = parse_one("CREATE TABLE IF NOT EXISTS x (a integer)")
        assert statement.if_not_exists is True

    def test_create_table_with_table_constraint(self):
        statement = parse_one(
            "CREATE TABLE x (a integer, b integer, PRIMARY KEY (a, b))"
        )
        assert [c.name for c in statement.columns] == ["a", "b"]

    def test_create_table_with_default_expression(self):
        statement = parse_one("CREATE TABLE x (a integer DEFAULT 0, b text DEFAULT 'y')")
        assert len(statement.columns) == 2


class TestInsertAndDrop:
    def test_insert_select(self):
        statement = parse_one("INSERT INTO target (a, b) SELECT x, y FROM src")
        assert isinstance(statement, ast.InsertStatement)
        assert statement.columns == ["a", "b"]
        assert statement.query is not None

    def test_insert_select_without_columns(self):
        statement = parse_one("INSERT INTO target SELECT x FROM src")
        assert statement.columns == []

    def test_insert_values(self):
        statement = parse_one("INSERT INTO target (a, b) VALUES (1, 'x'), (2, 'y')")
        assert statement.query is None
        assert len(statement.values) == 2

    def test_drop_table(self):
        statement = parse_one("DROP TABLE old_table")
        assert isinstance(statement, ast.DropStatement)
        assert statement.object_type == "TABLE"

    def test_drop_view_if_exists_cascade(self):
        statement = parse_one("DROP VIEW IF EXISTS v CASCADE")
        assert statement.if_exists is True
        assert statement.cascade is True

    def test_drop_materialized_view(self):
        statement = parse_one("DROP MATERIALIZED VIEW mv")
        assert statement.object_type == "MATERIALIZED VIEW"


class TestScripts:
    def test_multiple_statements(self):
        statements = parse("SELECT 1; SELECT 2; SELECT 3")
        assert len(statements) == 3

    def test_trailing_semicolon(self):
        assert len(parse("SELECT 1;")) == 1

    def test_empty_statements_skipped(self):
        assert len(parse(";;SELECT 1;;")) == 1

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 SELECT 2")

    def test_example1_script(self):
        from repro.datasets import example1

        statements = parse(example1.QUERY_LOG)
        assert len(statements) == 3
        assert all(isinstance(s, ast.CreateView) for s in statements)
        assert [s.name.dotted() for s in statements] == ["info", "webact", "webinfo"]

    def test_mixed_ddl_and_queries(self):
        statements = parse(
            "CREATE TABLE t (a integer); CREATE VIEW v AS SELECT a FROM t; SELECT a FROM v"
        )
        assert isinstance(statements[0], ast.CreateTable)
        assert isinstance(statements[1], ast.CreateView)
        assert isinstance(statements[2], ast.QueryStatement)

    def test_comments_in_script(self):
        statements = parse(
            "-- header comment\nSELECT 1; /* block */ SELECT 2"
        )
        assert len(statements) == 2
