"""Edge-case SQL the lineage extractor must tolerate without crashing."""

import pytest

from repro.core.runner import lineagex
from repro.sqlparser import ParseError, ast, parse_one, to_sql


class TestTrickyParsing:
    def test_keywords_as_column_names_via_quotes(self):
        statement = parse_one('SELECT t."select", t."from" FROM t')
        names = [p.expression.name for p in statement.query.projections]
        assert names == ["select", "from"]

    def test_mixed_case_table_and_alias(self):
        statement = parse_one("SELECT Cust.Name FROM Customers AS Cust")
        assert statement.query.from_sources[0].alias == "Cust"

    def test_deeply_nested_parentheses(self):
        statement = parse_one("SELECT ((((t.a)))) FROM t")
        projection = statement.query.projections[0].expression
        assert isinstance(projection, ast.ColumnRef)

    def test_nested_case_expressions(self):
        sql = (
            "SELECT CASE WHEN a > 0 THEN CASE WHEN b > 0 THEN 'pp' ELSE 'pn' END "
            "ELSE 'n' END AS quadrant FROM t"
        )
        case = parse_one(sql).query.projections[0].expression
        assert isinstance(case.whens[0].result, ast.Case)

    def test_multiple_joins_with_mixed_conditions(self):
        sql = (
            "SELECT a.x FROM a JOIN b ON a.id = b.id LEFT JOIN c USING (id) "
            "CROSS JOIN d NATURAL JOIN e"
        )
        statement = parse_one(sql)
        text = to_sql(statement)
        assert "NATURAL JOIN" in text and "CROSS JOIN" in text

    def test_union_of_parenthesised_queries(self):
        statement = parse_one("(SELECT a FROM t) UNION (SELECT b FROM u)")
        assert isinstance(statement.query, ast.SetOperation)

    def test_subquery_in_case_condition(self):
        sql = "SELECT CASE WHEN EXISTS (SELECT 1 FROM u) THEN 1 ELSE 0 END AS flag FROM t"
        assert parse_one(sql).query.projections[0].alias == "flag"

    def test_aggregate_with_order_by_inside(self):
        statement = parse_one("SELECT string_agg(t.name, ',' ORDER BY t.name) FROM t")
        call = statement.query.projections[0].expression
        assert call.name == "string_agg"

    def test_in_expression_with_negative_numbers(self):
        statement = parse_one("SELECT a FROM t WHERE a IN (-1, -2, 3)")
        in_expression = statement.query.where
        assert len(in_expression.values) == 3

    def test_comparison_chain_with_functions(self):
        statement = parse_one(
            "SELECT a FROM t WHERE date_trunc('day', t.ts) >= CURRENT_DATE - INTERVAL '7 days'"
        )
        assert statement.query.where is not None

    def test_empty_in_list_is_an_error(self):
        with pytest.raises(ParseError):
            parse_one("SELECT a FROM t WHERE a IN ()")

    def test_select_with_trailing_comma_is_an_error(self):
        with pytest.raises(ParseError):
            parse_one("SELECT a, FROM t")

    def test_long_projection_list(self):
        columns = ", ".join(f"t.col_{i}" for i in range(300))
        statement = parse_one(f"SELECT {columns} FROM t")
        assert len(statement.query.projections) == 300

    def test_very_deep_boolean_expression(self):
        predicate = " AND ".join(f"t.c{i} = {i}" for i in range(80))
        statement = parse_one(f"SELECT t.a FROM t WHERE {predicate}")
        assert statement.query.where is not None


class TestExtractionRobustness:
    """Queries that stress the extractor's tolerance rather than accuracy."""

    def test_view_depending_on_itself_indirectly_is_rejected(self):
        from repro.core.errors import CyclicDependencyError

        sql = """
        CREATE VIEW a AS SELECT b.x FROM b;
        CREATE VIEW b AS SELECT c.x FROM c;
        CREATE VIEW c AS SELECT a.x FROM a;
        """
        # the cycle is only a problem when column lists are needed; qualified
        # references keep it extractable, so either outcome must be graceful
        try:
            result = lineagex(sql)
            assert len(result.graph.views) == 3
        except CyclicDependencyError:
            pass

    def test_star_cycle_is_rejected(self):
        from repro.core.errors import CyclicDependencyError

        sql = """
        CREATE VIEW a AS SELECT b.* FROM b;
        CREATE VIEW b AS SELECT a.* FROM a;
        """
        with pytest.raises(CyclicDependencyError):
            lineagex(sql)

    def test_duplicate_alias_in_from(self):
        result = lineagex("CREATE VIEW v AS SELECT x.a FROM t x, u x")
        assert "v" in result.graph

    def test_view_with_only_literals(self):
        result = lineagex("CREATE VIEW constants AS SELECT 1 AS one, 'x' AS label")
        constants = result.graph["constants"]
        assert constants.output_columns == ["one", "label"]
        assert constants.source_tables == set()

    def test_select_from_values_only(self):
        result = lineagex(
            "CREATE VIEW v AS SELECT vals.a FROM (VALUES (1), (2)) AS vals(a)"
        )
        assert result.graph["v"].output_columns == ["a"]

    def test_group_by_ordinal(self):
        result = lineagex(
            "CREATE VIEW v AS SELECT t.region, count(*) AS n FROM t GROUP BY 1 ORDER BY 2"
        )
        assert result.graph["v"].output_columns == ["region", "n"]

    def test_window_over_named_window(self):
        result = lineagex(
            "CREATE VIEW v AS SELECT rank() OVER w AS r FROM t WINDOW w AS (PARTITION BY t.g)"
        )
        assert "v" in result.graph

    def test_quoted_mixed_case_view_name(self):
        result = lineagex('CREATE VIEW "Sales Report" AS SELECT t.a FROM t')
        assert "sales report" in result.graph

    def test_insert_into_existing_view_extends_lineage(self):
        sql = """
        CREATE TABLE audit (who text, what text);
        INSERT INTO audit (who, what) SELECT u.name, u.action FROM user_actions u;
        """
        result = lineagex(sql)
        audit = result.graph["audit"]
        assert audit.contributions["who"] == {
            __import__("repro").ColumnName.of("user_actions", "name")
        }

    def test_create_table_as_from_set_operation(self):
        result = lineagex(
            "CREATE TABLE combined AS SELECT a.x FROM a UNION ALL SELECT b.y FROM b"
        )
        assert result.graph["combined"].output_columns == ["x"]

    def test_semicolon_only_input(self):
        result = lineagex(";;;")
        assert len(result.graph) == 0

    def test_unicode_string_literals(self):
        result = lineagex("CREATE VIEW v AS SELECT t.a FROM t WHERE t.label = 'café ☕'")
        assert "v" in result.graph
