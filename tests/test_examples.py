"""Smoke tests: every example script must run end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLE_SCRIPTS = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_at_least_three_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_cleanly(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must print something useful"


def test_quickstart_mentions_output_files():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "lineagex.html" in completed.stdout


def test_impact_analysis_example_reports_step4_answer():
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "impact_analysis.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "webinfo.wpage" in completed.stdout
    assert "Step 4" in completed.stdout
