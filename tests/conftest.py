"""Shared fixtures for the test suite.

Expensive end-to-end extractions (Example 1, the retail warehouse, the
synthetic MIMIC warehouse) are computed once per session and shared across
test modules.
"""

import pytest

from repro.core.runner import lineagex
from repro.datasets import example1, mimic, retail, workload


@pytest.fixture(scope="session")
def example1_result():
    """LineageX output for the paper's Example 1 (paper statement order)."""
    return lineagex(example1.QUERY_LOG)


@pytest.fixture(scope="session")
def example1_graph(example1_result):
    return example1_result.graph


@pytest.fixture(scope="session")
def example1_with_catalog():
    """Example 1 with the base-table catalog supplied (exact metadata)."""
    return lineagex(example1.QUERY_LOG, catalog=example1.base_table_catalog())


@pytest.fixture(scope="session")
def retail_result():
    """LineageX output for the retail warehouse (DDL + staging + marts)."""
    return lineagex(retail.FULL_SCRIPT)


@pytest.fixture(scope="session")
def mimic_result():
    """LineageX output for the synthetic MIMIC warehouse (shuffled order)."""
    return lineagex(mimic.full_script(shuffle_seed=11))


@pytest.fixture(scope="session")
def small_warehouse():
    """A small deterministic generated warehouse."""
    return workload.generate_warehouse(num_base_tables=4, num_views=12, seed=5)
