"""Tests for schema objects, the in-memory catalog, and DDL introspection."""

import pytest

from repro.catalog import (
    Catalog,
    ColumnSchema,
    DuplicateTableError,
    TableSchema,
    UndefinedTableError,
    catalog_from_sql,
)


class TestColumnSchema:
    def test_name_is_normalised(self):
        assert ColumnSchema(name="OID").name == "oid"

    def test_defaults(self):
        column = ColumnSchema(name="x")
        assert column.type_name == "text"
        assert column.nullable is True

    def test_to_dict(self):
        payload = ColumnSchema(name="x", type_name="integer", nullable=False).to_dict()
        assert payload == {
            "name": "x",
            "type": "integer",
            "nullable": False,
            "description": "",
        }


class TestTableSchema:
    def test_columns_from_tuples(self):
        table = TableSchema(name="t", columns=[("a", "integer"), ("b", "text")])
        assert table.column_names() == ["a", "b"]
        assert table.column("a").type_name == "integer"

    def test_columns_from_strings(self):
        table = TableSchema(name="t", columns=["a", "b"])
        assert table.column_names() == ["a", "b"]

    def test_name_normalised(self):
        assert TableSchema(name="Public.Orders").name == "public.orders"

    def test_has_column_case_insensitive(self):
        table = TableSchema(name="t", columns=["Amount"])
        assert table.has_column("AMOUNT")
        assert not table.has_column("missing")

    def test_add_column_idempotent(self):
        table = TableSchema(name="t", columns=["a"])
        table.add_column("a")
        table.add_column("b", type_name="integer")
        assert table.column_names() == ["a", "b"]

    def test_ddl_rendering(self):
        table = TableSchema(name="t", columns=[("a", "integer"), ("b", "text")])
        ddl = table.ddl()
        assert ddl.startswith("CREATE TABLE t")
        assert "a integer" in ddl


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table("orders", [("oid", "integer"), ("cid", "integer")])
        assert "orders" in catalog
        assert catalog.columns_of("orders") == ["oid", "cid"]

    def test_lookup_is_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table("Orders", ["oid"])
        assert catalog.get("ORDERS") is not None

    def test_search_path_resolution(self):
        catalog = Catalog(search_path=("analytics", "public"))
        catalog.create_table("analytics.daily", ["d"])
        assert catalog.resolve_name("daily") == "analytics.daily"
        assert catalog["daily"].column_names() == ["d"]

    def test_qualified_lookup_falls_back_to_bare_name(self):
        catalog = Catalog()
        catalog.create_table("orders", ["oid"])
        assert catalog.get("public.orders") is not None

    def test_duplicate_registration_raises(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        with pytest.raises(DuplicateTableError):
            catalog.create_table("t", ["b"])

    def test_replace_allows_redefinition(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        catalog.create_table("t", ["b"], replace=True)
        assert catalog.columns_of("t") == ["b"]

    def test_missing_relation_raises(self):
        catalog = Catalog()
        with pytest.raises(UndefinedTableError):
            catalog["nope"]

    def test_drop_table(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        assert catalog.drop_table("t") is True
        assert "t" not in catalog

    def test_drop_missing_without_if_exists_raises(self):
        catalog = Catalog()
        with pytest.raises(UndefinedTableError):
            catalog.drop_table("nope")

    def test_drop_missing_with_if_exists(self):
        assert Catalog().drop_table("nope", if_exists=True) is False

    def test_views_and_base_tables_partition(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        catalog.create_table("v", ["a"], is_view=True)
        assert [t.name for t in catalog.base_tables()] == ["t"]
        assert [v.name for v in catalog.views()] == ["v"]

    def test_copy_is_independent(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        clone = catalog.copy()
        clone.create_table("u", ["b"])
        assert "u" not in catalog
        assert "t" in clone

    def test_round_trip_through_dict(self):
        catalog = Catalog()
        catalog.create_table("t", [("a", "integer")])
        rebuilt = Catalog.from_dict(catalog.to_dict())
        assert rebuilt.columns_of("t") == ["a"]

    def test_ddl_script_contains_base_tables_only(self):
        catalog = Catalog()
        catalog.create_table("t", ["a"])
        catalog.create_table("v", ["b"], is_view=True)
        script = catalog.ddl_script()
        assert "CREATE TABLE t" in script
        assert "v" not in script.replace("CREATE TABLE t", "")


class TestIntrospection:
    def test_catalog_from_create_table_sql(self):
        catalog = catalog_from_sql(
            "CREATE TABLE web (cid integer, page varchar(255) NOT NULL);"
            "CREATE TABLE customers (cid integer, name text);"
        )
        assert sorted(catalog.relation_names()) == ["customers", "web"]
        assert catalog.columns_of("web") == ["cid", "page"]

    def test_not_null_detection(self):
        catalog = catalog_from_sql("CREATE TABLE t (a integer NOT NULL, b text)")
        table = catalog.get("t")
        assert table.column("a").nullable is False
        assert table.column("b").nullable is True

    def test_drop_statements_remove_tables(self):
        catalog = catalog_from_sql(
            "CREATE TABLE t (a integer); DROP TABLE t; CREATE TABLE u (b integer)"
        )
        assert "t" not in catalog
        assert "u" in catalog

    def test_non_ddl_statements_ignored(self):
        catalog = catalog_from_sql(
            "CREATE TABLE t (a integer); CREATE VIEW v AS SELECT a FROM t"
        )
        assert "t" in catalog
        assert "v" not in catalog

    def test_retail_ddl_introspection(self):
        from repro.datasets import retail

        catalog = catalog_from_sql(retail.BASE_TABLE_DDL)
        assert len(catalog.relation_names()) == 8
        assert "line_total" not in catalog.columns_of("order_items")
        assert catalog.columns_of("order_items") == [
            "oid", "pid", "quantity", "unit_price", "discount",
        ]

    def test_mimic_ddl_matches_declared_schema(self):
        from repro.datasets import mimic

        catalog = catalog_from_sql(mimic.base_table_ddl())
        assert len(catalog.relation_names()) == len(mimic.BASE_TABLES)
        for table, columns in mimic.BASE_TABLES.items():
            assert catalog.columns_of(table) == columns
