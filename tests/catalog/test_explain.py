"""Tests for the EXPLAIN simulator (database-connection substrate)."""

import pytest

from repro.catalog import Catalog, ExplainSimulator, UndefinedTableError
from repro.catalog.provider import StrictCatalogProvider
from repro.datasets import example1


@pytest.fixture
def catalog():
    return example1.base_table_catalog()


@pytest.fixture
def simulator(catalog):
    return ExplainSimulator(catalog)


class TestBasicPlans:
    def test_seq_scan_plan(self, simulator):
        plan = simulator.explain("SELECT cid, name FROM customers")
        assert plan.node_type == "Seq Scan"
        assert plan.relation == "customers"
        assert plan.output == ["cid, name"] or plan.output  # output recorded

    def test_missing_relation_raises_undefined_table(self, simulator):
        with pytest.raises(UndefinedTableError) as excinfo:
            simulator.explain("SELECT a FROM not_a_table")
        assert excinfo.value.name == "not_a_table"

    def test_join_plan_structure(self, simulator):
        plan = simulator.explain(
            "SELECT c.name, o.oid FROM customers c JOIN orders o ON c.cid = o.cid"
        )
        assert plan.node_type == "Hash Join"
        assert "Hash Cond" in plan.details
        scans = plan.scans()
        assert {scan.relation for scan in scans} == {"customers", "orders"}

    def test_left_join_node_type(self, simulator):
        plan = simulator.explain(
            "SELECT c.name FROM customers c LEFT JOIN orders o ON c.cid = o.cid"
        )
        assert plan.node_type == "Hash Left Join"

    def test_filter_node(self, simulator):
        plan = simulator.explain("SELECT cid FROM web WHERE page = 'home'")
        assert plan.node_type == "Filter"
        assert plan.children[0].node_type == "Seq Scan"

    def test_aggregate_node(self, simulator):
        plan = simulator.explain(
            "SELECT cid, count(*) FROM orders GROUP BY cid HAVING count(*) > 1"
        )
        assert plan.node_type == "HashAggregate"
        assert "Group Key" in plan.details
        assert "Having" in plan.details

    def test_sort_and_limit(self, simulator):
        plan = simulator.explain("SELECT cid FROM orders ORDER BY cid LIMIT 3")
        assert plan.node_type == "Limit"
        assert plan.children[0].node_type == "Sort"

    def test_distinct_unique_node(self, simulator):
        plan = simulator.explain("SELECT DISTINCT cid FROM orders")
        assert plan.node_type == "Unique"

    def test_window_aggregate_node(self, simulator):
        plan = simulator.explain(
            "SELECT cid, row_number() OVER (ORDER BY oid) FROM orders"
        )
        assert plan.node_type == "WindowAgg"

    def test_set_operation_node(self, simulator):
        plan = simulator.explain(
            "SELECT cid FROM customers INTERSECT SELECT cid FROM web"
        )
        assert plan.node_type == "HashSetOp Intersect"
        assert len(plan.children) == 2

    def test_union_all_append_node(self, simulator):
        plan = simulator.explain(
            "SELECT cid FROM customers UNION ALL SELECT cid FROM web"
        )
        assert plan.node_type == "Append"

    def test_cte_scan(self, simulator):
        plan = simulator.explain(
            "WITH recent AS (SELECT cid FROM orders) SELECT cid FROM recent"
        )
        node_types = {node.node_type for node in plan.walk()}
        assert "CTE Scan" in node_types
        assert "CTE" in node_types

    def test_subquery_scan(self, simulator):
        plan = simulator.explain("SELECT s.cid FROM (SELECT cid FROM orders) s")
        node_types = {node.node_type for node in plan.walk()}
        assert "Subquery Scan" in node_types

    def test_values_scan(self, simulator):
        plan = simulator.explain("SELECT v.a FROM (VALUES (1), (2)) AS v(a)")
        assert "Values Scan" in {node.node_type for node in plan.walk()}

    def test_plan_text_format(self, simulator):
        text = simulator.explain_text(
            "SELECT c.name FROM customers c JOIN orders o ON c.cid = o.cid WHERE c.age > 30"
        )
        assert "Hash Join" in text
        assert "->" in text
        assert "Seq Scan on customers" in text


class TestViewLifecycle:
    def test_create_view_registers_schema(self, simulator, catalog):
        simulator.create_view("adults", "SELECT cid, name FROM customers WHERE age >= 18")
        assert catalog.get("adults").is_view is True
        assert catalog.columns_of("adults") == ["cid", "name"]

    def test_view_scan_by_default(self, simulator):
        simulator.create_view("adults", "SELECT cid, name FROM customers WHERE age >= 18")
        plan = simulator.explain("SELECT name FROM adults")
        assert "View Scan" in {node.node_type for node in plan.walk()}

    def test_inline_views_option_expands_definition(self, catalog):
        simulator = ExplainSimulator(catalog, inline_views=True)
        simulator.create_view("adults", "SELECT cid, name FROM customers WHERE age >= 18")
        plan = simulator.explain("SELECT name FROM adults")
        relations = plan.relations()
        assert "customers" in relations

    def test_view_over_missing_dependency_raises(self, simulator):
        with pytest.raises(UndefinedTableError):
            simulator.create_view("bad", "SELECT x FROM missing_table")

    def test_create_view_star_expansion_uses_catalog(self, simulator, catalog):
        simulator.create_view("web_copy", "SELECT w.* FROM web w")
        assert catalog.columns_of("web_copy") == ["cid", "date", "page", "reg"]

    def test_drop_view(self, simulator, catalog):
        simulator.create_view("tmp", "SELECT cid FROM customers")
        simulator.drop_view("tmp")
        assert "tmp" not in catalog

    def test_example1_views_in_dependency_order(self, simulator, catalog):
        simulator.create_view("webinfo", example1.Q3.split("AS", 1)[1])
        simulator.create_view("webact", example1.Q2.split("AS", 1)[1])
        simulator.create_view("info", example1.Q1.split("AS", 1)[1])
        assert catalog.columns_of("info") == [
            "name", "age", "oid", "wcid", "wdate", "wpage", "wreg",
        ]


class TestStrictProvider:
    def test_known_relation_columns(self, catalog):
        provider = StrictCatalogProvider(catalog)
        assert provider.get_columns("web") == ["cid", "date", "page", "reg"]

    def test_missing_relation_raises(self, catalog):
        provider = StrictCatalogProvider(catalog)
        with pytest.raises(UndefinedTableError):
            provider.get_columns("missing")
