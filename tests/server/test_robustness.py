"""Backpressure, deadlines, quarantine surface, and degraded-mode serving."""

import asyncio
import json

import pytest

from repro.core.lineage import LineageGraph
from repro.server import LineageApp, OverloadedError
from repro.server.batcher import IngestBatcher
from repro.server.quarantine import Quarantine
from repro.server.snapshot import SnapshotManager
from repro.session import LineageSession
from repro.testing import faults

V1 = "CREATE VIEW v1 AS SELECT a, b FROM t1"


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.reset()
    yield
    faults.reset()


async def _request(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        head = f"{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_bytes, _, response_body = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(response_body) if response_body else None


def _with_app(test, **app_kwargs):
    async def go():
        app = LineageApp(batch_window=0.005, **app_kwargs)
        host, port = await app.start(port=0)
        try:
            await test(app, host, port)
        finally:
            await app.stop()

    asyncio.run(go())


async def _make_batcher(**kwargs):
    session = LineageSession()
    snapshots = SnapshotManager(LineageGraph())
    batcher = IngestBatcher(session, snapshots, batch_window=0.005, **kwargs)
    batcher.start()
    return snapshots, batcher


def _view(index):
    return f"CREATE VIEW q{index} AS SELECT c{index} FROM t{index}"


class TestBackpressure:
    def test_full_queue_sheds_with_retry_after(self):
        async def go():
            # hold the ingest loop inside a slow refresh so the queue
            # actually backs up (the loop normally drains instantly)
            faults.install(
                faults.FaultPlan(seed=0, delays={"batcher.refresh": 0.2})
            )
            _, batcher = await _make_batcher(max_pending=1)
            first = asyncio.ensure_future(batcher.submit({"q0": _view(0)}))
            await asyncio.sleep(0.05)  # the loop picked q0 up; now stall it
            second = asyncio.ensure_future(batcher.submit({"q1": _view(1)}))
            await asyncio.sleep(0.01)  # q1 sits in the queue: depth == 1
            with pytest.raises(OverloadedError) as error:
                await batcher.submit({"q2": _view(2)})
            assert error.value.retry_after > 0
            assert batcher.counters["shed"] == 1
            # the accepted requests still complete
            results = await asyncio.gather(first, second)
            assert all(
                row["status"] == "extracted"
                for result in results
                for row in result["statements"]
            )
            await batcher.stop()

        asyncio.run(go())

    def test_replay_traffic_is_never_shed(self):
        async def go():
            faults.install(
                faults.FaultPlan(seed=0, delays={"batcher.refresh": 0.2})
            )
            _, batcher = await _make_batcher(max_pending=1)
            first = asyncio.ensure_future(batcher.submit({"q0": _view(0)}))
            await asyncio.sleep(0.05)
            second = asyncio.ensure_future(batcher.submit({"q1": _view(1)}))
            await asyncio.sleep(0.01)
            # recovery replay (journal=False) must get through: shedding
            # boot-time replay would lose acknowledged statements
            third = asyncio.ensure_future(
                batcher.submit({"q2": _view(2)}, journal=False)
            )
            results = await asyncio.gather(first, second, third)
            assert all(
                row["status"] == "extracted"
                for result in results
                for row in result["statements"]
            )
            assert batcher.counters["shed"] == 0
            await batcher.stop()

        asyncio.run(go())

    def test_overload_is_a_503_with_retry_after_header(self):
        async def check(app, host, port):
            faults.install(
                faults.FaultPlan(seed=0, delays={"batcher.refresh": 0.2})
            )
            first = asyncio.ensure_future(
                _request(host, port, "POST", "/extract", {"q0": _view(0)})
            )
            await asyncio.sleep(0.05)
            second = asyncio.ensure_future(
                _request(host, port, "POST", "/extract", {"q1": _view(1)})
            )
            await asyncio.sleep(0.05)
            status, headers, payload = await _request(
                host, port, "POST", "/extract", {"q2": _view(2)}
            )
            assert status == 503
            assert int(headers["retry-after"]) >= 1
            assert "queue full" in payload["error"]
            for response in await asyncio.gather(first, second):
                assert response[0] == 200

        _with_app(check, max_pending=1)


class TestDeadlines:
    def test_slow_batch_times_out_as_retryable_503(self):
        async def check(app, host, port):
            faults.install(
                faults.FaultPlan(seed=0, delays={"batcher.refresh": 0.5})
            )
            status, headers, payload = await _request(
                host, port, "POST", "/extract", {"q0": _view(0)}
            )
            assert status == 503
            assert "retry-after" in headers
            assert "deduplicated" in payload["error"]
            assert app.batcher.counters["deadline_exceeded"] == 1
            faults.reset()
            # the batch itself still completed behind the deadline: the
            # work was not lost, and the daemon is healthy
            await asyncio.sleep(0.6)
            status, _, payload = await _request(
                host, port, "POST", "/extract", {"q0": _view(0)}
            )
            assert status == 200
            assert payload["statements"][0]["status"] == "duplicate"

        _with_app(check, request_timeout=0.1)


class TestBatchSplitting:
    def test_oversized_batch_is_split(self):
        async def go():
            snapshots, batcher = await _make_batcher(max_batch_statements=2)
            result = await batcher.submit(
                {f"q{i}": _view(i) for i in range(5)}
            )
            assert [row["status"] for row in result["statements"]] == [
                "extracted"
            ] * 5
            assert batcher.counters["batch_splits"] == 2  # 5 -> 2+2+1
            # each chunk published: the watchdog keeps publish latency
            # bounded instead of one giant batch blocking readers
            assert snapshots.version == 3
            assert snapshots.current().stats["num_views"] == 5
            await batcher.stop()

        asyncio.run(go())

    def test_replay_is_never_split(self):
        # chunk boundaries change dependency context and store keys —
        # exactly what makes chunked replay slow and key-mismatched — so
        # the split watchdog must not apply to journal replay / preload
        async def go():
            from repro.server.batcher import statement_hash

            snapshots, batcher = await _make_batcher(max_batch_statements=2)
            entries = [
                (index, f"q{index}", _view(index), statement_hash(_view(index)))
                for index in range(5)
            ]
            assert await batcher.replay(entries) == 5
            assert batcher.counters["batch_splits"] == 0
            assert snapshots.version == 1  # one batch, one publish
            assert snapshots.current().stats["num_views"] == 5
            await batcher.stop()

        asyncio.run(go())


class TestJournalFailure:
    def test_journal_write_failure_is_a_retryable_503(self, tmp_path):
        async def check(app, host, port):
            faults.install(
                faults.FaultPlan(seed=0, rates={"journal.fsync": 1.0})
            )
            status, headers, payload = await _request(
                host, port, "POST", "/extract", {"q0": _view(0)}
            )
            assert status == 503
            assert "retry-after" in headers
            # nothing was acknowledged, so nothing was adopted: after the
            # disk recovers the same statement extracts normally
            faults.reset()
            status, _, payload = await _request(
                host, port, "POST", "/extract", {"q0": _view(0)}
            )
            assert status == 200
            assert payload["statements"][0]["status"] == "extracted"
            assert app.journal.stats()["entries_on_disk"] == 1

        _with_app(check, journal_dir=str(tmp_path / "journal"))


class TestDegradedMode:
    def test_store_outage_degrades_health_not_availability(self, tmp_path):
        async def check(app, host, port):
            faults.install(
                faults.FaultPlan(
                    seed=0, rates={"store.read": 1.0, "store.write": 1.0}
                )
            )
            # every batch drops its cache write; enough consecutive
            # failures trip the shard breaker
            for index in range(6):
                status, _, _ = await _request(
                    host, port, "POST", "/extract", {f"q{index}": _view(index)}
                )
                assert status == 200  # extraction works without the cache
            status, _, health = await _request(host, port, "GET", "/health")
            assert status == 200
            assert health["status"] == "degraded"
            assert health["store"]["degraded_shards"] >= 1
            breakers = {row["breaker"] for row in health["store"]["shards"]}
            assert "open" in breakers
            status, _, stats = await _request(host, port, "GET", "/stats")
            assert stats["store"]["session_dropped_writes"] >= 6

        _with_app(check, cache_dir=str(tmp_path / "cache"), cache_shards=2)

    def test_thirty_percent_fault_rate_never_5xxes(self, tmp_path):
        async def check(app, host, port):
            faults.install(
                faults.FaultPlan(
                    seed=42, rates={"store.read": 0.3, "store.write": 0.3}
                )
            )
            for index in range(20):
                status, _, payload = await _request(
                    host, port, "POST", "/extract", {f"q{index}": _view(index)}
                )
                assert status == 200
                assert payload["statements"][0]["status"] == "extracted"
            for path in ("/health", "/stats", "/render/json", "/quarantine"):
                status, _, _ = await _request(host, port, "GET", path)
                assert status == 200

        _with_app(check, cache_dir=str(tmp_path / "cache"), cache_shards=2)


class TestQuarantineSurface:
    def test_quarantine_endpoint_shape(self, tmp_path):
        async def check(app, host, port):
            status, _, payload = await _request(
                host, port, "POST", "/extract",
                {"bad": "CREATE VIEW bad AS SELEKT"},
            )
            assert status == 200
            status, _, payload = await _request(host, port, "GET", "/quarantine")
            assert status == 200
            (entry,) = payload["entries"]
            assert entry["name"] == "bad"
            assert entry["failures"] == 1
            assert entry["error"]["type"]
            assert entry["retry_after_seconds"] > 0
            assert payload["stats"]["recorded"] == 1

        _with_app(check)

    def test_corrected_statement_bypasses_the_quarantined_pair(self):
        async def go():
            snapshots, batcher = await _make_batcher()
            await batcher.submit({"v1": "CREATE VIEW v1 AS SELEKT"})
            # the fix changes the content hash: a fresh pair, extracted
            # immediately even though the broken pair is still backed off
            result = await batcher.submit({"v1": V1})
            assert result["statements"][0]["status"] == "extracted"
            assert snapshots.current().stats["num_views"] == 1
            assert len(batcher.quarantine) == 1  # broken pair still parked
            await batcher.stop()

        asyncio.run(go())

    def test_backoff_expiry_allows_a_retrial(self):
        async def go():
            clock = [1000.0]
            quarantine = Quarantine(clock=lambda: clock[0])
            _, batcher = await _make_batcher(quarantine=quarantine)
            broken = {"bad": "CREATE VIEW bad AS SELEKT"}
            await batcher.submit(broken)
            assert quarantine.get("bad", batcher_hash(broken)) .failures == 1
            # inside the window: blocked without a parse
            await batcher.submit(broken)
            assert batcher.counters["quarantine_blocked"] == 1
            # past the window: re-parsed, fails again, backoff doubles
            clock[0] += 2.0
            await batcher.submit(broken)
            entry = quarantine.get("bad", batcher_hash(broken))
            assert entry.failures == 2
            assert entry.blocked_until - clock[0] == pytest.approx(2.0)
            await batcher.stop()

        asyncio.run(go())


def batcher_hash(mapping):
    from repro.server.batcher import statement_hash

    (sql,) = mapping.values()
    return statement_hash(sql)


class TestQuarantineTable:
    def test_backoff_doubles_and_caps(self):
        clock = [0.0]
        table = Quarantine(backoff_base=1.0, backoff_cap=8.0, clock=lambda: clock[0])
        backoffs = [table.record("v", "h", {"type": "E"}) for _ in range(6)]
        assert backoffs == [1.0, 2.0, 4.0, 8.0, 8.0, 8.0]

    def test_bounded_table_evicts_oldest(self):
        clock = [0.0]
        table = Quarantine(max_entries=2, clock=lambda: clock[0])
        for index in range(3):
            clock[0] += 1.0
            table.record(f"v{index}", "h", {"type": "E"})
        assert len(table) == 2
        assert table.get("v0", "h") is None  # oldest failure evicted
        assert table.counters["evicted"] == 1

    def test_clear_on_success(self):
        table = Quarantine()
        table.record("v", "h", {"type": "E"})
        table.clear("v", "h")
        assert len(table) == 0
        assert table.blocked_for("v", "h") is None
        assert table.counters["cleared"] == 1
