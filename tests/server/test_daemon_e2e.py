"""The daemon as a real process: boot, serve, dedupe, SIGTERM shutdown."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

V1 = "CREATE VIEW v1 AS SELECT a, b FROM t1;\n"
V2 = "CREATE VIEW v2 AS SELECT a FROM v1;\n"


class Daemon:
    """A `python -m repro serve` subprocess with readiness parsing."""

    def __init__(self, *args, corpus=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        command = [sys.executable, "-m", "repro", "serve"]
        if corpus:
            command.append(corpus)
        command += ["--port", "0", *args]
        self.process = subprocess.Popen(
            command,
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.lines = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        self.base = self._await_ready()

    def _drain(self):
        for line in self.process.stdout:
            self.lines.append(line.rstrip("\n"))

    def _await_ready(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if line.startswith("serving on "):
                    return line.split("serving on ", 1)[1]
            if self.process.poll() is not None:
                raise AssertionError(
                    "daemon exited before readiness: "
                    + "\n".join(self.lines)
                    + (self.process.stderr.read() or "")
                )
            time.sleep(0.02)
        raise AssertionError("daemon never announced readiness")

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=10) as response:
            return response.status, json.loads(response.read())

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())

    def terminate(self, timeout=15.0):
        self.process.send_signal(signal.SIGTERM)
        self.process.wait(timeout=timeout)
        self._reader.join(timeout=5)
        return self.process.returncode

    def kill(self):
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)


@pytest.fixture
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "v1.sql").write_text(V1)
    (directory / "v2.sql").write_text(V2)
    return str(directory)


def test_daemon_lifecycle(corpus, tmp_path):
    daemon = Daemon("--cache-dir", str(tmp_path / "cache"), corpus=corpus)
    try:
        status, health = daemon.get("/health")
        assert status == 200
        assert health["snapshot_version"] == 1  # the preload batch
        assert any("preloaded 2 statements" in line for line in daemon.lines)

        # a duplicate-heavy batch: the preloaded statements are answered
        # from the hash index, only the new one is extracted
        status, payload = daemon.post(
            "/extract",
            {"statements": {"v1": V1, "v2": V2, "v3": "CREATE VIEW v3 AS SELECT b FROM v1"}},
        )
        assert status == 200
        statuses = {row["name"]: row["status"] for row in payload["statements"]}
        assert statuses == {"v1": "duplicate", "v2": "duplicate", "v3": "extracted"}

        status, impact = daemon.get("/impact?column=t1.a")
        assert status == 200
        assert impact["impacted_tables"] == ["v1", "v2"]

        status, rendered = daemon.get("/render/json")
        assert status == 200
        assert rendered["stats"]["num_views"] == 3

        status, stats = daemon.get("/stats")
        assert stats["ingest"]["duplicate"] == 2
        assert stats["store"]["entries"] == 3

        exit_code = daemon.terminate()
        assert exit_code == 0
        assert any("shutting down" in line for line in daemon.lines)
    finally:
        daemon.kill()


def test_daemon_survives_bad_requests_and_404s(corpus):
    daemon = Daemon(corpus=corpus)
    try:
        with pytest.raises(urllib.error.HTTPError) as error:
            daemon.get("/render/pdf")
        assert error.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as error:
            daemon.post("/extract", {"bad": "CREATE VIEW bad AS SELEKT"})
        assert error.value.code == 500
        status, _ = daemon.get("/health")
        assert status == 200
        assert daemon.terminate() == 0
    finally:
        daemon.kill()
