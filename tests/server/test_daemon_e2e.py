"""The daemon as a real process: boot, serve, dedupe, SIGTERM shutdown."""

import signal
import time
import urllib.error

import pytest

from repro.server.journal import IngestJournal
from repro.testing import faults

from _daemon import Daemon

V1 = "CREATE VIEW v1 AS SELECT a, b FROM t1;\n"
V2 = "CREATE VIEW v2 AS SELECT a FROM v1;\n"


@pytest.fixture
def corpus(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "v1.sql").write_text(V1)
    (directory / "v2.sql").write_text(V2)
    return str(directory)


def test_daemon_lifecycle(corpus, tmp_path):
    daemon = Daemon("--cache-dir", str(tmp_path / "cache"), corpus=corpus)
    try:
        status, health = daemon.get("/health")
        assert status == 200
        assert health["snapshot_version"] == 1  # the preload batch
        assert any("preloaded 2 statements" in line for line in daemon.lines)

        # a duplicate-heavy batch: the preloaded statements are answered
        # from the hash index, only the new one is extracted
        status, payload = daemon.post(
            "/extract",
            {"statements": {"v1": V1, "v2": V2, "v3": "CREATE VIEW v3 AS SELECT b FROM v1"}},
        )
        assert status == 200
        statuses = {row["name"]: row["status"] for row in payload["statements"]}
        assert statuses == {"v1": "duplicate", "v2": "duplicate", "v3": "extracted"}

        status, impact = daemon.get("/impact?column=t1.a")
        assert status == 200
        assert impact["impacted_tables"] == ["v1", "v2"]

        status, rendered = daemon.get("/render/json")
        assert status == 200
        assert rendered["stats"]["num_views"] == 3

        status, stats = daemon.get("/stats")
        assert stats["ingest"]["duplicate"] == 2
        assert stats["store"]["entries"] == 3

        exit_code = daemon.terminate()
        assert exit_code == 0
        assert any("shutting down" in line for line in daemon.lines)
    finally:
        daemon.kill()


def test_sigterm_during_preload_exits_clean(corpus, tmp_path):
    # a SIGTERM that lands while the preload batch is still extracting
    # must abort the load and exit 0 — and because preload is never
    # journaled, the journal must come back empty (nothing half-applied)
    journal_dir = tmp_path / "journal"
    plan = faults.FaultPlan(seed=0, delays={"batcher.refresh": 6.0})
    daemon = Daemon(
        "--journal-dir",
        str(journal_dir),
        corpus=corpus,
        env={faults.ENV_VAR: plan.to_env()},
        wait_ready=False,
    )
    try:
        # give the child time to install signal handlers and enter the
        # (fault-delayed) preload refresh, then interrupt it
        time.sleep(1.5)
        assert daemon.process.poll() is None, "daemon died during boot"
        exit_code = daemon.terminate(timeout=30)
        assert exit_code == 0
        assert any("shutting down" in line for line in daemon.lines)
        assert not any("preloaded" in line for line in daemon.lines)
        assert not any("serving on" in line for line in daemon.lines)
        with IngestJournal(str(journal_dir)) as journal:
            assert journal.replay_entries() == []
            assert journal.applied_offset < 0  # no entry ever marked applied
    finally:
        daemon.kill()


def test_daemon_survives_bad_requests_and_404s(corpus):
    daemon = Daemon(corpus=corpus)
    try:
        with pytest.raises(urllib.error.HTTPError) as error:
            daemon.get("/render/pdf")
        assert error.value.code == 404
        status, payload = daemon.post(
            "/extract", {"bad": "CREATE VIEW bad AS SELEKT"}
        )
        assert status == 200
        assert payload["statements"][0]["status"] == "quarantined"
        status, quarantine = daemon.get("/quarantine")
        assert status == 200
        assert [entry["name"] for entry in quarantine["entries"]] == ["bad"]
        status, _ = daemon.get("/health")
        assert status == 200
        assert daemon.terminate() == 0
    finally:
        daemon.kill()
