"""The `/impact` selector surface and the new render formats over HTTP."""

from tests.server.test_app import V1, V2, _json, _request, _with_app


async def _preloaded(app):
    await app.preload({"v1": V1, "v2": V2})


class TestLegacyColumnQueries:
    def test_known_column_shape_preserved(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(host, port, "GET", "/impact?column=t1.a")
            assert status == 200
            assert payload["start"] == "t1.a"
            assert payload["impacted_tables"] == ["v1", "v2"]
            assert payload["snapshot_version"] == 1

        _with_app(check)

    def test_unknown_column_is_404_with_hint(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(host, port, "GET", "/impact?column=t1.aa")
            assert status == 404
            assert "unknown column 't1.aa'" in payload["error"]
            assert "t1.a" in payload["error"]  # nearest-name hint

        _with_app(check)

    def test_unknown_table_is_404(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(host, port, "GET", "/impact?column=tt.x")
            assert status == 404
            assert "unknown column" in payload["error"]

        _with_app(check)

    def test_max_depth_limits_legacy_queries(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?column=t1.a&max_depth=1"
            )
            assert status == 200
            assert payload["impacted_tables"] == ["v1"]

        _with_app(check)

    def test_bad_max_depth_is_400(self):
        async def check(app, host, port):
            await _preloaded(app)
            for bad in ("abc", "0", "-2"):
                status, payload = await _json(
                    host, port, "GET", f"/impact?column=t1.a&max_depth={bad}"
                )
                assert status == 400, bad
                assert "max_depth" in payload["error"]

        _with_app(check)


class TestSelectorQueries:
    def test_urlencoded_plus_prefix(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?selector=%2Bv2.a"
            )
            assert status == 200
            assert payload["selector"] == "+v2.a"
            tables = payload["upstream"]["impacted_tables"]
            assert tables == ["t1", "v1"]
            assert "downstream" not in payload

        _with_app(check)

    def test_literal_plus_survives_query_decoding(self):
        # parse_qs turns a raw "+" into a space; the handler must map
        # leading/trailing spaces back to pluses
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?selector=+v1.*+"
            )
            assert status == 200
            assert payload["selector"] == "+v1.*+"
            assert payload["upstream"]["impacted_tables"] == ["t1"]
            assert payload["downstream"]["impacted_tables"] == ["v2"]

        _with_app(check)

    def test_wildcard_and_max_depth(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?selector=t1.a%2B&max_depth=1"
            )
            assert status == 200
            assert payload["downstream"]["impacted_tables"] == ["v1"]

        _with_app(check)

    def test_malformed_selector_is_400(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?selector=%2B%2B"
            )
            assert status == 400
            assert "selector" in payload["error"]

        _with_app(check)

    def test_unknown_selector_column_is_404(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?selector=v1.zz%2B"
            )
            assert status == 404
            assert "unknown column" in payload["error"]

        _with_app(check)

    def test_selector_results_come_from_snapshot(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, payload = await _json(
                host, port, "GET", "/impact?selector=%2Bv2.a"
            )
            assert status == 200
            assert payload["snapshot_version"] == 1

        _with_app(check)


class TestNewRenderFormats:
    def test_mermaid_over_http(self):
        async def check(app, host, port):
            await _preloaded(app)
            status, headers, body = await _request(
                host, port, "GET", "/render/mermaid"
            )
            assert status == 200
            assert headers["content-type"] == "text/vnd.mermaid; charset=utf-8"
            assert body.decode().startswith("flowchart LR")

        _with_app(check)

    def test_openlineage_over_http(self):
        import json

        async def check(app, host, port):
            await _preloaded(app)
            status, headers, body = await _request(
                host, port, "GET", "/render/openlineage"
            )
            assert status == 200
            assert headers["content-type"] == "application/json; charset=utf-8"
            events = json.loads(body)
            assert [event["job"]["name"] for event in events] == ["v1", "v2"]

        _with_app(check)
