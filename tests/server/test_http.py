"""The minimal HTTP layer: parsing, responses, protocol edge cases."""

import asyncio
import json

import pytest

from repro.server.http import (
    MAX_BODY_BYTES,
    BadRequestError,
    Request,
    Response,
    read_request,
)


def _parse(data):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class TestReadRequest:
    def test_get_with_query(self):
        request = _parse(
            b"GET /impact?column=web.page&direction=upstream HTTP/1.1\r\n"
            b"Host: localhost\r\n\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/impact"
        assert request.query == {"column": "web.page", "direction": "upstream"}
        assert request.body == b""
        assert request.keep_alive is True

    def test_percent_decoding_in_path(self):
        request = _parse(b"GET /render/json%20x HTTP/1.1\r\n\r\n")
        assert request.path == "/render/json x"

    def test_post_with_body(self):
        payload = json.dumps({"statements": {"v": "CREATE VIEW v AS SELECT 1 AS a"}})
        raw = (
            "POST /extract HTTP/1.1\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n" + payload
        ).encode()
        request = _parse(raw)
        assert request.method == "POST"
        assert request.json()["statements"]["v"].startswith("CREATE VIEW")

    def test_header_names_lowercased(self):
        request = _parse(b"GET / HTTP/1.1\r\nX-Custom-Header:  hi \r\n\r\n")
        assert request.headers["x-custom-header"] == "hi"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_http10_defaults_to_close(self):
        assert _parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive is False
        assert (
            _parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive
            is True
        )

    def test_connection_close_honoured(self):
        request = _parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_malformed_request_line_rejected(self):
        with pytest.raises(BadRequestError):
            _parse(b"NONSENSE\r\n\r\n")

    def test_non_http_version_rejected(self):
        with pytest.raises(BadRequestError):
            _parse(b"GET / SPDY/99\r\n\r\n")

    def test_truncated_head_rejected(self):
        with pytest.raises(BadRequestError):
            _parse(b"GET / HTTP/1.1\r\nHost: x")

    def test_bad_content_length_rejected(self):
        for value in (b"nope", b"-5"):
            with pytest.raises(BadRequestError):
                _parse(b"GET / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\n")

    def test_oversized_body_rejected(self):
        raw = f"POST / HTTP/1.1\r\nContent-Length: {MAX_BODY_BYTES + 1}\r\n\r\n"
        with pytest.raises(BadRequestError):
            _parse(raw.encode())

    def test_chunked_encoding_rejected(self):
        with pytest.raises(BadRequestError):
            _parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(BadRequestError):
            _parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")


class TestResponse:
    def test_encode_has_content_length_and_connection(self):
        wire = Response(200, b"hello").encode(keep_alive=True)
        head, _, body = wire.partition(b"\r\n\r\n")
        assert body == b"hello"
        assert b"Content-Length: 5" in head
        assert b"Connection: keep-alive" in head
        assert Response(200).encode(keep_alive=False).startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: close" in Response(200).encode(keep_alive=False)

    def test_json_sorts_keys(self):
        response = Response.json({"b": 1, "a": 2})
        assert response.body == b'{"a": 2, "b": 1}\n'
        assert response.content_type.startswith("application/json")

    def test_error_envelope(self):
        response = Response.error(404, "missing")
        assert response.status == 404
        assert json.loads(response.body) == {"error": "missing"}

    def test_bad_json_body_raises(self):
        request = Request("POST", "/", {}, {}, b"not-json", True)
        with pytest.raises(BadRequestError):
            request.json()
