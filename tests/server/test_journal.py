"""The write-ahead journal: durability, torn tails, checkpoints, compaction."""

import json
import os

import pytest

from repro.server.journal import (
    IngestJournal,
    JournalWriteError,
    _entry_crc,
    _segment_name,
)

E1 = ("v1", "CREATE VIEW v1 AS SELECT a FROM t1", "hash-v1")
E2 = ("v2", "CREATE VIEW v2 AS SELECT a FROM v1", "hash-v2")
E3 = ("v3", "CREATE VIEW v3 AS SELECT a FROM v2", "hash-v3")


class TestAppendReplay:
    def test_round_trip(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            offsets = journal.append_batch([E1, E2])
            assert offsets == [0, 1]
            assert journal.next_offset == 2
        # a fresh instance (the restarted daemon) sees the same entries
        with IngestJournal(tmp_path) as journal:
            assert journal.replay_entries() == [
                (0, *E1),
                (1, *E2),
            ]
            assert journal.next_offset == 2

    def test_offsets_are_monotonic_across_batches_and_restarts(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            assert journal.append_batch([E1]) == [0]
            assert journal.append_batch([E2]) == [1]
        with IngestJournal(tmp_path) as journal:
            assert journal.append_batch([E3]) == [2]
            assert [offset for offset, *_ in journal.replay_entries()] == [0, 1, 2]

    def test_empty_batch_is_a_noop(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            assert journal.append_batch([]) == []
            assert journal.appended == 0
            assert journal.replay_entries() == []

    def test_segment_rotation(self, tmp_path):
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            journal.append_batch([E1, E2])
            journal.append_batch([E3])
            segments = [
                name for name in os.listdir(tmp_path) if name.startswith("segment-")
            ]
            assert sorted(segments) == [_segment_name(0), _segment_name(2)]
            assert len(journal.replay_entries()) == 3

    def test_unicode_sql_survives(self, tmp_path):
        entry = ("vü", "CREATE VIEW vü AS SELECT 'é\n' FROM t1", "hash-ü")
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([entry])
        with IngestJournal(tmp_path) as journal:
            assert journal.replay_entries() == [(0, *entry)]


class TestTornTail:
    def test_torn_final_line_is_discarded(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1, E2])
        path = tmp_path / _segment_name(0)
        text = path.read_text()
        # simulate a crash mid-append: cut the last line in half
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        with IngestJournal(tmp_path) as journal:
            assert journal.replay_entries() == [(0, *E1)]
            # the torn entry was never acknowledged (the fsync did not
            # complete), so its offset is free to be reused
            assert journal.append_batch([E3]) == [1]

    def test_corrupted_crc_ends_the_segment(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1, E2, E3])
        path = tmp_path / _segment_name(0)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["s"] = "CREATE VIEW v2 AS SELECT tampered FROM v1"  # CRC now wrong
        lines[1] = json.dumps(record, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with IngestJournal(tmp_path) as journal:
            # nothing after a failed check is trustworthy: only E1 survives
            assert journal.replay_entries() == [(0, *E1)]

    def test_crc_is_content_addressed(self):
        assert _entry_crc(0, "v1", "h", "SELECT 1") != _entry_crc(
            0, "v1", "h", "SELECT 2"
        )
        assert _entry_crc(0, "v1", "h", "SELECT 1") != _entry_crc(
            1, "v1", "h", "SELECT 1"
        )


class _TornHandle:
    """Wraps a segment handle: the first write persists only half its
    bytes and then fails, like ENOSPC mid-flush."""

    def __init__(self, handle):
        self.inner = handle
        self.armed = True
        self.fail_truncate = False

    def write(self, data):
        if self.armed:
            self.armed = False
            self.inner.write(data[: len(data) // 2])
            raise OSError("no space left on device")
        return self.inner.write(data)

    def truncate(self, size=None):
        if self.fail_truncate:
            raise OSError("truncate failed")
        return self.inner.truncate(size)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestTornTailRepair:
    def test_partial_append_failure_keeps_later_entries_replayable(
        self, tmp_path
    ):
        # torn bytes from a failed append must not sit in front of later
        # fsync'd (acknowledged!) entries — replay stops a segment at the
        # first invalid line, so the tail must be cut back first
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1])
            journal._handle = _TornHandle(journal._handle)
            with pytest.raises(JournalWriteError):
                journal.append_batch([E2])
            assert journal.append_batch([E3]) == [1]
        with IngestJournal(tmp_path) as journal:
            assert journal.replay_entries() == [(0, *E1), (1, *E3)]

    def test_unrepairable_segment_is_abandoned_not_reused(self, tmp_path):
        # when even the truncate fails, the segment is abandoned and the
        # offsets the torn batch could have claimed are skipped, so a
        # half-written line can never collide with an acknowledged entry
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1])
            torn = _TornHandle(journal._handle)
            torn.fail_truncate = True
            journal._handle = torn
            with pytest.raises(JournalWriteError):
                journal.append_batch([E2])
            assert journal.append_batch([E3]) == [2]  # fresh segment
        with IngestJournal(tmp_path) as journal:
            entries = journal.replay_entries()
            assert (0, *E1) in entries
            assert (2, *E3) in entries
            assert journal.next_offset == 3


class TestQuarantineMarks:
    GOOD = ("v1", "CREATE VIEW v1 AS SELECT a FROM t1", "hash-good")
    POISON = ("v1", "CREATE VIEW v1 AS SELEKT", "hash-poison")

    def test_marked_offsets_are_excluded_from_replay(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([self.GOOD])
            journal.append_batch([self.POISON])
            assert journal.mark_quarantined([1]) == [1]
            assert journal.replay_entries() == [(0, *self.GOOD)]
        # the tombstone is durable: a restarted daemon skips it too
        with IngestJournal(tmp_path) as journal:
            assert journal.replay_entries() == [(0, *self.GOOD)]
            assert journal.quarantined_offsets() == {1}

    def test_marking_is_idempotent(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([self.GOOD, self.POISON])
            assert journal.mark_quarantined([1]) == [1]
            assert journal.mark_quarantined([1]) == []
            assert journal.stats()["quarantined_offsets"] == 1

    def test_compaction_keeps_the_last_published_definition(self, tmp_path):
        # the poison redefinition postdates the good one; tombstoned, it
        # must lose latest-per-name to the good entry instead of
        # permanently discarding it (the crash-recovery data-loss bug)
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            journal.append_batch([self.GOOD, ("v2", "SELECT 2", "h2")])
            journal.append_batch([self.POISON, ("v3", "SELECT 5", "h5")])
            journal.append_batch([("v4", "SELECT 6", "h6")])
            journal.mark_quarantined([2])
            journal.checkpoint(3)
            assert journal.compactions == 1
            assert journal.replay_entries() == [
                (0, *self.GOOD),
                (1, "v2", "SELECT 2", "h2"),
                (3, "v3", "SELECT 5", "h5"),
                (4, "v4", "SELECT 6", "h6"),
            ]
            # the compacted-away tombstone was garbage-collected with it
            assert journal.quarantined_offsets() == set()

    def test_stale_mark_never_blocks_a_reused_offset(self, tmp_path):
        # a mark can outlive its entry (GC is best-effort); next_offset
        # must clear the marks so a fresh entry never lands on a marked
        # offset and silently vanishes from replay
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([self.GOOD])
            journal.mark_quarantined([5])
        with IngestJournal(tmp_path) as journal:
            assert journal.next_offset == 6
            assert journal.append_batch([("v9", "SELECT 9", "h9")]) == [6]
            assert (6, "v9", "SELECT 9", "h9") in journal.replay_entries()

    def test_torn_mark_line_is_skipped_not_fatal(self, tmp_path):
        # mark lines are independent records: a torn line is dropped
        # without discarding the marks after it
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([self.GOOD])
            journal.append_batch([self.POISON])
            journal.mark_quarantined([1])
        marks = tmp_path / "quarantined.jsonl"
        marks.write_text('{"q": 0' + "\n" + marks.read_text())
        with IngestJournal(tmp_path) as journal:
            assert journal.quarantined_offsets() == {1}
            assert journal.replay_entries() == [(0, *self.GOOD)]


class TestCheckpoint:
    def test_checkpoint_round_trips(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1, E2])
            assert journal.applied_offset == -1
            journal.checkpoint(1)
            assert journal.applied_offset == 1
        with IngestJournal(tmp_path) as journal:
            assert journal.applied_offset == 1

    def test_checkpoint_never_regresses(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1, E2])
            journal.checkpoint(1)
            journal.checkpoint(0)  # stale publish completion: ignored
            assert journal.applied_offset == 1

    def test_corrupt_checkpoint_degrades_to_unapplied(self, tmp_path):
        with IngestJournal(tmp_path) as journal:
            journal.append_batch([E1])
            journal.checkpoint(0)
        (tmp_path / "checkpoint.json").write_text("{not json")
        with IngestJournal(tmp_path) as journal:
            assert journal.applied_offset == -1  # replay everything: safe


class TestCompaction:
    def _fill(self, journal):
        # v1 redefined three times across segments; only the last matters
        journal.append_batch([("v1", "SELECT 1", "h1"), ("v2", "SELECT 2", "h2")])
        journal.append_batch([("v1", "SELECT 3", "h3"), ("v1", "SELECT 4", "h4")])
        journal.append_batch([("v3", "SELECT 5", "h5")])

    def test_applied_segments_fold_to_latest_per_name(self, tmp_path):
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            self._fill(journal)
            assert journal.stats()["segments"] == 3
            journal.checkpoint(3)  # segments [0,1] and [2,3] fully applied
            assert journal.compactions == 1
            entries = journal.replay_entries()
            # v1's dead redefinitions are gone; offsets are preserved
            assert entries == [
                (1, "v2", "SELECT 2", "h2"),
                (3, "v1", "SELECT 4", "h4"),
                (4, "v3", "SELECT 5", "h5"),
            ]
            # the active segment was untouched
            assert journal.next_offset == 5
            assert journal.append_batch([("v4", "SELECT 6", "h6")]) == [5]

    def test_active_segment_is_never_compacted(self, tmp_path):
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            journal.append_batch([("v1", "SELECT 1", "h1"), ("v1", "SELECT 2", "h2")])
            journal.checkpoint(5)  # beyond everything, but only one closed segment
            assert journal.compactions == 0
            assert len(journal.replay_entries()) == 2

    def test_crash_between_rename_and_unlink_replays_each_offset_once(
        self, tmp_path, monkeypatch
    ):
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            self._fill(journal)
            # crash injection: the compacted segment lands, the superseded
            # segments are never unlinked
            monkeypatch.setattr(IngestJournal, "_unlink", staticmethod(lambda path: None))
            journal.checkpoint(3)
        with IngestJournal(tmp_path) as journal:
            # the compacted segment AND its superseded sources coexist
            assert journal.stats()["segments"] == 4
            entries = journal.replay_entries()
            assert [offset for offset, *_ in entries] == sorted(
                {offset for offset, *_ in entries}
            )
            # the original (pre-compaction) entries win on overlap, which
            # is byte-identical after replay anyway; every offset is here
            assert {offset for offset, *_ in entries} == {0, 1, 2, 3, 4}

    def test_restart_mid_history_appends_after_compaction(self, tmp_path):
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            self._fill(journal)
            journal.checkpoint(3)
        with IngestJournal(tmp_path, segment_max_entries=2) as journal:
            assert journal.next_offset == 5
            journal.append_batch([("v4", "SELECT 6", "h6")])
            assert journal.replay_entries()[-1] == (5, "v4", "SELECT 6", "h6")


class TestFailureSurface:
    def test_fsync_failure_raises_journal_error(self, tmp_path, monkeypatch):
        def broken_fsync(fd):
            raise OSError("disk gone")

        with IngestJournal(tmp_path) as journal:
            monkeypatch.setattr("repro.server.journal.os.fsync", broken_fsync)
            with pytest.raises(JournalWriteError):
                journal.append_batch([E1])

    def test_stats_shape(self, tmp_path):
        with IngestJournal(tmp_path, fsync=False) as journal:
            journal.append_batch([E1])
            stats = journal.stats()
            assert stats["next_offset"] == 1
            assert stats["applied_offset"] == -1
            assert stats["entries_on_disk"] == 1
            assert stats["appended"] == 1
            assert stats["segments"] == 1
            assert stats["compactions"] == 0
            assert stats["fsync"] is False
