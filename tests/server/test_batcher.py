"""The ingest batcher: hash dedupe, coalescing, failure atomicity."""

import asyncio

import pytest

from repro.core.lineage import LineageGraph
from repro.output.registry import render
from repro.server.batcher import ExtractionFailed, IngestBatcher, statement_hash
from repro.server.journal import IngestJournal, JournalWriteError
from repro.server.snapshot import SnapshotManager
from repro.session import LineageSession

V1 = "CREATE VIEW v1 AS SELECT a, b FROM t1"
V2 = "CREATE VIEW v2 AS SELECT a FROM v1"
V1_ALT = "CREATE VIEW v1 AS SELECT b FROM t1"
# a dbt-style passthrough model: the mapping key names a bare SELECT, so
# the same text can legitimately define two different views
PASSTHROUGH = "SELECT a, b FROM t1"


def _run(coro):
    return asyncio.run(coro)


async def _make():
    session = LineageSession()
    snapshots = SnapshotManager(LineageGraph())
    batcher = IngestBatcher(session, snapshots, batch_window=0.005)
    batcher.start()
    return session, snapshots, batcher


class TestStatementHash:
    def test_is_content_addressed(self):
        assert statement_hash(V1) == statement_hash(V1)
        assert statement_hash(V1) != statement_hash(V1 + " ")


class TestDedupe:
    def test_repeat_submission_is_a_duplicate(self):
        async def go():
            _, snapshots, batcher = await _make()
            first = await batcher.submit({"v1": V1})
            assert [row["status"] for row in first["statements"]] == ["extracted"]
            assert first["snapshot_version"] == 1

            second = await batcher.submit({"v1": V1})
            assert [row["status"] for row in second["statements"]] == ["duplicate"]
            # the duplicate never reached the parser: no new batch, no
            # new snapshot generation
            assert batcher.counters["batches"] == 1
            assert snapshots.version == 1
            await batcher.stop()

        _run(go())

    def test_duplicate_only_request_skips_extraction_entirely(self):
        async def go():
            session, _, batcher = await _make()
            await batcher.submit({"v1": V1})
            before = session.result
            await batcher.submit({"v1": V1})
            assert session.result is before  # refresh() was never called
            await batcher.stop()

        _run(go())

    def test_mixed_request_extracts_only_the_novel_part(self):
        async def go():
            _, _, batcher = await _make()
            await batcher.submit({"v1": V1})
            result = await batcher.submit({"v1": V1, "v2": V2})
            statuses = {row["name"]: row["status"] for row in result["statements"]}
            assert statuses == {"v1": "duplicate", "v2": "extracted"}
            assert batcher.counters["batches"] == 2
            await batcher.stop()

        _run(go())

    def test_concurrent_identical_requests_coalesce(self):
        async def go():
            _, snapshots, batcher = await _make()
            results = await asyncio.gather(
                *(batcher.submit({"v1": V1}) for _ in range(4))
            )
            statuses = sorted(
                row["status"] for result in results for row in result["statements"]
            )
            assert statuses == ["coalesced", "coalesced", "coalesced", "extracted"]
            # one extraction served all four callers
            assert batcher.counters["extracted"] == 1
            assert batcher.counters["coalesced"] == 3
            assert batcher.counters["batches"] == 1
            assert snapshots.version == 1
            await batcher.stop()

        _run(go())

    def test_identical_text_under_two_names_extracts_both(self):
        # dedupe keys on (name, text), not text alone: two passthrough
        # models sharing the same SELECT are two distinct views and both
        # must land in the graph
        async def go():
            _, snapshots, batcher = await _make()
            result = await batcher.submit(
                {"m1": PASSTHROUGH, "m2": PASSTHROUGH}
            )
            statuses = {row["name"]: row["status"] for row in result["statements"]}
            assert statuses == {"m1": "extracted", "m2": "extracted"}
            assert snapshots.current().stats["num_views"] == 2
            # an exact (name, text) repeat is still the cheap path
            again = await batcher.submit({"m2": PASSTHROUGH})
            assert again["statements"][0]["status"] == "duplicate"
            await batcher.stop()

        _run(go())

    def test_known_text_under_a_new_name_still_extracts(self):
        async def go():
            _, snapshots, batcher = await _make()
            await batcher.submit({"m1": PASSTHROUGH})
            second = await batcher.submit({"m2": PASSTHROUGH})
            assert second["statements"][0]["status"] == "extracted"
            assert snapshots.current().stats["num_views"] == 2
            await batcher.stop()

        _run(go())

    def test_redefinition_retires_the_old_hash(self):
        async def go():
            _, _, batcher = await _make()
            await batcher.submit({"v1": V1})
            redefined = await batcher.submit({"v1": V1_ALT})
            assert redefined["statements"][0]["status"] == "extracted"
            # the original text is no longer "known": resubmitting it must
            # extract again, not be answered from stale bookkeeping
            back = await batcher.submit({"v1": V1})
            assert back["statements"][0]["status"] == "extracted"
            await batcher.stop()

        _run(go())


class TestSnapshots:
    def test_each_batch_publishes_a_new_generation(self):
        async def go():
            _, snapshots, batcher = await _make()
            await batcher.submit({"v1": V1})
            await batcher.submit({"v2": V2})
            assert snapshots.version == 2
            snapshot = snapshots.current()
            assert snapshot.statement_names == ("v1", "v2")
            assert snapshot.stats["num_views"] == 2
            await batcher.stop()

        _run(go())

    def test_old_snapshot_survives_later_batches(self):
        async def go():
            _, snapshots, batcher = await _make()
            await batcher.submit({"v1": V1})
            pinned = snapshots.current()
            edges_before = render(pinned.graph, "csv")
            await batcher.submit({"v2": V2})
            assert render(pinned.graph, "csv") == edges_before
            assert snapshots.current() is not pinned
            await batcher.stop()

        _run(go())


class TestFailureDomain:
    def test_bad_statement_quarantines_and_leaves_state_intact(self):
        async def go():
            _, snapshots, batcher = await _make()
            await batcher.submit({"v1": V1})
            result = await batcher.submit(
                {"broken": "CREATE VIEW broken AS SELEKT"}
            )
            # poison is not an exception: the request resolves with a
            # per-statement quarantined row carrying a structured error
            row = result["statements"][0]
            assert row["status"] == "quarantined"
            assert row["error"]["type"]
            assert row["retry_after_seconds"] > 0
            assert snapshots.version == 1  # snapshot unchanged
            assert batcher.counters["quarantined"] == 1
            # the failed hash was not adopted: the pair is quarantined,
            # and a resubmission inside the backoff window is rejected
            # up front without burning another parse
            again = await batcher.submit(
                {"broken": "CREATE VIEW broken AS SELEKT"}
            )
            assert again["statements"][0]["status"] == "quarantined"
            assert batcher.counters["quarantine_blocked"] == 1
            assert batcher.counters["quarantined"] == 1  # no second parse
            # and the daemon still ingests fine afterwards
            ok = await batcher.submit({"v2": V2})
            assert ok["statements"][0]["status"] == "extracted"
            assert snapshots.version == 2
            await batcher.stop()

        _run(go())

    def test_poison_in_a_mixed_batch_publishes_the_rest(self):
        async def go():
            _, snapshots, batcher = await _make()
            result = await asyncio.wait_for(
                batcher.submit(
                    {
                        "v1": V1,
                        "broken_a": "CREATE VIEW broken_a AS SELEKT",
                        "v2": V2,
                        "broken_b": "CREATE VIEW broken_b AS ,,,",
                    }
                ),
                timeout=10,
            )
            statuses = {row["name"]: row["status"] for row in result["statements"]}
            assert statuses == {
                "v1": "extracted",
                "broken_a": "quarantined",
                "v2": "extracted",
                "broken_b": "quarantined",
            }
            assert result["quarantined"] == 2
            assert len(batcher.quarantine) == 2
            # the survivors published
            snapshot = snapshots.current()
            assert "v1" in snapshot.statement_names
            assert "v2" in snapshot.statement_names
            assert snapshot.stats["num_views"] == 2
            await batcher.stop()

        _run(go())

    def test_publish_failure_fails_the_batch_but_not_the_loop(self):
        # an exception past the refresh guard (snapshot install,
        # bookkeeping) must fail the waiting futures instead of killing
        # the ingest task and hanging every later submit()
        async def go():
            _, snapshots, batcher = await _make()
            original = snapshots.install

            def boom(snapshot):
                raise RuntimeError("publish exploded")

            snapshots.install = boom
            with pytest.raises(ExtractionFailed, match="publish exploded"):
                await batcher.submit({"v1": V1})
            assert snapshots.version == 0  # nothing published
            snapshots.install = original
            # the failed pair was not adopted and the loop is still alive
            ok = await asyncio.wait_for(batcher.submit({"v1": V1}), timeout=5)
            assert ok["statements"][0]["status"] == "extracted"
            assert snapshots.version == 1
            await batcher.stop()

        _run(go())

    def test_poison_redefinition_survives_crash_and_replay(self, tmp_path):
        # the journal append precedes extraction, so a poison
        # redefinition of a healthy name lands in the journal; recovery
        # must serve the name's last *published* definition, not collapse
        # last-wins onto the poison text and lose the name entirely
        async def first_life():
            journal = IngestJournal(tmp_path)
            session = LineageSession()
            snapshots = SnapshotManager(LineageGraph())
            batcher = IngestBatcher(
                session, snapshots, batch_window=0.005, journal=journal
            )
            batcher.start()
            good = await batcher.submit({"v1": V1})
            assert good["statements"][0]["status"] == "extracted"
            poison = await batcher.submit({"v1": "CREATE VIEW v1 AS SELEKT"})
            assert poison["statements"][0]["status"] == "quarantined"
            edges = render(snapshots.current().graph, "csv")
            await batcher.stop()
            journal.close()
            return edges

        async def second_life():
            journal = IngestJournal(tmp_path)
            # the poison offset was durably tombstoned before the "crash"
            assert journal.quarantined_offsets() == {1}
            session = LineageSession()
            snapshots = SnapshotManager(LineageGraph())
            batcher = IngestBatcher(
                session, snapshots, batch_window=0.005, journal=journal
            )
            batcher.start()
            assert await batcher.replay(journal.replay_entries()) == 1
            edges = render(snapshots.current().graph, "csv")
            await batcher.stop()
            journal.close()
            return edges

        edges_before_crash = _run(first_life())
        assert _run(second_life()) == edges_before_crash

    def test_replay_falls_back_when_the_poison_was_never_marked(
        self, tmp_path
    ):
        # a tombstone can be lost (crash between quarantine and mark):
        # replay then attempts the poison, re-quarantines it, and retries
        # the name with its next-most-recent journaled definition
        poison = "CREATE VIEW v1 AS SELEKT"
        with IngestJournal(tmp_path) as journal:
            journal.append_batch(
                [
                    ("v1", V1, statement_hash(V1)),
                    ("v2", V2, statement_hash(V2)),
                    ("v1", poison, statement_hash(poison)),
                ]
            )

        async def recover():
            journal = IngestJournal(tmp_path)
            session = LineageSession()
            snapshots = SnapshotManager(LineageGraph())
            batcher = IngestBatcher(
                session, snapshots, batch_window=0.005, journal=journal
            )
            batcher.start()
            # pass 1: {v1: poison, v2} — poison quarantines, v2 publishes;
            # pass 2: {v1: good} falls back and publishes
            assert await batcher.replay(journal.replay_entries()) == 3
            assert batcher.counters["quarantined"] == 1
            edges = render(snapshots.current().graph, "csv")
            await batcher.stop()
            journal.close()
            return edges

        async def reference():
            session = LineageSession()
            snapshots = SnapshotManager(LineageGraph())
            batcher = IngestBatcher(session, snapshots, batch_window=0.005)
            batcher.start()
            await batcher.submit({"v1": V1, "v2": V2})
            edges = render(snapshots.current().graph, "csv")
            await batcher.stop()
            return edges

        assert _run(recover()) == _run(reference())

    def test_unmarkable_quarantine_holds_the_checkpoint(self, tmp_path):
        # when the tombstone write fails, the checkpoint must stay below
        # the poison offset — across batches — or compaction could fold
        # away the fallback definition the mark was protecting
        async def go():
            journal = IngestJournal(tmp_path)
            session = LineageSession()
            snapshots = SnapshotManager(LineageGraph())
            batcher = IngestBatcher(
                session, snapshots, batch_window=0.005, journal=journal
            )
            batcher.start()
            await batcher.submit({"v1": V1})  # offset 0, checkpointed
            assert journal.applied_offset == 0

            def refuse(offsets):
                raise JournalWriteError("marks not durable")

            journal.mark_quarantined = refuse
            result = await batcher.submit(
                {"v1": "CREATE VIEW v1 AS SELEKT", "v2": V2}  # offsets 1, 2
            )
            statuses = {
                row["name"]: row["status"] for row in result["statements"]
            }
            assert statuses == {"v1": "quarantined", "v2": "extracted"}
            assert journal.applied_offset == 0  # clamped below the poison
            # a later healthy batch must NOT drag the checkpoint past the
            # still-unmarked offset...
            await batcher.submit({"v3": "CREATE VIEW v3 AS SELECT a FROM v2"})
            assert journal.applied_offset == 0
            # ...until marking recovers, after which it advances normally
            del journal.mark_quarantined  # restore the real method
            await batcher.submit({"v4": "CREATE VIEW v4 AS SELECT a FROM v2"})
            assert journal.quarantined_offsets() == {1}
            assert journal.applied_offset == 4
            await batcher.stop()
            journal.close()

        _run(go())

    def test_submit_after_stop_is_rejected(self):
        async def go():
            _, _, batcher = await _make()
            await batcher.submit({"v1": V1})
            await batcher.stop()
            with pytest.raises(RuntimeError):
                await batcher.submit({"v2": V2})

        _run(go())
