"""Shared subprocess harness for daemon tests.

Boots ``python -m repro serve`` as a real child process, parses the
readiness line for the ephemeral port, and exposes tiny HTTP helpers.
The crash-recovery suite passes ``env`` overrides (``REPRO_FAULTS``) to
arm deterministic fault injection inside the child.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class Daemon:
    """A `python -m repro serve` subprocess with readiness parsing."""

    def __init__(self, *args, corpus=None, env=None, wait_ready=True):
        child_env = dict(os.environ)
        child_env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        if env:
            child_env.update(env)
        command = [sys.executable, "-m", "repro", "serve"]
        if corpus:
            command.append(corpus)
        command += ["--port", "0", *args]
        self.process = subprocess.Popen(
            command,
            cwd=REPO_ROOT,
            env=child_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.lines = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()
        self.base = self._await_ready() if wait_ready else None

    def _drain(self):
        for line in self.process.stdout:
            self.lines.append(line.rstrip("\n"))

    def _await_ready(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if line.startswith("serving on "):
                    return line.split("serving on ", 1)[1]
            if self.process.poll() is not None:
                raise AssertionError(
                    "daemon exited before readiness: "
                    + "\n".join(self.lines)
                    + (self.process.stderr.read() or "")
                )
            time.sleep(0.02)
        raise AssertionError("daemon never announced readiness")

    def get(self, path):
        with urllib.request.urlopen(self.base + path, timeout=10) as response:
            return response.status, json.loads(response.read())

    def post(self, path, payload):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())

    def wait(self, timeout=30.0):
        """Wait for the child to exit on its own (fault-injected kill)."""
        self.process.wait(timeout=timeout)
        self._reader.join(timeout=5)
        return self.process.returncode

    def terminate(self, timeout=15.0):
        self.process.send_signal(signal.SIGTERM)
        self.process.wait(timeout=timeout)
        self._reader.join(timeout=5)
        return self.process.returncode

    def kill(self):
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)
