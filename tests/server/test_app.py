"""The daemon's endpoints, exercised in-process over real sockets."""

import asyncio
import json

from repro.server import LineageApp

V1 = "CREATE VIEW v1 AS SELECT a, b FROM t1"
V2 = "CREATE VIEW v2 AS SELECT a FROM v1"


async def _request(host, port, method, path, payload=None, headers=()):
    """One HTTP exchange on a fresh connection; returns (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        head = f"{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n"
        for name, value in headers:
            head += f"{name}: {value}\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    head_bytes, _, response_body = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    response_headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    return status, response_headers, response_body


async def _json(host, port, method, path, payload=None):
    status, _, body = await _request(host, port, method, path, payload)
    return status, json.loads(body)


def _with_app(test, **app_kwargs):
    async def go():
        app = LineageApp(batch_window=0.005, **app_kwargs)
        host, port = await app.start(port=0)
        try:
            await test(app, host, port)
        finally:
            await app.stop()

    asyncio.run(go())


class TestReadEndpoints:
    def test_health_before_any_ingest(self):
        async def check(app, host, port):
            status, payload = await _json(host, port, "GET", "/health")
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["snapshot_version"] == 0
            assert payload["relations"] == 0

        _with_app(check)

    def test_stats_shape(self):
        async def check(app, host, port):
            await app.preload({"v1": V1})
            status, payload = await _json(host, port, "GET", "/stats")
            assert status == 200
            assert payload["ingest"]["extracted"] == 1
            assert payload["snapshot"]["version"] == 1
            assert "csv" in payload["server"]["formats"]
            assert "store" not in payload  # no cache_dir configured

        _with_app(check)

    def test_stats_includes_per_shard_store_breakdown(self, tmp_path):
        async def check(app, host, port):
            await app.preload({"v1": V1, "v2": V2})
            _, payload = await _json(host, port, "GET", "/stats")
            store = payload["store"]
            assert store["entries"] == 2
            shards = store["per_shard"]
            assert len(shards) == 2
            assert sum(shard["entries"] for shard in shards) == 2
            assert all(shard["size_bytes"] > 0 for shard in shards)

        _with_app(check, cache_dir=str(tmp_path / "cache"), cache_shards=2)

    def test_impact_over_the_snapshot(self):
        async def check(app, host, port):
            await app.preload({"v1": V1, "v2": V2})
            status, payload = await _json(
                host, port, "GET", "/impact?column=t1.a"
            )
            assert status == 200
            assert payload["impacted_tables"] == ["v1", "v2"]
            assert {"table": "v2", "column": "a", "kind": "contribute"} in payload[
                "columns"
            ]

        _with_app(check)

    def test_impact_requires_column(self):
        async def check(app, host, port):
            status, payload = await _json(host, port, "GET", "/impact")
            assert status == 400
            assert "column" in payload["error"]
            status, _ = await _json(
                host, port, "GET", "/impact?column=t1.a&direction=sideways"
            )
            assert status == 400

        _with_app(check)

    def test_ordering_kinds(self):
        async def check(app, host, port):
            await app.preload({"v1": V1, "v2": V2})
            _, payload = await _json(host, port, "GET", "/ordering")
            assert payload == {
                "kind": "creation",
                "order": ["v1", "v2"],
                "snapshot_version": 1,
            }
            _, payload = await _json(host, port, "GET", "/ordering?kind=drop")
            assert payload["order"] == ["v2", "v1"]
            _, payload = await _json(host, port, "GET", "/ordering?kind=terminal")
            assert payload["order"] == ["v2"]
            _, payload = await _json(host, port, "GET", "/ordering?kind=roots")
            assert payload["order"] == ["t1"]
            status, _ = await _json(host, port, "GET", "/ordering?kind=nope")
            assert status == 400

        _with_app(check)

    def test_render_serves_registry_content_types(self):
        async def check(app, host, port):
            await app.preload({"v1": V1})
            status, headers, body = await _request(host, port, "GET", "/render/csv")
            assert status == 200
            assert headers["content-type"] == "text/csv; charset=utf-8"
            assert b"t1.a,v1.a,contribute" in body
            status, headers, body = await _request(host, port, "GET", "/render/json")
            assert headers["content-type"] == "application/json; charset=utf-8"
            assert json.loads(body)["stats"]["num_views"] == 1

        _with_app(check)

    def test_render_unknown_format_is_404(self):
        async def check(app, host, port):
            status, payload = await _json(host, port, "GET", "/render/pdf")
            assert status == 404
            assert "pdf" in payload["error"]

        _with_app(check)


class TestExtractEndpoint:
    def test_extract_then_duplicate(self):
        async def check(app, host, port):
            status, payload = await _json(
                host, port, "POST", "/extract", {"statements": {"v1": V1, "v2": V2}}
            )
            assert status == 200
            assert [row["status"] for row in payload["statements"]] == [
                "extracted",
                "extracted",
            ]
            assert payload["batch"]["extracted"] == 2
            status, payload = await _json(
                host, port, "POST", "/extract", {"v1": V1}
            )
            assert status == 200
            assert payload["statements"][0]["status"] == "duplicate"

        _with_app(check)

    def test_bare_mapping_body_accepted(self):
        async def check(app, host, port):
            status, payload = await _json(host, port, "POST", "/extract", {"v1": V1})
            assert status == 200
            assert payload["snapshot_version"] == 1

        _with_app(check)

    def test_bad_bodies_are_400(self):
        async def check(app, host, port):
            status, _ = await _json(host, port, "POST", "/extract", {})
            assert status == 400
            status, _ = await _json(host, port, "POST", "/extract", ["not", "a", "map"])
            assert status == 400
            status, _ = await _json(host, port, "POST", "/extract", {"v1": "   "})
            assert status == 400
            status, _, _ = await _request(
                host, port, "POST", "/extract",
                headers=[("Content-Length", "0")],
            )
            assert status == 400

        _with_app(check)

    def test_extraction_error_quarantines_and_state_survives(self):
        async def check(app, host, port):
            status, payload = await _json(
                host, port, "POST", "/extract", {"broken": "CREATE VIEW b AS SELEKT"}
            )
            # poison isolates to its statement: the request itself succeeds
            assert status == 200
            row = payload["statements"][0]
            assert row["status"] == "quarantined"
            assert "ParseError" in row["error"]["type"]
            assert row["retry_after_seconds"] > 0
            status, payload = await _json(host, port, "POST", "/extract", {"v1": V1})
            assert status == 200
            assert payload["snapshot_version"] == 1

        _with_app(check)


class TestProtocolSurface:
    def test_unknown_endpoint_is_404(self):
        async def check(app, host, port):
            status, _ = await _json(host, port, "GET", "/nope")
            assert status == 404

        _with_app(check)

    def test_method_mismatches_are_405(self):
        async def check(app, host, port):
            status, _ = await _json(host, port, "GET", "/extract")
            assert status == 405
            status, _ = await _json(host, port, "POST", "/health", {"x": 1})
            assert status == 405

        _with_app(check)

    def test_keep_alive_serves_multiple_requests(self):
        async def check(app, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _ in range(3):
                    writer.write(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    assert head.startswith(b"HTTP/1.1 200")
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    await reader.readexactly(length)
            finally:
                writer.close()
                await writer.wait_closed()

        _with_app(check)

    def test_head_omits_body_and_keeps_the_connection_usable(self):
        # a HEAD response must advertise the GET Content-Length but put
        # no body bytes on the wire: a compliant client will not read a
        # body, and leftover bytes would desync the next request on a
        # keep-alive connection
        async def check(app, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"HEAD /health HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200")
                length = int(
                    [
                        line.split(b":")[1]
                        for line in head.split(b"\r\n")
                        if line.lower().startswith(b"content-length")
                    ][0]
                )
                assert length > 0  # the GET body size is still advertised
                # without reading any body, the same connection must
                # serve the next request cleanly — this would fail if
                # HEAD had written body bytes
                writer.write(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                assert head.startswith(b"HTTP/1.1 200")
                get_length = int(
                    [
                        line.split(b":")[1]
                        for line in head.split(b"\r\n")
                        if line.lower().startswith(b"content-length")
                    ][0]
                )
                body = await reader.readexactly(get_length)
                assert json.loads(body)["status"] == "ok"
            finally:
                writer.close()
                await writer.wait_closed()

        _with_app(check)

    def test_malformed_wire_data_gets_400(self):
        async def check(app, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"THIS IS NOT HTTP\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            assert raw.startswith(b"HTTP/1.1 400")
            writer.close()
            await writer.wait_closed()

        _with_app(check)


class TestWarmSession:
    def test_app_over_an_extracted_session_serves_immediately(self):
        from repro.session import LineageSession

        async def go():
            session = LineageSession({"v1": V1})
            session.extract()
            app = LineageApp(session)
            host, port = await app.start(port=0)
            try:
                status, payload = await _json(host, port, "GET", "/health")
                assert payload["relations"] == 2  # t1 + v1
                _, payload = await _json(host, port, "GET", "/ordering")
                assert payload["order"] == ["v1"]
            finally:
                await app.stop()

        asyncio.run(go())
