"""Concurrent readers during refresh(): no torn reads, pinned generations.

The serving contract this file defends: a reader that grabbed a snapshot
works against that exact generation to completion no matter how many
refreshes land meanwhile, and a reader grabbing snapshots mid-refresh
only ever observes fully-published generations — never a half-applied
batch.
"""

import threading

from repro.core.lineage import FrozenGraphError, FrozenLineageGraph
from repro.output.registry import render
from repro.session import LineageSession

BASE = {
    "v_base": "CREATE VIEW v_base AS SELECT a, b FROM t1",
    "v_mid": "CREATE VIEW v_mid AS SELECT a FROM v_base",
}
# the probe view alternates between two definitions; every published
# generation must show exactly one of them, never a blend
PROBE_A = "CREATE VIEW probe AS SELECT a FROM v_base"
PROBE_B = "CREATE VIEW probe AS SELECT b FROM v_base"
EDGE_A = "v_base.a,probe.a,contribute"
EDGE_B = "v_base.b,probe.b,contribute"


def _probe_edges(graph):
    return [
        line
        for line in render(graph, "csv").splitlines()
        if line.split(",")[1].startswith("probe.")
    ]


class TestPinnedSnapshots:
    def test_snapshot_is_frozen_and_eagerly_indexed(self):
        session = LineageSession(BASE)
        session.extract()
        snapshot = session.snapshot()
        assert isinstance(snapshot, FrozenLineageGraph)
        assert snapshot.freeze() is snapshot

    def test_pre_refresh_snapshot_reads_the_old_graph_to_completion(self):
        session = LineageSession(BASE)
        session.extract()
        session.refresh(changes={"probe": PROBE_A})
        pinned = session.snapshot()
        before = render(pinned, "csv")
        for _ in range(5):
            session.refresh(changes={"probe": PROBE_B})
            session.refresh(changes={"probe": PROBE_A})
        # the pinned generation is byte-identical after 10 refreshes
        assert render(pinned, "csv") == before
        assert _probe_edges(pinned) == [EDGE_A]


class TestConcurrentReaders:
    def test_readers_iterating_during_refresh_see_no_torn_state(self):
        session = LineageSession(BASE)
        session.extract()
        session.refresh(changes={"probe": PROBE_A})

        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                snapshot = session.snapshot()
                edges = _probe_edges(snapshot)
                # a published generation shows exactly one probe definition
                if edges not in ([EDGE_A], [EDGE_B]):
                    failures.append(edges)
                    return
                # re-reading the SAME snapshot must be stable even if a
                # refresh lands between the two renders
                if _probe_edges(snapshot) != edges:
                    failures.append("unstable snapshot")
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for cycle in range(30):
                session.refresh(
                    changes={"probe": PROBE_B if cycle % 2 == 0 else PROBE_A}
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures

    def test_reader_threads_render_while_writers_refresh(self):
        session = LineageSession(BASE)
        session.extract()
        renders = []
        errors = []

        def reader():
            try:
                for _ in range(20):
                    snapshot = session.snapshot()
                    renders.append(render(snapshot, "json"))
            except Exception as error:  # noqa: BLE001 - recorded for assert
                errors.append(error)

        def writer(tag):
            try:
                for index in range(10):
                    session.refresh(
                        changes={
                            f"w_{tag}_{index}": (
                                f"CREATE VIEW w_{tag}_{index} AS SELECT a FROM v_base"
                            )
                        }
                    )
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        threads += [threading.Thread(target=writer, args=(tag,)) for tag in "xy"]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(renders) == 60
        # the final graph holds every writer's views
        final = session.snapshot()
        names = {entry.name for entry in final.views}
        assert {f"w_x_{i}" for i in range(10)} <= names
        assert {f"w_y_{i}" for i in range(10)} <= names


class TestFrozenGraphContract:
    def test_mutations_on_a_frozen_graph_raise(self):
        session = LineageSession(BASE)
        session.extract()
        frozen = session.snapshot()
        try:
            frozen.register_usage("v_base.a")
        except FrozenGraphError:
            pass
        else:
            raise AssertionError("register_usage on a frozen graph must raise")
