"""SIGKILL the daemon at randomized journal offsets; recovery must be exact.

The contract under test: every statement whose journal append was
acknowledged (fsync'd) survives a SIGKILL, and a restarted daemon —
journal replay plus client retries of unacknowledged work — reaches a
graph byte-identical to a daemon that was never killed.

The kill point is driven through the deterministic fault harness: the
child daemon is booted with ``REPRO_FAULTS`` carrying
``{"kill": {"site": "journal.append", "after": N}}``, which SIGKILLs the
process the instant the N-th journal entry becomes durable — the
worst-possible moment (acknowledged but not yet extracted).

Environment knobs (the CI chaos-smoke job uses both):

* ``CRASH_SEEDS`` — comma-separated seed list (default ``1,2,3,4,5``);
* ``CHAOS_ARTIFACT_DIR`` — on failure, the journal directory is copied
  there for post-mortem.
"""

import os
import random
import shutil
import urllib.error

import pytest

from repro.testing import faults

from _daemon import Daemon

# a corpus with real dependency structure: chains, fan-out, and a
# redefinition, so replay order and dedupe both matter
STATEMENTS = [
    ("v0", "CREATE VIEW v0 AS SELECT a, b, c FROM t0"),
    ("v1", "CREATE VIEW v1 AS SELECT a, b FROM v0"),
    ("v2", "CREATE VIEW v2 AS SELECT a FROM v1"),
    ("v3", "CREATE VIEW v3 AS SELECT b FROM v1"),
    ("v4", "CREATE VIEW v4 AS SELECT x, y FROM t1"),
    ("v5", "CREATE VIEW v5 AS SELECT x FROM v4"),
    ("v2", "CREATE VIEW v2 AS SELECT a, b FROM v1"),  # redefinition
    ("v6", "CREATE VIEW v6 AS SELECT a FROM v2"),
    ("v7", "CREATE VIEW v7 AS SELECT y FROM v4"),
    ("v8", "CREATE VIEW v8 AS SELECT a FROM v6"),
]

SEEDS = [
    int(seed)
    for seed in os.environ.get("CRASH_SEEDS", "1,2,3,4,5").split(",")
    if seed.strip()
]


def _ingest_all(daemon):
    """POST every statement, one request each; returns how many the
    daemon acknowledged before (possibly) dying."""
    acknowledged = 0
    for name, sql in STATEMENTS:
        try:
            status, _ = daemon.post("/extract", {name: sql})
        except (urllib.error.URLError, ConnectionError, OSError):
            break  # the daemon died mid-request (or is already gone)
        assert status == 200
        acknowledged += 1
    return acknowledged


def _graph(daemon):
    """The rendered graph, fully canonical: the byte-identity oracle."""
    status, payload = daemon.get("/render/json")
    assert status == 200
    return payload


@pytest.fixture(scope="module")
def reference_graph(tmp_path_factory):
    """The graph of an uninterrupted daemon over the same traffic."""
    journal = tmp_path_factory.mktemp("reference-journal")
    daemon = Daemon("--journal-dir", str(journal))
    try:
        assert _ingest_all(daemon) == len(STATEMENTS)
        return _graph(daemon)
    finally:
        daemon.kill()


def _preserve_artifacts(journal_dir, seed):
    target = os.environ.get("CHAOS_ARTIFACT_DIR")
    if not target:
        return
    destination = os.path.join(target, f"seed-{seed}")
    shutil.rmtree(destination, ignore_errors=True)
    shutil.copytree(str(journal_dir), destination)


@pytest.mark.parametrize("seed", SEEDS)
def test_sigkill_mid_ingest_recovers_byte_identical(
    seed, tmp_path, reference_graph
):
    journal_dir = tmp_path / "journal"
    # kill after a seed-chosen number of durable journal entries — never
    # after the last one, so the crash always interrupts real work
    kill_after = random.Random(seed).randint(1, len(STATEMENTS) - 1)
    plan = faults.FaultPlan(
        seed=seed, kill={"site": "journal.append", "after": kill_after}
    )
    victim = Daemon(
        "--journal-dir",
        str(journal_dir),
        env={faults.ENV_VAR: plan.to_env()},
    )
    try:
        acknowledged = _ingest_all(victim)
        assert victim.wait(timeout=30) == -9  # SIGKILL, not a clean exit
        # the daemon cannot have acknowledged more responses than
        # journal entries it survived writing
        assert acknowledged <= kill_after
    finally:
        victim.kill()

    # restart on the same journal (no fault plan): boot replay first,
    # then the client retries its whole submission — acknowledged
    # statements dedupe, unacknowledged ones extract now
    revived = Daemon("--journal-dir", str(journal_dir))
    try:
        assert _ingest_all(revived) == len(STATEMENTS)
        recovered = _graph(revived)
        try:
            assert recovered == reference_graph
        except AssertionError:
            _preserve_artifacts(journal_dir, seed)
            raise
        # replay really happened (the journal was not empty pre-boot):
        # exactly kill_after entries were durable, replayed as one
        # last-definition-wins batch
        expected_replayed = len({name for name, _ in STATEMENTS[:kill_after]})
        status, stats = revived.get("/stats")
        assert status == 200
        assert stats["ingest"]["replayed"] == expected_replayed
        assert revived.terminate() == 0
    finally:
        revived.kill()
