"""Shared fixtures for the benchmark harness."""

import pytest

from repro.core.runner import lineagex
from repro.datasets import example1, mimic, retail


@pytest.fixture(scope="session")
def example1_result():
    return lineagex(example1.QUERY_LOG)


@pytest.fixture(scope="session")
def retail_result():
    return lineagex(retail.FULL_SCRIPT)


@pytest.fixture(scope="session")
def mimic_script():
    return mimic.full_script(shuffle_seed=11)


@pytest.fixture(scope="session")
def mimic_result(mimic_script):
    return lineagex(mimic_script)
