"""ABL-STACK — ablation of the Table/View Auto-Inference stack.

DESIGN.md calls out the stack-based deferred processing as the design choice
to ablate: without it (``use_stack=False``), queries are processed in log
order and a ``SELECT *`` or unprefixed column over a not-yet-known view
cannot be resolved — exactly the failure mode of the prior tools in
Figure 2.  This benchmark quantifies what the stack buys on Example 1 and on
a shuffled MIMIC workload, and measures its runtime cost.
"""

import pytest

from repro.analysis.metrics import column_metrics, edge_metrics
from repro.core.runner import lineagex
from repro.datasets import example1, mimic

from _report import emit, table


def _run(script, use_stack):
    return lineagex(script, use_stack=use_stack)


@pytest.mark.parametrize("use_stack", [True, False], ids=["with-stack", "without-stack"])
def test_ablation_example1(benchmark, use_stack):
    result = benchmark(_run, example1.QUERY_LOG, use_stack)
    assert "info" in result.graph


@pytest.mark.parametrize("use_stack", [True, False], ids=["with-stack", "without-stack"])
def test_ablation_mimic_shuffled(benchmark, use_stack):
    script = mimic.full_script(shuffle_seed=11)
    result = benchmark(_run, script, use_stack)
    assert len(result.graph.views) >= 1


def test_ablation_report(benchmark):
    truth = example1.ground_truth()

    def wildcard_views(graph):
        return sum(1 for view in graph.views if "*" in view.output_columns)

    rows = []
    for label, use_stack in (("with stack", True), ("without stack (ablation)", False)):
        example_result = _run(example1.QUERY_LOG, use_stack)
        edge_report = edge_metrics(example_result.graph, truth)
        column_report = column_metrics(example_result.graph, truth)

        mimic_result = _run(mimic.full_script(shuffle_seed=11), use_stack)
        rows.append(
            (
                label,
                example_result.report.deferral_count,
                f"{column_report.recall:.2f}",
                f"{edge_report.recall:.2f}",
                wildcard_views(example_result.graph),
                wildcard_views(mimic_result.graph),
                len(mimic_result.report.unresolved),
            )
        )
    benchmark(lambda: _run(example1.QUERY_LOG, True))
    lines = table(
        [
            "configuration",
            "deferrals (ex.1)",
            "column recall (ex.1)",
            "edge recall (ex.1)",
            "wildcard views (ex.1)",
            "wildcard views (mimic, shuffled)",
            "unresolved (mimic)",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        "Disabling the stack reproduces the prior-tool failure modes: SELECT * over a"
    )
    lines.append(
        "later-defined view degrades to a wildcard and its column edges are lost."
    )
    emit("ablation_stack", "Ablation — Table/View Auto-Inference stack", lines)

    with_stack, without_stack = rows
    assert float(with_stack[2]) == 1.0 and float(with_stack[3]) == 1.0
    assert with_stack[4] == 0
    assert float(without_stack[3]) < 1.0
    assert without_stack[4] >= 1 or without_stack[5] > with_stack[5]
