"""TAB1 — The Table I keyword rules.

Table I of the paper defines how each SQL keyword updates the lineage state
(T, C_con, C_ref, C_pos, P, M_CTE).  This benchmark runs one targeted query
per keyword class and reports, for each, how often the corresponding rule
fired and what lineage it produced — i.e. it regenerates Table I with the
observed behaviour of the implementation, and times rule application on the
Example 1 workload.
"""

import pytest

from repro.core.extractor import (
    ALL_RULES,
    RULE_FROM_CTE,
    RULE_FROM_TABLE,
    RULE_OTHER,
    RULE_SELECT,
    RULE_SET_OPERATION,
    RULE_WITH,
    LineageExtractor,
)
from repro.core.preprocess import preprocess
from repro.datasets import example1

from _report import emit, table

#: One targeted query per Table I keyword class.
RULE_QUERIES = [
    (RULE_SELECT, "SELECT t.a, t.b + t.c AS s FROM t"),
    (RULE_FROM_TABLE, "SELECT x.a FROM first_table x JOIN second_table y ON x.k = y.k"),
    (RULE_FROM_CTE, "WITH c AS (SELECT t.a FROM t) SELECT c.a FROM c"),
    (RULE_WITH, "WITH c AS (SELECT t.a FROM t), d AS (SELECT c.a FROM c) SELECT d.a FROM d"),
    (RULE_SET_OPERATION, "SELECT t.a FROM t INTERSECT SELECT u.b FROM u"),
    (RULE_OTHER, "SELECT t.a FROM t JOIN u ON t.k = u.k WHERE u.flag GROUP BY t.a"),
]


def _extract_with_trace(sql, name="bench"):
    extractor = LineageExtractor(collect_trace=True)
    entry = list(preprocess(sql))[0]
    return extractor.extract(name, entry.query, declared_columns=entry.column_names)


@pytest.mark.parametrize("rule,sql", RULE_QUERIES, ids=[rule for rule, _ in RULE_QUERIES])
def test_tab1_rule_query(benchmark, rule, sql):
    lineage, trace = benchmark(_extract_with_trace, sql)
    assert trace.rule_counts()[rule] >= 1, f"expected the {rule!r} rule to fire"


def test_tab1_rule_firing_report(benchmark):
    def build_report():
        rows = []
        for rule, sql in RULE_QUERIES:
            lineage, trace = _extract_with_trace(sql)
            counts = trace.rule_counts()
            rows.append(
                (
                    rule,
                    counts[rule],
                    len(lineage.output_columns),
                    len(lineage.contributing_columns),
                    len(lineage.referenced),
                )
            )
        return rows

    rows = benchmark(build_report)
    lines = table(
        ["Table I rule", "firings", "#output cols", "|C_con|", "|C_ref|"], rows
    )

    # Rule firings over the whole Example 1 log (what the paper's Figure 4
    # traversal implies for Q3, extended to Q1-Q3).
    totals = {rule: 0 for rule in ALL_RULES}
    for entry in preprocess(example1.QUERY_LOG):
        _, trace = LineageExtractor(collect_trace=True).extract(
            entry.identifier, entry.query, declared_columns=entry.column_names
        )
        for rule, count in trace.rule_counts().items():
            totals[rule] += count
    lines.append("")
    lines.append("Rule firings across the Example 1 query log (Q1-Q3):")
    lines.extend(table(["rule", "total firings"], sorted(totals.items())))
    emit("tab1_keyword_rules", "Table I — keyword rules in action", lines)

    assert all(firings >= 1 for _, firings, _, _, _ in rows)
