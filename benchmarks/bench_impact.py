"""IMPACT — precomputed reachability index vs kind-tracking BFS.

The reachability index trades one build per graph version for
O(answer-size) impact queries.  This benchmark measures both sides of
that trade on the scale tier the index was built for:

* **query latency** — p50/p99 over *distinct* starts (repeating one
  start would measure the index's memo cache, not the index) on a
  100k-statement warehouse skewed toward the two worst-case topologies:
  ``deep_chain_probability`` (long dependency chains — the worst case
  for BFS hop count) and ``fanout_probability`` (one hub relation read
  by thousands of views — the worst case for answer size).  Indexed and
  BFS timings run over the same start set, split into a *deep* group
  (the largest spanning-tree spans, via ``ReachabilityIndex.
  deep_starts``) and a seeded *mixed* sample;
* **build cost** — the one-time price: full index construction time and
  the label/exception footprint from ``stats()``;
* **busy serving reads** — ``GET /impact`` p50/p99 against the daemon
  while a fresh corpus ingests, the same phase ``bench_serve.py``
  measures; the index is pinned into every published snapshot, so this
  must not regress against the committed ``BENCH_serve.json`` busy-read
  baseline.

Both sides are *warmed* before timing (the live graph's lazy adjacency
index and the frozen graph's pinned reachability index), so the numbers
compare query cost, not one-time lazy construction.

Gates (off-CI, or ``BENCH_STRICT=1``; never in quick mode):

* the deep group's most expensive BFS start — the mixed-kind hub whose
  kind-growth re-expansion makes the traversal blow up, i.e. the
  production tail query the index exists for — must answer at least
  **8x** faster from the index (same start, paired timings;
  ``speedup_worst``).  Observed is ~9-10x; the gate sits below the
  ±15% run-to-run spread that min-of-reps timing cannot remove, so a
  pass/fail flip always means a real regression.  Median-sized queries
  are reported but not gated: a warm Python BFS is within a few x of
  the index walk per answer column on sparse regions, and the group
  totals (``speedup_total``) ride on how many pathological starts the
  seeded topology produces;
* busy `/impact` p99 must stay within the serve benchmark's envelope:
  ``max(50 ms, 1.5 x BENCH_serve.json busy_read_p99_ms)``.

``BENCH_IMPACT_QUICK=1`` shrinks the corpus for the CI smoke job
(artifact upload only — no wall-clock gates).  Results land in
``benchmarks/results/impact.*`` and the committed trajectory file
``BENCH_impact.json``.
"""

import asyncio
import os
import random
import time

from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.server import LineageApp

from _report import emit, emit_json, emit_root_json, load_root_json, table
from bench_serve import _Client, _ingest, _percentile, _read_loop

QUICK = bool(os.environ.get("BENCH_IMPACT_QUICK"))
GATES_ON = not os.environ.get("CI") or os.environ.get("BENCH_STRICT")

SEED = 880
TIER = 2_000 if QUICK else 100_000
DEEP_CHAIN_PROBABILITY = 0.65
FANOUT_PROBABILITY = 0.05
DEEP_STARTS = 30 if QUICK else 120
MIXED_STARTS = 60 if QUICK else 250

SERVE_TIER = 80 if QUICK else 400
SERVE_READS = 10


def _build_graph():
    warehouse = workload.iter_warehouse(
        num_base_tables=max(10, TIER // 200),
        num_views=TIER,
        seed=SEED,
        deep_chain_probability=DEEP_CHAIN_PROBABILITY,
        fanout_probability=FANOUT_PROBABILITY,
    )
    runner = LineageXRunner(catalog=warehouse.catalog(), stream=True)
    started = time.perf_counter()
    result = runner.run(warehouse)
    extract_seconds = time.perf_counter() - started
    assert not result.report.unresolved
    return result.graph, extract_seconds


def _pick_starts(index, graph):
    """Distinct starts: worst-case deep chains plus a seeded mixed sample."""
    deep = index.deep_starts("downstream", limit=DEEP_STARTS)
    adjacency = graph.column_adjacency("downstream")
    pool = sorted(set(adjacency) - set(deep))
    rng = random.Random(SEED * 5 + 1)
    mixed = rng.sample(pool, min(MIXED_STARTS, len(pool)))
    return deep, mixed


QUERY_REPS = 1 if QUICK else 3


def _time_queries(graph, starts, method):
    """Best-of-``QUERY_REPS`` per-start latency of ``impact_analysis``.

    A single cold pass is a GC lottery: a generation-2 collection landing
    mid-query charges a ~100 ms pause to whichever start happens to be
    running, swamping the paired comparison.  The minimum over a few
    repetitions is the standard fix (each side keeps its own allocation
    work; only the pause lottery is excluded).  The index's partition
    memo is cleared between repetitions so every timing is a cold query.
    """
    from repro.analysis.impact import impact_analysis

    best = [float("inf")] * len(starts)
    answer = 0
    for _ in range(QUERY_REPS):
        index = graph.reachability(build=False)
        if index is not None:
            index._cache.clear()
        answer = 0
        for i, start in enumerate(starts):
            began = time.perf_counter()
            result = impact_analysis(graph, start, method=method)
            elapsed = time.perf_counter() - began
            if elapsed < best[i]:
                best[i] = elapsed
            answer += len(result.all_columns)
    return best, answer


def _query_metrics(graph, frozen, deep, mixed):
    # warm both traversal substrates so the timings below compare query
    # cost, not one-time lazy construction: the live graph's adjacency
    # index (BFS side) and the frozen graph's pinned reachability index
    # would otherwise land inside the first timed query
    graph.column_adjacency("downstream")
    frozen.reachability()
    metrics = {}
    for group, starts in (("deep", deep), ("mixed", mixed)):
        bfs_lat, bfs_answer = _time_queries(graph, starts, "bfs")
        idx_lat, idx_answer = _time_queries(frozen, starts, "auto")
        assert idx_answer == bfs_answer, (
            f"{group}: indexed answers diverge from BFS "
            f"({idx_answer} vs {bfs_answer} total columns)"
        )
        bfs_p50 = _percentile(bfs_lat, 0.50)
        idx_p50 = _percentile(idx_lat, 0.50)
        # the start whose BFS is slowest, paired with its own indexed
        # latency: the production tail query the index exists for
        worst = max(range(len(starts)), key=bfs_lat.__getitem__)
        metrics[group] = {
            "starts": len(starts),
            "mean_answer_columns": round(bfs_answer / max(1, len(starts)), 1),
            "bfs_p50_ms": round(bfs_p50 * 1000, 3),
            "bfs_p99_ms": round(_percentile(bfs_lat, 0.99) * 1000, 3),
            "bfs_worst_ms": round(bfs_lat[worst] * 1000, 3),
            "bfs_total_s": round(sum(bfs_lat), 3),
            "indexed_p50_ms": round(idx_p50 * 1000, 3),
            "indexed_p99_ms": round(_percentile(idx_lat, 0.99) * 1000, 3),
            "indexed_worst_ms": round(idx_lat[worst] * 1000, 3),
            "indexed_total_s": round(sum(idx_lat), 3),
            "speedup_p50": round(bfs_p50 / max(idx_p50, 1e-9), 1),
            "speedup_total": round(sum(bfs_lat) / max(sum(idx_lat), 1e-9), 1),
            # the gate metric: same-start speedup on the group's most
            # expensive BFS query
            "speedup_worst": round(bfs_lat[worst] / max(idx_lat[worst], 1e-9), 1),
        }
    return metrics


async def _bench_busy_serving(tmp_dir):
    """The serve benchmark's phase 3, isolated: /impact p99 during ingest."""
    warehouse = workload.generate_warehouse(
        num_base_tables=max(4, SERVE_TIER // 12), num_views=SERVE_TIER, seed=SEED
    )
    app = LineageApp(
        catalog=warehouse.catalog(),
        cache_dir=os.path.join(tmp_dir, "cache"),
        batch_window=0.002,
    )
    host, port = await app.start(port=0)
    try:
        client = _Client(host, port)
        await client.connect()
        await _ingest(client, warehouse.views)

        paths = [
            f"/impact?column={name}.{columns[0]}"
            for name, columns in warehouse.base_tables.items()
        ][:SERVE_READS]
        second = workload.generate_warehouse(
            num_base_tables=max(4, SERVE_TIER // 12),
            num_views=SERVE_TIER,
            seed=SEED + 1,
        )
        renamed = {
            f"b_{name}": sql.replace(name, f"b_{name}", 1)
            for name, sql in second.views.items()
        }
        latencies = []
        ingest_task = asyncio.ensure_future(_ingest(client, renamed))
        while not ingest_task.done():
            await _read_loop(host, port, paths, latencies)
        await ingest_task
        await client.close()
        return {
            "tier": SERVE_TIER,
            "busy_read_requests": len(latencies),
            "busy_read_p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "busy_read_p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
        }
    finally:
        await app.stop()


def test_impact_benchmark(tmp_path):
    graph, extract_seconds = _build_graph()

    started = time.perf_counter()
    frozen = graph.freeze()  # pins an eagerly built index
    build_seconds = time.perf_counter() - started
    index = frozen.reachability()

    deep, mixed = _pick_starts(index, frozen)
    queries = _query_metrics(graph, frozen, deep, mixed)
    serving = asyncio.run(_bench_busy_serving(str(tmp_path)))

    serve_trajectory = load_root_json("serve") or {}
    serve_baseline = (
        serve_trajectory.get("baseline", {}).get("busy_read_p99_ms")
        or serve_trajectory.get("view_tier", {}).get("busy_read_p99_ms")
    )
    busy_budget_ms = max(50.0, 1.5 * serve_baseline) if serve_baseline else 50.0

    payload = {
        "tier": {
            "statements": TIER,
            "deep_chain_probability": DEEP_CHAIN_PROBABILITY,
            "fanout_probability": FANOUT_PROBABILITY,
            "extract_seconds": round(extract_seconds, 2),
            "index_build_seconds": round(build_seconds, 3),
            "index": index.stats(),
        },
        "queries": queries,
        "serving": serving,
        "quick": QUICK,
        "gates": {
            "deep_speedup_worst_min": 8.0,
            "busy_read_p99_ms_max": round(busy_budget_ms, 3),
        },
        # pinned on first emit (emit_root_json keeps the existing value)
        "baseline": dict(queries),
    }
    emit_json("impact", payload)
    emit_root_json("impact", payload)

    rows = []
    for group, metrics in sorted(queries.items()):
        for key, value in sorted(metrics.items()):
            rows.append([group, key, value])
    emit(
        "impact",
        f"Impact queries @ {TIER} statements "
        f"({'quick' if QUICK else 'full'} scale)",
        table(["group", "metric", "value"], rows)
        + [
            "",
            f"index: {index.stats()}",
            f"index build: {round(build_seconds, 3)}s "
            f"(extraction: {round(extract_seconds, 2)}s)",
            f"busy serving: {serving}",
        ],
    )

    # correctness-side assertions always run
    assert queries["deep"]["mean_answer_columns"] > 10, (
        "the deep-start group found no deep chains; topology knobs are off"
    )
    assert serving["busy_read_requests"] > 0

    if GATES_ON and not QUICK:
        assert queries["deep"]["speedup_worst"] >= 8.0, (
            "the deep group's most expensive BFS start must answer at "
            "least 8x faster from the index, got "
            f"{queries['deep']['speedup_worst']}x "
            f"({queries['deep']['bfs_worst_ms']} ms BFS vs "
            f"{queries['deep']['indexed_worst_ms']} ms indexed)"
        )
        assert serving["busy_read_p99_ms"] < busy_budget_ms, (
            f"busy /impact p99 {serving['busy_read_p99_ms']} ms exceeds the "
            f"serve-benchmark envelope {busy_budget_ms} ms"
        )
