"""SCALE — the 100k-statement tier: throughput and peak RSS, cold and warm.

Every other benchmark in the trajectory gates at 400 views; this one runs
the scale tier the sharded store and streaming extraction were built for:
10k / 30k / 100k generated statements, cold and warm, with peak RSS
recorded per phase.

Each phase runs in its own **subprocess** (``python bench_scale.py
--child '<json>'``) so ``resource.getrusage().ru_maxrss`` — a high-water
mark that never resets within a process — is clean per measurement: the
cold run's AST population cannot inflate the warm run's reading, and the
materialized ablation arm cannot inflate the streaming arm's.

Artifacts:

* a per-tier report (``benchmarks/results/scale.*``);
* the committed trajectory file ``BENCH_scale.json`` at the repo root
  (cold/warm statements-per-second and peak RSS per tier, the
  streaming-vs-materialized memory ablation, and a shard-routed process
  executor measurement).  Its ``baseline`` section is pinned on first
  emit and never overwritten.

Gates (skipped on shared CI runners unless ``BENCH_STRICT=1``):

* **warm splice** — the warm run at the 10k tier must splice 100% from
  the store (structural — asserted everywhere) and be >= 2x faster than
  cold (wall-clock — gated);
* **memory budget** — streaming peak RSS at the 100k tier must stay
  under ``MEMORY_BUDGET_MB``;
* **ablation** — streaming extraction must peak below the
  materialize-everything path at the same scale.

``BENCH_SCALE_QUICK=1`` shrinks the tiers to ~1k/5k for the CI smoke
job (artifact upload only — no wall-clock or budget gates fire there).
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

from _report import REPO_ROOT, emit, emit_json, emit_root_json, table

SEED = 97
QUICK = bool(os.environ.get("BENCH_SCALE_QUICK"))
TIERS = [1_000, 5_000] if QUICK else [10_000, 30_000, 100_000]
#: the tier the warm-splice / warm-speedup gate is evaluated at (the
#: ISSUE names 10k; quick mode gates nothing, so its first tier only
#: anchors the ablation).
GATE_TIER = TIERS[0]
#: shard count for the scale runs — enough fan-out for parallel prefetch
#: without per-file overhead dominating at the small tiers.
SHARDS = 8
#: workers for the shard-routed process-executor measurement.
WORKERS = 4
#: peak-RSS budget for the streaming runs at the top tier, in MB.  At 100k
#: statements the recording machine measured ~900 MB cold / ~1050 MB warm —
#: dominated by the *result* (100k TableLineage entries plus the full
#: column graph), which streaming deliberately retains; what it bounds is
#: the transient AST population, which no longer scales with the corpus
#: (see the ablation series).  ~15% headroom over the measured warm peak.
MEMORY_BUDGET_MB = 1200

_CHILD_MARKER = "SCALE_CHILD_RESULT "


def _base_tables(tier):
    """Warehouse width scales with depth so the catalog stays realistic."""
    return max(10, tier // 200)


# ----------------------------------------------------------------------
# child process: one measured phase, clean ru_maxrss
# ----------------------------------------------------------------------

def _child_main(config):
    import resource

    from repro.core.runner import LineageXRunner
    from repro.datasets import workload
    from repro.store import LineageStore

    tier = config["tier"]
    warehouse = workload.iter_warehouse(
        num_base_tables=config["base_tables"], num_views=tier, seed=config["seed"]
    )
    catalog = warehouse.catalog()
    store = None
    if config["cache_dir"]:
        store = LineageStore(config["cache_dir"], shards=config["shards"])
    runner = LineageXRunner(
        catalog=catalog,
        store=store,
        stream=config["stream"],
        workers=config["workers"],
        executor=config["executor"],
    )
    started = time.perf_counter()
    result = runner.run(warehouse)
    elapsed = time.perf_counter() - started
    if store is not None:
        store.close()
    stats = result.stats()
    # ru_maxrss is KiB on Linux
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        _CHILD_MARKER
        + json.dumps(
            {
                "elapsed_s": round(elapsed, 3),
                "stmt_per_s": round(tier / max(elapsed, 1e-9), 1),
                "peak_rss_mb": round(peak_kb / 1024.0, 1),
                "num_entries": len(result.graph.views),
                "num_reused_store": stats["num_reused_store"],
                "num_unresolved": len(result.report.unresolved),
            }
        )
    )


def _run_child(tier, cache_dir=None, stream=True, shards=SHARDS, workers=None,
               executor="thread"):
    config = {
        "tier": tier,
        "base_tables": _base_tables(tier),
        "seed": SEED,
        "cache_dir": cache_dir,
        "shards": shards,
        "stream": stream,
        "workers": workers,
        "executor": executor,
    }
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", json.dumps(config)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"scale child failed (tier={tier}, stream={stream}):\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    for line in reversed(proc.stdout.splitlines()):
        if line.startswith(_CHILD_MARKER):
            result = json.loads(line[len(_CHILD_MARKER):])
            # structural invariants hold for every phase at every tier
            assert result["num_entries"] == tier, result
            assert result["num_unresolved"] == 0, result
            return result
    raise AssertionError(f"scale child printed no result:\n{proc.stdout}\n{proc.stderr}")


def _store_mb(cache_dir):
    total = 0
    for name in os.listdir(cache_dir):
        total += os.path.getsize(os.path.join(cache_dir, name))
    return round(total / (1024.0 * 1024.0), 1)


def _gates_active():
    """Wall-clock and budget gates: local / BENCH_STRICT only, never quick."""
    if QUICK or os.environ.get("BENCH_NO_GATES"):
        return False
    return not os.environ.get("CI") or os.environ.get("BENCH_STRICT")


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------

def test_scale_report():
    series = []
    for tier in TIERS:
        cache_dir = tempfile.mkdtemp(prefix="lineage-scale-bench-")
        try:
            cold = _run_child(tier, cache_dir=cache_dir, stream=True)
            store_mb = _store_mb(cache_dir)
            warm = _run_child(tier, cache_dir=cache_dir, stream=True)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

        # structural: cold never splices, warm splices every statement
        assert cold["num_reused_store"] == 0
        assert warm["num_reused_store"] == tier, (
            f"warm run at {tier} spliced only {warm['num_reused_store']}"
        )
        series.append(
            {
                "tier": tier,
                "cold_s": cold["elapsed_s"],
                "cold_stmt_per_s": cold["stmt_per_s"],
                "cold_peak_rss_mb": cold["peak_rss_mb"],
                "warm_s": warm["elapsed_s"],
                "warm_stmt_per_s": warm["stmt_per_s"],
                "warm_peak_rss_mb": warm["peak_rss_mb"],
                "warm_spliced": warm["num_reused_store"],
                "speedup": round(cold["elapsed_s"] / max(warm["elapsed_s"], 1e-9), 2),
                "store_mb": store_mb,
            }
        )

    # streaming vs materialize-everything: same corpus, no store, so the
    # delta is exactly the retained AST population
    ablation_dir = None  # both arms run storeless — memory only
    streaming = _run_child(GATE_TIER, cache_dir=ablation_dir, stream=True)
    materialized = _run_child(GATE_TIER, cache_dir=ablation_dir, stream=False)
    ablation = {
        "tier": GATE_TIER,
        "streaming_peak_rss_mb": streaming["peak_rss_mb"],
        "materialized_peak_rss_mb": materialized["peak_rss_mb"],
        "saving_ratio": round(
            materialized["peak_rss_mb"] / max(streaming["peak_rss_mb"], 1e-9), 2
        ),
    }

    # shard-routed process executor: wave batches grouped by shard, cold
    parallel_dir = tempfile.mkdtemp(prefix="lineage-scale-bench-par-")
    try:
        parallel = _run_child(
            GATE_TIER, cache_dir=parallel_dir, stream=True,
            workers=WORKERS, executor="process",
        )
    finally:
        shutil.rmtree(parallel_dir, ignore_errors=True)
    parallel_row = {
        "tier": GATE_TIER,
        "workers": WORKERS,
        "executor": "process",
        "cold_s": parallel["elapsed_s"],
        "cold_stmt_per_s": parallel["stmt_per_s"],
        "peak_rss_mb": parallel["peak_rss_mb"],
    }

    payload = {
        "config": {
            "seed": SEED,
            "tiers": TIERS,
            "shards": SHARDS,
            "workers": WORKERS,
            "memory_budget_mb": MEMORY_BUDGET_MB,
            "quick": QUICK,
        },
        "current": {
            "series": series,
            "ablation": ablation,
            "parallel": parallel_row,
        },
        # pinned on first emit, preserved by emit_root_json() ever after
        "baseline": {
            "series": series,
            "ablation": ablation,
            "parallel": parallel_row,
        },
    }

    rows = [
        (
            row["tier"],
            f"{row['cold_s']:.1f}",
            f"{row['cold_stmt_per_s']:.0f}",
            f"{row['cold_peak_rss_mb']:.0f}",
            f"{row['warm_s']:.1f}",
            f"{row['warm_stmt_per_s']:.0f}",
            f"{row['warm_peak_rss_mb']:.0f}",
            f"{row['speedup']:.1f}x",
            f"{row['store_mb']:.0f}",
        )
        for row in series
    ]
    lines = table(
        [
            "#stmts", "cold (s)", "cold st/s", "cold MB",
            "warm (s)", "warm st/s", "warm MB", "speedup", "store MB",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        f"ablation at {GATE_TIER}: streaming peaks at "
        f"{ablation['streaming_peak_rss_mb']:.0f} MB vs "
        f"{ablation['materialized_peak_rss_mb']:.0f} MB materialized "
        f"({ablation['saving_ratio']:.1f}x saving)"
    )
    lines.append(
        f"process executor ({WORKERS} workers, shard-routed batches) at "
        f"{GATE_TIER}: {parallel_row['cold_stmt_per_s']:.0f} stmt/s cold"
    )
    emit("scale", "Scale tier — cold/warm throughput and peak RSS", lines)
    emit_json("scale", payload)

    if _gates_active():
        gate = series[0]
        assert gate["speedup"] >= 2.0, (
            f"warm start only {gate['speedup']:.1f}x faster at {gate['tier']} "
            f"statements; the scale-tier promise is >= 2x"
        )
        top = series[-1]
        peak = max(top["cold_peak_rss_mb"], top["warm_peak_rss_mb"])
        assert peak <= MEMORY_BUDGET_MB, (
            f"streaming run at {top['tier']} statements peaked at "
            f"{peak:.0f} MB — over the {MEMORY_BUDGET_MB} MB budget"
        )
        assert ablation["streaming_peak_rss_mb"] < ablation["materialized_peak_rss_mb"], (
            f"streaming ({ablation['streaming_peak_rss_mb']:.0f} MB) did not "
            f"peak below materialized "
            f"({ablation['materialized_peak_rss_mb']:.0f} MB) at {GATE_TIER}"
        )

    if not QUICK:
        # refresh the trajectory only after the gates pass — a failing run
        # must not rewrite the reference it compares against
        emit_root_json("scale", payload)


def test_scale_corpus_resolves():
    """Sanity: the streamed warehouse at small scale resolves completely."""
    result = _run_child(500, cache_dir=None, stream=True)
    assert result["num_unresolved"] == 0
    assert result["num_entries"] == 500


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        _child_main(json.loads(sys.argv[2]))
    else:
        raise SystemExit("usage: bench_scale.py --child '<json-config>'")
