"""FIG3 — The LineageX module pipeline (Figure 3).

Figure 3 illustrates the three modules: SQL Preprocessing (Query Dictionary),
SQL Transformation (parsing to ASTs) and Lineage Information Extraction.
This benchmark times each stage separately on three workloads of increasing
size (Example 1, the retail warehouse, the synthetic MIMIC warehouse) and
reports the per-stage breakdown, demonstrating the "lightweight" claim.
"""

import time

import pytest

from repro.core.extractor import LineageExtractor
from repro.core.preprocess import preprocess
from repro.core.runner import lineagex
from repro.core.scheduler import AutoInferenceScheduler
from repro.datasets import example1, mimic, retail
from repro.sqlparser import parse

from _report import emit, table

WORKLOADS = [
    ("example1 (3 views)", lambda: example1.QUERY_LOG),
    ("retail (13 views)", lambda: retail.FULL_SCRIPT),
    ("mimic (70 views)", lambda: mimic.full_script(shuffle_seed=11)),
]


@pytest.mark.parametrize("name,script_builder", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_fig3_stage_preprocessing(benchmark, name, script_builder):
    script = script_builder()
    qd = benchmark(preprocess, script)
    assert len(qd) > 0


@pytest.mark.parametrize("name,script_builder", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_fig3_stage_transformation(benchmark, name, script_builder):
    script = script_builder()
    statements = benchmark(parse, script)
    assert statements


@pytest.mark.parametrize("name,script_builder", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_fig3_stage_extraction(benchmark, name, script_builder):
    script = script_builder()
    qd = preprocess(script)

    def extract_all():
        scheduler = AutoInferenceScheduler(qd)
        return scheduler.run()

    graph, report = benchmark(extract_all)
    assert not report.unresolved


def test_fig3_stage_breakdown_report(benchmark):
    def measure(script):
        started = time.perf_counter()
        qd = preprocess(script)
        preprocess_time = time.perf_counter() - started

        started = time.perf_counter()
        parse(script)
        transform_time = time.perf_counter() - started

        started = time.perf_counter()
        AutoInferenceScheduler(qd).run()
        extract_time = time.perf_counter() - started

        started = time.perf_counter()
        lineagex(script)
        total_time = time.perf_counter() - started
        return preprocess_time, transform_time, extract_time, total_time, len(qd)

    rows = []
    for name, script_builder in WORKLOADS:
        pre, trans, extract, total, queries = measure(script_builder())
        rows.append(
            (
                name,
                queries,
                f"{pre * 1000:.1f}",
                f"{trans * 1000:.1f}",
                f"{extract * 1000:.1f}",
                f"{total * 1000:.1f}",
            )
        )
    benchmark(lambda: lineagex(example1.QUERY_LOG))
    lines = table(
        [
            "workload",
            "#queries",
            "preprocess (ms)",
            "transform/parse (ms)",
            "extract (ms)",
            "end-to-end (ms)",
        ],
        rows,
    )
    lines.append("")
    lines.append("All stages run in milliseconds on a laptop — no DBMS, no query execution.")
    emit("fig3_pipeline_stages", "Figure 3 — module pipeline stage breakdown", lines)
    assert float(rows[-1][-1]) < 10_000, "MIMIC-scale extraction should finish in seconds"
