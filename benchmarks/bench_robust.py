"""ROBUST — crash safety priced: journal overhead, recovery, faulty serving.

Three robustness claims, measured against the in-process daemon
(:class:`repro.server.LineageApp`) over real loopback sockets:

* **durability is cheap** — cold ingest at the 400-view tier with the
  write-ahead journal on (fsync'd per batch) must sustain at least
  **85%** of the journal-off throughput of the same run (the ≤15%
  overhead budget; compare also against ``BENCH_serve.json``'s
  ``ingest_statements_per_s``, which was measured journal-off);
* **recovery is splice-speed** — replaying the 10k-statement journal of
  a crashed daemon (boot -> byte-identical serving graph) must complete
  in a small fraction of the original ingest time, because replay rides
  the warm store instead of re-parsing;
* **degraded is not down** — with a 30% injected fault rate on every
  store shard read *and* write, the daemon must keep answering: ingest
  completes, ``GET /impact`` p99 stays under the same 50 ms bound the
  healthy daemon is held to, and the only non-200s permitted anywhere
  are deliberate 503 sheds.

Wall-clock gates only fire off-CI (or with ``BENCH_STRICT=1``); results
land in ``benchmarks/results/robust.*`` and the committed trajectory
file ``BENCH_robust.json``.  ``BENCH_ROBUST_QUICK=1`` shrinks the tiers.
"""

import asyncio
import json
import os
import time

from repro.datasets import workload
from repro.server import LineageApp
from repro.testing import faults

from _report import emit, emit_json, emit_root_json, table

QUICK = bool(os.environ.get("BENCH_ROBUST_QUICK"))
GATES_ON = not os.environ.get("CI") or os.environ.get("BENCH_STRICT")

VIEW_TIER = 80 if QUICK else 400
SCALE_TIER = 1000 if QUICK else 10_000
SEED = 431
FAULT_RATE = 0.3
READS_UNDER_FAULTS = 100 if QUICK else 400
INGEST_CHUNK = 50
JOURNAL_OVERHEAD_BUDGET = 0.85  # journal-on must keep >= 85% throughput


def _warehouse(num_views, seed=SEED):
    return workload.generate_warehouse(
        num_base_tables=max(4, num_views // 12), num_views=num_views, seed=seed
    )


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Client:
    def __init__(self, host, port):
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_response(self):
        head = await self.reader.readuntil(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        body = await self.reader.readexactly(length) if length else b""
        status = int(head.split(b" ", 2)[1])
        return status, body

    async def get(self, path):
        self.writer.write(f"GET {path} HTTP/1.1\r\nHost: b\r\n\r\n".encode())
        await self.writer.drain()
        return await self._read_response()

    async def post_extract(self, statements):
        body = json.dumps({"statements": statements}).encode()
        self.writer.write(
            b"POST /extract HTTP/1.1\r\nHost: b\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        await self.writer.drain()
        return await self._read_response()


def _chunks(mapping, size):
    names = list(mapping)
    return [
        {name: mapping[name] for name in names[index:index + size]}
        for index in range(0, len(names), size)
    ]


async def _ingest(client, statements, chunk=INGEST_CHUNK, statuses=None):
    started = time.perf_counter()
    for piece in _chunks(statements, chunk):
        status, payload = await client.post_extract(piece)
        if statuses is not None:
            statuses.append(status)
        else:
            assert status == 200, payload[:200]
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# phase 1: journal overhead (on vs off, same corpus, same process)
# ----------------------------------------------------------------------
async def _cold_ingest(tmp_dir, tag, journal_dir):
    warehouse = _warehouse(VIEW_TIER)
    app = LineageApp(
        catalog=warehouse.catalog(),
        cache_dir=os.path.join(tmp_dir, f"cache-{tag}"),
        batch_window=0.002,
        journal_dir=journal_dir,
    )
    host, port = await app.start(port=0)
    try:
        client = _Client(host, port)
        await client.connect()
        elapsed = await _ingest(client, warehouse.views)
        journal_stats = app.journal.stats() if app.journal else None
        await client.close()
        return {
            "ingest_seconds": round(elapsed, 4),
            "ingest_statements_per_s": round(len(warehouse.views) / elapsed, 1),
            "journal": journal_stats,
        }
    finally:
        await app.stop()


# ----------------------------------------------------------------------
# phase 2: recovery time at the scale tier
# ----------------------------------------------------------------------
async def _bench_recovery(tmp_dir):
    warehouse = _warehouse(SCALE_TIER)
    journal_dir = os.path.join(tmp_dir, "scale-journal")
    cache_dir = os.path.join(tmp_dir, "scale-cache")

    app = LineageApp(
        catalog=warehouse.catalog(),
        cache_dir=cache_dir,
        batch_window=0.002,
        journal_dir=journal_dir,
    )
    host, port = await app.start(port=0)
    try:
        client = _Client(host, port)
        await client.connect()
        ingest_elapsed = await _ingest(client, warehouse.views, chunk=500)
        status, body = await client.get("/render/json")
        assert status == 200
        reference = body
        await client.close()
    finally:
        # the daemon is abandoned, not drained: journal entries are
        # already durable, which is the whole point
        await app.stop()

    revived = LineageApp(
        catalog=warehouse.catalog(),
        cache_dir=cache_dir,
        batch_window=0.002,
        journal_dir=journal_dir,
    )
    started = time.perf_counter()
    host, port = await revived.start(port=0)  # start() replays before binding
    recovery_elapsed = time.perf_counter() - started
    try:
        client = _Client(host, port)
        await client.connect()
        status, body = await client.get("/render/json")
        assert status == 200
        assert body == reference, "recovered graph is not byte-identical"
        await client.close()
    finally:
        await revived.stop()
    return {
        "tier": SCALE_TIER,
        "ingest_seconds": round(ingest_elapsed, 2),
        "ingest_statements_per_s": round(len(warehouse.views) / ingest_elapsed, 1),
        "recovery_seconds": round(recovery_elapsed, 2),
        "recovery_statements_per_s": round(
            len(warehouse.views) / recovery_elapsed, 1
        ),
        "recovery_vs_ingest": round(recovery_elapsed / ingest_elapsed, 3),
        "byte_identical": True,
    }


# ----------------------------------------------------------------------
# phase 3: serving under a 30% shard fault rate
# ----------------------------------------------------------------------
async def _bench_faulty_serving(tmp_dir):
    warehouse = _warehouse(VIEW_TIER)
    app = LineageApp(
        catalog=warehouse.catalog(),
        cache_dir=os.path.join(tmp_dir, "faulty-cache"),
        cache_shards=4,
        batch_window=0.002,
    )
    host, port = await app.start(port=0)
    faults.install(
        faults.FaultPlan(
            seed=SEED,
            rates={"store.read": FAULT_RATE, "store.write": FAULT_RATE},
        )
    )
    try:
        client = _Client(host, port)
        await client.connect()
        statuses = []
        ingest_elapsed = await _ingest(
            client, warehouse.views, statuses=statuses
        )
        bad = [status for status in statuses if status not in (200, 503)]
        assert not bad, f"unexpected statuses under faults: {bad}"

        # only measure columns the generated views actually reference
        # (an unreferenced base column is a legitimate 404)
        impact_paths = []
        for t, columns in warehouse.base_tables.items():
            path = f"/impact?column={t}.{columns[0]}"
            status, _ = await client.get(path)
            if status == 200:
                impact_paths.append(path)
        assert impact_paths
        latencies = []
        read_statuses = []
        for index in range(READS_UNDER_FAULTS):
            path = impact_paths[index % len(impact_paths)]
            started = time.perf_counter()
            status, _ = await client.get(path)
            latencies.append(time.perf_counter() - started)
            read_statuses.append(status)
        assert all(status == 200 for status in read_statuses)

        status, body = await client.get("/health")
        assert status == 200
        health = json.loads(body)
        status, body = await client.get("/stats")
        assert status == 200
        stats = json.loads(body)
        await client.close()
        return {
            "fault_rate": FAULT_RATE,
            "ingest_seconds": round(ingest_elapsed, 4),
            "ingest_statements_per_s": round(
                len(warehouse.views) / ingest_elapsed, 1
            ),
            "read_requests": len(latencies),
            "read_p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "read_p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
            "health_status": health["status"],
            "store_error_misses": stats["store"]["session_error_misses"],
            "store_dropped_writes": stats["store"]["session_dropped_writes"],
            "non_200_responses": len([s for s in statuses if s != 200]),
        }
    finally:
        faults.reset()
        await app.stop()


def test_robustness_benchmark(tmp_path):
    tmp_dir = str(tmp_path)
    journal_off = asyncio.run(_cold_ingest(tmp_dir, "off", None))
    journal_on = asyncio.run(
        _cold_ingest(tmp_dir, "on", os.path.join(tmp_dir, "journal"))
    )
    overhead_ratio = round(
        journal_on["ingest_statements_per_s"]
        / journal_off["ingest_statements_per_s"],
        4,
    )
    recovery = (
        {"tier": SCALE_TIER, "skipped": "BENCH_ROBUST_QUICK"}
        if QUICK
        else asyncio.run(_bench_recovery(tmp_dir))
    )
    faulty = asyncio.run(_bench_faulty_serving(tmp_dir))

    view_metrics = {
        "tier": VIEW_TIER,
        "journal_off_statements_per_s": journal_off["ingest_statements_per_s"],
        "journal_on_statements_per_s": journal_on["ingest_statements_per_s"],
        "journal_throughput_ratio": overhead_ratio,
        "journal_entries": (journal_on["journal"] or {}).get("appended"),
        "faulty_read_p99_ms": faulty["read_p99_ms"],
        "faulty_ingest_statements_per_s": faulty["ingest_statements_per_s"],
    }
    payload = {
        "view_tier": view_metrics,
        "journal_off": journal_off,
        "journal_on": journal_on,
        "faulty_serving": faulty,
        "recovery": recovery,
        "quick": QUICK,
        "gates": {
            "journal_throughput_ratio_min": JOURNAL_OVERHEAD_BUDGET,
            "faulty_read_p99_ms_max": 50.0,
        },
        # pinned on first emit (emit_root_json keeps the existing value)
        "baseline": dict(view_metrics),
    }
    emit_json("robust", payload)
    emit_root_json("robust", payload)

    rows = [[key, value] for key, value in sorted(view_metrics.items())]
    emit(
        "robust",
        f"Crash-safe serving @ {VIEW_TIER} views "
        f"({'quick' if QUICK else 'full'} scale)",
        table(["metric", "value"], rows)
        + [
            "",
            f"recovery: {recovery}",
            f"faulty serving: {faulty}",
        ],
    )

    # correctness-side assertions always run
    assert (journal_on["journal"] or {}).get("appended", 0) == len(
        _warehouse(VIEW_TIER).views
    )
    assert faulty["health_status"] in ("ok", "degraded")
    assert faulty["store_error_misses"] + faulty["store_dropped_writes"] > 0
    assert faulty["non_200_responses"] == 0  # sheds would be 503, none expected

    if GATES_ON:
        assert overhead_ratio >= JOURNAL_OVERHEAD_BUDGET, (
            f"journal overhead exceeds budget: on/off throughput ratio "
            f"{overhead_ratio} < {JOURNAL_OVERHEAD_BUDGET}"
        )
        assert faulty["read_p99_ms"] < 50.0, (
            "p99 /impact latency under a 30% shard fault rate must stay "
            f"under 50 ms, got {faulty['read_p99_ms']} ms"
        )
        if not QUICK:
            assert recovery["recovery_vs_ingest"] < 0.5, (
                "journal replay should ride the warm store: recovery took "
                f"{recovery['recovery_vs_ingest']:.0%} of the original ingest"
            )
