"""STORE — persistent warm starts and process-parallel extraction.

Two claims of the persistent content-addressed lineage store:

* **warm start** — a second session over an *unchanged* corpus (a fresh
  process: new runner, new store handle, same cache directory) splices
  ~100% of the entries from disk and is at least 2x faster than the cold
  run at 400 views (the bar was 5x before PR 4 made the cold path itself
  ~2.5x faster);
* **determinism** — ``executor="process"`` (true multi-core extraction)
  produces byte-identical rendered graphs to serial mode.

Results are emitted as text and as machine-readable JSON
(``benchmarks/results/store.json``), which CI uploads as an artifact.
"""

import os
import shutil
import tempfile
import time

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.store import LineageStore

from _report import emit, emit_json, emit_root_json, table

SWEEP = [50, 100, 200, 400]
SEED = 97


def _warehouse(num_views):
    warehouse = workload.generate_warehouse(
        num_base_tables=max(3, num_views // 10), num_views=num_views, seed=SEED
    )
    return dict(warehouse.views), warehouse.catalog()


def _timed_run(cache_dir, sources, catalog, **kwargs):
    """One 'process lifetime': open the store, run, close the store."""
    store = LineageStore(cache_dir)
    runner = LineageXRunner(catalog=catalog, store=store, **kwargs)
    started = time.perf_counter()
    result = runner.run(sources)
    elapsed = time.perf_counter() - started
    store.close()
    return result, elapsed


def test_warm_start_report():
    rows = []
    series = []
    for num_views in SWEEP:
        sources, catalog = _warehouse(num_views)
        cache_dir = tempfile.mkdtemp(prefix="lineage-store-bench-")
        try:
            cold, cold_elapsed = _timed_run(cache_dir, sources, catalog)
            warm, warm_elapsed = _timed_run(cache_dir, sources, catalog)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)

        # correctness: the warm-spliced graph equals the cold one
        diff = diff_graphs(warm.graph, cold.graph)
        assert diff.is_identical, diff.summary()

        # the warm run splices ~100% from disk (here: exactly 100%)
        stats = warm.stats()
        assert stats["num_reused_store"] == num_views
        assert stats["num_reused_memory"] == 0
        assert cold.stats()["num_reused_store"] == 0

        speedup = cold_elapsed / max(warm_elapsed, 1e-9)
        series.append(
            {
                "num_views": num_views,
                "cold_ms": round(cold_elapsed * 1000, 2),
                "warm_ms": round(warm_elapsed * 1000, 2),
                "speedup": round(speedup, 2),
                "store_spliced": stats["num_reused_store"],
            }
        )
        rows.append(
            (
                num_views,
                stats["num_reused_store"],
                f"{cold_elapsed * 1000:.1f}",
                f"{warm_elapsed * 1000:.1f}",
                f"{speedup:.1f}x",
            )
        )

    lines = table(
        ["#views", "#store-spliced", "cold run (ms)", "warm run (ms)", "speedup"],
        rows,
    )
    lines.append("")
    lines.append(
        "A second session over an unchanged corpus replays preprocessing from "
        "the parse cache and splices every extraction from the lineage store."
    )
    emit("store", "Persistent store — warm start vs cold start", lines)
    emit_json("store", {"warm_start": series})
    emit_root_json("store", {"warm_start": series})

    # the headline claim: warm >= 2x cold at the largest size.  The bar was
    # 5x against the PR 3 cold path; PR 4 made the cold path itself ~2.5x
    # faster (master-pattern lexer, slotted AST, fused print+hash, memoized
    # resolution — see BENCH_cold_path.json), so the warm/cold *ratio*
    # shrank even though absolute warm time did not regress.  Wall-clock
    # assertions are flaky on shared CI runners, so there the structural
    # checks above (100% splice, graph equality) stand in; the timing gate
    # runs locally and under BENCH_STRICT=1.
    if not os.environ.get("CI") or os.environ.get("BENCH_STRICT"):
        assert series[-1]["speedup"] >= 2.0, (
            f"warm start only {series[-1]['speedup']:.1f}x faster at "
            f"{series[-1]['num_views']} views"
        )


def test_process_executor_determinism():
    """executor='process' must produce byte-identical graphs to serial."""
    sources, catalog = _warehouse(200)
    serial = LineageXRunner(catalog=catalog).run(sources)
    parallel = LineageXRunner(catalog=catalog, workers=4, executor="process").run(
        sources
    )
    assert parallel.report.order == serial.report.order
    assert diff_graphs(parallel.graph, serial.graph).is_identical
    for fmt in ("csv", "dot", "markdown", "text"):
        assert parallel.render(fmt) == serial.render(fmt), fmt
    emit(
        "store_determinism",
        "Process executor — byte-identical to serial",
        [
            f"executor used: {parallel.report.executor}",
            "csv/dot/markdown/text renders byte-identical: yes",
            f"entries: {len(serial.report.order)}",
        ],
    )


@pytest.mark.parametrize("num_views", [200], ids=["200-views"])
def test_warm_start_benchmark(benchmark, num_views):
    sources, catalog = _warehouse(num_views)
    cache_dir = tempfile.mkdtemp(prefix="lineage-store-bench-")
    try:
        _timed_run(cache_dir, sources, catalog)  # populate

        def warm_run():
            store = LineageStore(cache_dir)
            result = LineageXRunner(catalog=catalog, store=store).run(sources)
            store.close()
            return result

        result = benchmark(warm_run)
        assert result.stats()["num_reused_store"] == num_views
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
