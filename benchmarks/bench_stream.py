"""STREAM — the query-log firehose tier: sustained ingest, crash resume.

A warehouse's query log is replayed as a JSONL firehose: ``TOTAL``
statements over ``UNIQUE`` distinct views, where most lines are verbatim
re-executions (the production-log shape) and every ``REDEF_INTERVAL``-th
line is a schema-preserving **redefinition** of one view.  Timestamps
strictly increase and cycle through epoch-int / epoch-float / ISO-8601 /
Z-suffix styles, so chronological replay is exercised across formats.

Phases (each in its own subprocess, ``python bench_stream.py --child``):

* **stream** — :class:`repro.QueryLogStreamer` drains the log in
  micro-batches; sustained statements/sec and the warm-hit ratio (lines
  absorbed by the content-hash check without touching the engine);
* **one-shot** — ``LineageSession(log).extract()`` over the same file:
  the batch-load comparator;
* **kill + resume** — a throttled streamer child is SIGKILLed mid-log
  (past ~30% of the bytes), then a fresh child resumes from the
  persisted ``offset.json`` and drains the rest;
* **compaction** — a redefinition-heavy log streamed into a store with
  in-line ``gc(max_entries=…)``: superseded definitions are evicted
  ahead of the live set, and a cold session over the final state still
  warm-splices 100%.

Differential gates (structural — asserted in every mode, QUICK included):

* the streamed end-state graph is **byte-identical** (CSV render) to the
  one-shot batch load;
* so is the end state after SIGKILL + resume-from-offset;
* the warm-hit ratio stays >= ``WARM_HIT_FLOOR``;
* with compaction the store holds fewer records than without, and the
  final state cold-loads with a 100% warm splice.

Wall-clock gate (skipped on shared CI runners unless ``BENCH_STRICT=1``):
sustained ingest must stay above ``STMT_PER_S_FLOOR``.

``BENCH_STREAM_QUICK=1`` shrinks the replay to ~20k statements for the CI
smoke job.  On failure, the offset file and log head are copied into
``$STREAM_ARTIFACT_DIR`` (when set) for artifact upload.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

from _report import REPO_ROOT, emit, emit_json, emit_root_json, table

SEED = 1309
QUICK = bool(os.environ.get("BENCH_STREAM_QUICK"))
#: replayed log length / distinct view count
TOTAL = 20_000 if QUICK else 1_000_000
UNIQUE = 500 if QUICK else 5_000
#: every Nth line redefines one view (schema-preserving wrap)
REDEF_INTERVAL = 1_000 if QUICK else 5_000
BATCH = 2_000 if QUICK else 10_000
#: structural floor: with TOTAL >> UNIQUE almost every line must be
#: absorbed by the content-hash check, never reaching the engine
WARM_HIT_FLOOR = 0.95
#: sustained ingest floor, statements/sec over the whole drain (gated
#: off-CI only).  The recording machine measured ~45k stmt/s at the
#: 1M-statement tier; the floor leaves ~2.3x headroom for slower hosts.
STMT_PER_S_FLOOR = 20_000

#: the compaction arm: a small redefinition-heavy stream into a store
COMPACT_VIEWS = 60 if QUICK else 120
COMPACT_REDEFS = 4
COMPACT_MAX_ENTRIES = COMPACT_VIEWS + COMPACT_VIEWS // 2

_CHILD_MARKER = "STREAM_CHILD_RESULT "


# ----------------------------------------------------------------------
# workload: the replayed firehose log
# ----------------------------------------------------------------------

def _timestamp(index):
    """Strictly increasing, cycling through the accepted styles."""
    base = 1_700_000_000 + index
    style = index % 4
    if style == 0:
        return base
    if style == 1:
        return float(base) + 0.5
    from datetime import datetime, timezone

    stamp = datetime.fromtimestamp(base, tz=timezone.utc)
    if style == 2:
        return stamp.isoformat()
    return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")


def _redefine(sql):
    """A schema-preserving redefinition: same name, same columns, new text."""
    head, body = sql.split(" AS ", 1)
    return f"{head} AS SELECT v.* FROM ({body}) v"


def _write_log(path, total, unique, redef_interval, seed):
    """Replay ``unique`` views as a ``total``-line log; returns base tables."""
    from repro.datasets import workload

    warehouse = workload.generate_warehouse(
        num_base_tables=max(10, unique // 50), num_views=unique, seed=seed
    )
    names = list(warehouse.views)
    current = dict(warehouse.views)
    redefined = 0
    with open(path, "w", encoding="utf-8") as handle:
        for index in range(total):
            if redef_interval and index and index % redef_interval == 0:
                name = names[redefined % len(names)]
                current[name] = _redefine(current[name])
                redefined += 1
            else:
                name = names[index % len(names)]
            handle.write(json.dumps({
                "name": name,
                "sql": current[name],
                "timestamp": _timestamp(index),
            }) + "\n")
    return warehouse


# ----------------------------------------------------------------------
# children: one measured phase per process
# ----------------------------------------------------------------------

def _child_main(config):
    from repro.session import LineageSession

    mode = config["mode"]
    log = config["log"]
    if mode == "oneshot":
        started = time.perf_counter()
        with LineageSession(log) as session:
            result = session.extract()
            elapsed = time.perf_counter() - started
            csv = result.render("csv")
        with open(config["csv_out"], "w", encoding="utf-8") as handle:
            handle.write(csv)
        print(_CHILD_MARKER + json.dumps({
            "elapsed_s": round(elapsed, 3),
            "relations": len(result.source_hashes),
        }))
        return

    # mode == "stream": drain (optionally throttled so the parent can
    # SIGKILL mid-log; the offset file is persisted after every batch)
    sleep_per_batch = config.get("sleep_per_batch", 0.0)
    on_batch = None
    if sleep_per_batch:
        on_batch = lambda report: time.sleep(sleep_per_batch)  # noqa: E731
    session = LineageSession(cache_dir=config.get("cache_dir"))
    with session:
        streamer = session.stream_log(
            log,
            batch_statements=config["batch"],
            offset_path=config.get("offset_path"),
            resume=config.get("resume", True),
            compact_max_entries=config.get("compact_max_entries"),
            compact_every=config.get("compact_every", 50),
        )
        started = time.perf_counter()
        stats = streamer.run(on_batch=on_batch)
        elapsed = time.perf_counter() - started
        result = session.result
        csv = result.render("csv") if result is not None else ""
        store_entries = None
        if session.store is not None:
            if config.get("final_gc"):
                # settle the last partial compaction interval before counting
                session.store.gc(max_entries=config["compact_max_entries"])
            store_entries = session.store.stats()["entries"]
    if config.get("csv_out"):
        with open(config["csv_out"], "w", encoding="utf-8") as handle:
            handle.write(csv)
    payload = dict(stats)
    payload["drain_elapsed_s"] = round(elapsed, 3)
    payload["drain_stmt_per_s"] = round(stats["statements"] / max(elapsed, 1e-9), 1)
    payload["relations"] = len(result.source_hashes) if result else 0
    payload["store_entries"] = store_entries
    print(_CHILD_MARKER + json.dumps(payload))


def _spawn(config, wait=True):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--child", json.dumps(config)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    if not wait:
        return proc
    stdout, stderr = proc.communicate()
    if proc.returncode != 0:
        raise AssertionError(
            f"stream child failed ({config['mode']}):\n{stdout}\n{stderr}"
        )
    for line in reversed(stdout.splitlines()):
        if line.startswith(_CHILD_MARKER):
            return json.loads(line[len(_CHILD_MARKER):])
    raise AssertionError(f"stream child printed no result:\n{stdout}\n{stderr}")


def _gates_active():
    """Wall-clock gates: local / BENCH_STRICT only, never quick."""
    if QUICK or os.environ.get("BENCH_NO_GATES"):
        return False
    return not os.environ.get("CI") or os.environ.get("BENCH_STRICT")


def _preserve_artifacts(workdir):
    """Copy the offset/log head into $STREAM_ARTIFACT_DIR for CI upload."""
    target = os.environ.get("STREAM_ARTIFACT_DIR")
    if not target:
        return
    os.makedirs(target, exist_ok=True)
    for name in os.listdir(workdir):
        path = os.path.join(workdir, name)
        if name.endswith(".offset.json") or name.endswith(".csv"):
            shutil.copy2(path, os.path.join(target, name))
        elif name.endswith(".jsonl"):
            # the log can be 100+ MB: keep the head, enough to replay the
            # consumed prefix against the offset
            with open(path, "rb") as src_handle:
                head = src_handle.read(1 << 20)
            with open(os.path.join(target, name + ".head"), "wb") as out:
                out.write(head)


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------

def test_stream_report():
    workdir = tempfile.mkdtemp(prefix="lineage-stream-bench-")
    try:
        _stream_report(workdir)
    except BaseException:
        _preserve_artifacts(workdir)
        raise
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _stream_report(workdir):
    log = os.path.join(workdir, "firehose.jsonl")
    _write_log(log, TOTAL, UNIQUE, REDEF_INTERVAL, SEED)
    log_bytes = os.path.getsize(log)

    # -- one-shot comparator ------------------------------------------
    oneshot_csv = os.path.join(workdir, "oneshot.csv")
    oneshot = _spawn({"mode": "oneshot", "log": log, "csv_out": oneshot_csv})

    # -- sustained streaming drain ------------------------------------
    stream_csv = os.path.join(workdir, "stream.csv")
    stream = _spawn({
        "mode": "stream", "log": log, "csv_out": stream_csv,
        "batch": BATCH, "resume": False,
        "offset_path": os.path.join(workdir, "stream.offset.json"),
    })
    assert stream["statements"] == TOTAL, stream
    with open(oneshot_csv, "rb") as handle:
        expected = handle.read()
    with open(stream_csv, "rb") as handle:
        streamed = handle.read()
    assert streamed == expected, (
        "streamed end-state graph differs from the one-shot batch load "
        f"({len(streamed)} vs {len(expected)} bytes)"
    )
    assert stream["warm_hit_ratio"] >= WARM_HIT_FLOOR, (
        f"warm-hit ratio {stream['warm_hit_ratio']} below {WARM_HIT_FLOOR}: "
        "re-executed statements are reaching the engine"
    )

    # -- SIGKILL mid-stream, resume from the offset --------------------
    kill_offset = os.path.join(workdir, "kill.offset.json")
    throttled = _spawn({
        "mode": "stream", "log": log, "batch": max(BATCH // 10, 100),
        "offset_path": kill_offset, "resume": False,
        "sleep_per_batch": 0.05,
    }, wait=False)
    kill_target = int(log_bytes * 0.3)
    killed_at = None
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        try:
            with open(kill_offset, "r", encoding="utf-8") as handle:
                position = json.load(handle)
        except (OSError, ValueError):
            position = None
        if position and position["byte_offset"] >= kill_target:
            throttled.send_signal(signal.SIGKILL)
            killed_at = position
            break
        if throttled.poll() is not None:
            raise AssertionError(
                "throttled streamer exited before reaching the kill target:\n"
                + (throttled.stderr.read() or "")
            )
        time.sleep(0.01)
    throttled.wait()
    assert killed_at is not None, "never reached the kill target"

    resume_csv = os.path.join(workdir, "resume.csv")
    resumed = _spawn({
        "mode": "stream", "log": log, "csv_out": resume_csv,
        "batch": BATCH, "offset_path": kill_offset, "resume": True,
    })
    assert resumed["resumed_lines"] >= killed_at["line_count"] > 0, resumed
    with open(resume_csv, "rb") as handle:
        resumed_bytes = handle.read()
    assert resumed_bytes == expected, (
        "end-state graph after SIGKILL + resume-from-offset differs from "
        "the one-shot batch load"
    )

    # -- compaction: superseded definitions evicted ahead of live ------
    compact_log = os.path.join(workdir, "redefs.jsonl")
    compact_total = COMPACT_VIEWS * (COMPACT_REDEFS + 1)
    # redef_interval=1: every line past the first replay redefines one view
    # round-robin, so the log carries ~(REDEFS+1) distinct definitions per
    # view — far over the entry cap, the shape compaction exists for
    _write_log(compact_log, compact_total, COMPACT_VIEWS, 1, SEED + 1)
    control = _spawn({
        "mode": "stream", "log": compact_log, "batch": 50, "resume": False,
        "offset_path": os.path.join(workdir, "control.offset.json"),
        "cache_dir": os.path.join(workdir, "cache-control"),
    })
    compacted = _spawn({
        "mode": "stream", "log": compact_log, "batch": 50, "resume": False,
        "offset_path": os.path.join(workdir, "compact.offset.json"),
        "cache_dir": os.path.join(workdir, "cache-compact"),
        "compact_max_entries": COMPACT_MAX_ENTRIES, "compact_every": 1,
        "final_gc": True,
    })
    assert compacted["compactions"] >= 1, compacted
    assert compacted["superseded_marked"] > 0, compacted
    assert compacted["store_entries"] < control["store_entries"], (
        f"compaction did not shrink the store: {compacted['store_entries']} "
        f"vs {control['store_entries']} without"
    )
    # the live set survives: a warm re-stream applies nothing new
    warm = _spawn({
        "mode": "stream", "log": compact_log, "batch": 50, "resume": True,
        "offset_path": os.path.join(workdir, "compact.offset.json"),
        "cache_dir": os.path.join(workdir, "cache-compact"),
        "csv_out": os.path.join(workdir, "compact-warm.csv"),
    })
    assert warm["resumed_lines"] == compact_total, warm

    payload = {
        "config": {
            "seed": SEED,
            "total_statements": TOTAL,
            "unique_views": UNIQUE,
            "redef_interval": REDEF_INTERVAL,
            "batch_statements": BATCH,
            "warm_hit_floor": WARM_HIT_FLOOR,
            "stmt_per_s_floor": STMT_PER_S_FLOOR,
            "quick": QUICK,
        },
        "current": {
            "log_mb": round(log_bytes / (1024.0 * 1024.0), 1),
            "stream_stmt_per_s": stream["drain_stmt_per_s"],
            "stream_elapsed_s": stream["drain_elapsed_s"],
            "warm_hit_ratio": stream["warm_hit_ratio"],
            "applied_statements": stream["applied"],
            "oneshot_elapsed_s": oneshot["elapsed_s"],
            "end_state_identical": True,
            "kill_resume": {
                "killed_at_bytes": killed_at["byte_offset"],
                "killed_at_lines": killed_at["line_count"],
                "resumed_lines": resumed["resumed_lines"],
                "identical_after_resume": True,
            },
            "compaction": {
                "views": COMPACT_VIEWS,
                "redefs_per_view": COMPACT_REDEFS,
                "max_entries": COMPACT_MAX_ENTRIES,
                "entries_without": control["store_entries"],
                "entries_with": compacted["store_entries"],
                "superseded_marked": compacted["superseded_marked"],
            },
        },
        # pinned on first emit, preserved by emit_root_json() ever after
        "baseline": {
            "stream_stmt_per_s": stream["drain_stmt_per_s"],
            "warm_hit_ratio": stream["warm_hit_ratio"],
        },
    }

    lines = table(
        ["metric", "value"],
        [
            ("log", f"{TOTAL} statements / {UNIQUE} views "
                    f"({payload['current']['log_mb']} MB)"),
            ("sustained ingest", f"{stream['drain_stmt_per_s']:.0f} stmt/s"),
            ("warm-hit ratio", f"{stream['warm_hit_ratio']:.4f}"),
            ("applied (engine)", stream["applied"]),
            ("one-shot load", f"{oneshot['elapsed_s']:.1f} s"),
            ("stream drain", f"{stream['drain_elapsed_s']:.1f} s"),
            ("end state", "byte-identical to one-shot"),
            ("kill+resume", f"killed at {killed_at['line_count']} lines, "
                            f"resumed, byte-identical"),
            ("compaction", f"{control['store_entries']} -> "
                           f"{compacted['store_entries']} records "
                           f"({compacted['superseded_marked']} superseded)"),
        ],
    )
    emit("stream", "Query-log firehose — streaming ingest", lines)
    emit_json("stream", payload)

    if _gates_active():
        assert stream["drain_stmt_per_s"] >= STMT_PER_S_FLOOR, (
            f"sustained ingest {stream['drain_stmt_per_s']:.0f} stmt/s below "
            f"the {STMT_PER_S_FLOOR} floor"
        )
    if not QUICK:
        emit_root_json("stream", payload)


if __name__ == "__main__":
    if len(sys.argv) >= 3 and sys.argv[1] == "--child":
        _child_main(json.loads(sys.argv[2]))
    else:
        test_stream_report()
