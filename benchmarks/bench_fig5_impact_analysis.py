"""FIG5 — The demonstration walkthrough (Figure 5, Section IV Steps 1-4).

Step 1 calls the library on ``customer.sql`` and gets a JSON + HTML result;
Step 2 locates the ``web`` table; Step 3 explores its downstream tables
(first ``webinfo``/``webact``, then ``info``); Step 4 solves the case: the
impact of editing ``web.page`` is ``webinfo.wpage`` plus every column of
``webact`` and ``info``, with contribute/reference/both labels.

This benchmark replays all four steps programmatically and reports the
impact table the UI highlights.
"""

from repro.analysis.impact import explore, impact_analysis
from repro.core.runner import lineagex
from repro.datasets import example1

from _report import emit, table


def test_fig5_step1_one_call_api(benchmark, tmp_path):
    result = benchmark(lineagex, example1.QUERY_LOG, output_dir=str(tmp_path))
    assert (tmp_path / "lineagex.json").exists()
    assert (tmp_path / "lineagex.html").exists()


def test_fig5_step3_explore(benchmark, example1_result):
    graph = example1_result.graph
    upstream, downstream = benchmark(explore, graph, "web")
    assert downstream == {"webinfo", "webact"}
    _, second_hop = explore(graph, "web", hops=2)
    assert "info" in second_hop
    _, info_downstream = explore(graph, "info")
    assert info_downstream == set()


def test_fig5_step4_impact_of_web_page(benchmark, example1_result):
    graph = example1_result.graph
    result = benchmark(impact_analysis, graph, "web.page")

    rows = [(table_name, column, kind) for table_name, column, kind in result.to_rows()]
    lines = table(["table", "column", "impact kind"], rows)
    lines.append("")
    lines.append(
        "Paper's Step 4 answer: webinfo.wpage plus all columns of webact and info."
    )
    lines.append(
        f"Columns found: {len(result.all_columns)} "
        f"(expected {len(example1.IMPACT_OF_WEB_PAGE)})"
    )
    emit("fig5_impact_analysis", "Figure 5 / Step 4 — impact analysis of web.page", lines)

    assert {str(c) for c in result.all_columns} == example1.IMPACT_OF_WEB_PAGE
    assert result.impacted_tables() == ["info", "webact", "webinfo"]
    # wpage is contributed-to (red in the UI); webact.wpage is both (orange).
    from repro.core.column_refs import ColumnName
    from repro.core.lineage import EDGE_BOTH

    assert result.kind_of(ColumnName.of("webact", "wpage")) == EDGE_BOTH


def test_fig5_html_supports_the_walkthrough(benchmark, example1_result):
    html = benchmark(example1_result.to_html)
    # the dropdown (Step 2), explore action (Step 3) and hover highlighting
    # (Step 4) are all present in the self-contained page
    for hook in ("table-select", "exploreTable", "highlightDownstream", "highlight-both"):
        assert hook in html
