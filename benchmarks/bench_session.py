"""SESS — the Session façade must be free (<5% over the raw runner).

The Session API wraps every extraction in source detection, adapter
loading, config handling and fingerprint bookkeeping.  None of that may
cost anything at scale: this benchmark extracts a 400-view generated
warehouse through ``LineageXRunner.run`` directly and through
``LineageSession(...).extract()`` (building a fresh session each
iteration, so the façade's full construction cost is charged to it) and
asserts the façade overhead stays under 5%.
"""

import os
import time

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.runner import LineageXRunner
from repro.datasets import workload
from repro.session import LineageSession, SessionConfig

from _report import emit, emit_root_json, table

NUM_VIEWS = 400
SEED = 131
REPEATS = 3
MAX_OVERHEAD = 0.05


def _warehouse():
    warehouse = workload.generate_warehouse(
        num_base_tables=max(3, NUM_VIEWS // 10), num_views=NUM_VIEWS, seed=SEED
    )
    return dict(warehouse.views), warehouse.catalog()


def _best_of(repeats, func):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_session_facade_overhead():
    sources, catalog = _warehouse()

    def run_direct():
        return LineageXRunner(catalog=catalog).run(sources)

    def run_session():
        return LineageSession(sources, catalog=catalog).extract()

    # warm up parsers/caches once so neither side pays first-run costs
    run_direct()

    direct_elapsed, direct_result = _best_of(REPEATS, run_direct)
    session_elapsed, session_result = _best_of(REPEATS, run_session)

    # correctness: the façade changes nothing about the output
    diff = diff_graphs(session_result.graph, direct_result.graph)
    assert diff.is_identical, diff.summary()

    overhead = session_elapsed / direct_elapsed - 1.0
    lines = table(
        ["#views", "direct (ms)", "session (ms)", "overhead"],
        [
            (
                NUM_VIEWS,
                f"{direct_elapsed * 1000:.1f}",
                f"{session_elapsed * 1000:.1f}",
                f"{overhead * 100:+.2f}%",
            )
        ],
    )
    lines.append("")
    lines.append(
        "LineageSession(...).extract() vs LineageXRunner.run directly "
        f"(best of {REPEATS}); the façade must add < {MAX_OVERHEAD:.0%}."
    )
    emit("session", "Session façade overhead at 400 views", lines)
    emit_root_json(
        "session",
        {
            "num_views": NUM_VIEWS,
            "direct_ms": round(direct_elapsed * 1000, 2),
            "session_ms": round(session_elapsed * 1000, 2),
            "overhead_pct": round(overhead * 100, 2),
        },
    )

    # Wall-clock assertions are inherently flaky on shared CI runners, so
    # there the graph-equality check above stands in; the timing gate runs
    # locally and under BENCH_STRICT=1.
    if not os.environ.get("CI") or os.environ.get("BENCH_STRICT"):
        assert overhead < MAX_OVERHEAD, (
            f"session façade adds {overhead:.1%} over the direct runner "
            f"(limit {MAX_OVERHEAD:.0%})"
        )


@pytest.mark.parametrize("engine", ["static"])
def test_session_extract_benchmark(benchmark, engine):
    sources, catalog = _warehouse()
    config = SessionConfig(engine=engine)

    def extract():
        return LineageSession(sources, catalog=catalog, config=config).extract()

    result = benchmark(extract)
    assert not result.report.unresolved
