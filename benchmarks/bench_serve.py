"""SERVE — the lineage daemon: dedupe throughput and lock-free read latency.

Three serving claims, measured over real loopback sockets against the
in-process daemon (:class:`repro.server.LineageApp`):

* **hash dedupe pays** — streaming a duplicate-heavy workload through
  ``POST /extract`` (every statement already known to the daemon) must
  sustain at least **5x** the statement throughput of a unique-statement
  workload, because duplicates are answered from the content-hash index
  without ever reaching the parser;
* **readers never block on ingest** — while the ingest loop is
  extracting a fresh corpus, concurrent ``GET /impact`` reads against
  the published snapshot must keep p99 latency under **50 ms** at the
  400-view tier (reads are served from an immutable frozen graph; the
  batch runs on a worker thread);
* **scale** — a 10k-statement corpus streamed through the daemon in
  chunks ingests end to end (skipped under ``BENCH_SERVE_QUICK=1``).

Wall-clock gates only fire off-CI (or with ``BENCH_STRICT=1``), matching
the other benchmarks.  Results land in ``benchmarks/results/serve.*``
and the committed trajectory file ``BENCH_serve.json``.
"""

import asyncio
import json
import os
import time

from repro.datasets import workload
from repro.server import LineageApp

from _report import emit, emit_json, emit_root_json, table

QUICK = bool(os.environ.get("BENCH_SERVE_QUICK"))
GATES_ON = not os.environ.get("CI") or os.environ.get("BENCH_STRICT")

VIEW_TIER = 80 if QUICK else 400
SCALE_TIER = 1000 if QUICK else 10_000
SEED = 430
READ_CLIENTS = 4
READS_PER_CLIENT = 50 if QUICK else 200
INGEST_CHUNK = 50


def _warehouse(num_views, seed=SEED):
    return workload.generate_warehouse(
        num_base_tables=max(4, num_views // 12), num_views=num_views, seed=seed
    )


def _percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


# ----------------------------------------------------------------------
# a minimal keep-alive benchmark client
# ----------------------------------------------------------------------
class _Client:
    def __init__(self, host, port):
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(self.host, self.port)

    async def close(self):
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_response(self):
        head = await self.reader.readuntil(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length"):
                length = int(line.split(b":")[1])
        body = await self.reader.readexactly(length) if length else b""
        status = int(head.split(b" ", 2)[1])
        return status, body

    async def get(self, path):
        self.writer.write(f"GET {path} HTTP/1.1\r\nHost: b\r\n\r\n".encode())
        await self.writer.drain()
        return await self._read_response()

    async def post_extract(self, statements):
        body = json.dumps({"statements": statements}).encode()
        self.writer.write(
            b"POST /extract HTTP/1.1\r\nHost: b\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        await self.writer.drain()
        status, payload = await self._read_response()
        assert status == 200, payload[:200]
        return json.loads(payload)


def _chunks(mapping, size):
    names = list(mapping)
    return [
        {name: mapping[name] for name in names[index:index + size]}
        for index in range(0, len(names), size)
    ]


async def _ingest(client, statements, chunk=INGEST_CHUNK):
    started = time.perf_counter()
    for piece in _chunks(statements, chunk):
        await client.post_extract(piece)
    return time.perf_counter() - started


async def _read_loop(host, port, paths, latencies):
    client = _Client(host, port)
    await client.connect()
    try:
        for path in paths:
            started = time.perf_counter()
            status, _ = await client.get(path)
            latencies.append(time.perf_counter() - started)
            assert status == 200
    finally:
        await client.close()


# ----------------------------------------------------------------------
# the benchmark
# ----------------------------------------------------------------------
async def _bench_view_tier(tmp_dir):
    warehouse = _warehouse(VIEW_TIER)
    app = LineageApp(
        catalog=warehouse.catalog(),
        cache_dir=os.path.join(tmp_dir, "cache"),
        batch_window=0.002,
    )
    host, port = await app.start(port=0)
    metrics = {"tier": VIEW_TIER}
    try:
        client = _Client(host, port)
        await client.connect()

        # --- phase 1: cold ingest -------------------------------------
        elapsed = await _ingest(client, warehouse.views)
        metrics["ingest_seconds"] = round(elapsed, 4)
        metrics["ingest_statements_per_s"] = round(len(warehouse.views) / elapsed, 1)

        # --- phase 2: sustained snapshot reads ------------------------
        impact_paths = [
            f"/impact?column={t}.{columns[0]}"
            for t, columns in warehouse.base_tables.items()
        ]
        paths = [
            impact_paths[i % len(impact_paths)] for i in range(READS_PER_CLIENT)
        ]
        latencies = []
        started = time.perf_counter()
        await asyncio.gather(
            *(_read_loop(host, port, paths, latencies) for _ in range(READ_CLIENTS))
        )
        read_elapsed = time.perf_counter() - started
        metrics["read_requests"] = len(latencies)
        metrics["read_req_per_s"] = round(len(latencies) / read_elapsed, 1)
        metrics["read_p50_ms"] = round(_percentile(latencies, 0.50) * 1000, 3)
        metrics["read_p99_ms"] = round(_percentile(latencies, 0.99) * 1000, 3)

        # --- phase 3: reads while a fresh corpus ingests --------------
        second = _warehouse(VIEW_TIER, seed=SEED + 1)
        renamed = {
            f"b_{name}": sql.replace(name, f"b_{name}", 1)
            for name, sql in second.views.items()
        }
        busy_latencies = []
        ingest_task = asyncio.ensure_future(_ingest(client, renamed))
        while not ingest_task.done():
            await _read_loop(
                host, port, paths[:10], busy_latencies
            )
        await ingest_task
        metrics["busy_read_requests"] = len(busy_latencies)
        metrics["busy_read_p50_ms"] = round(
            _percentile(busy_latencies, 0.50) * 1000, 3
        )
        metrics["busy_read_p99_ms"] = round(
            _percentile(busy_latencies, 0.99) * 1000, 3
        )

        # --- phase 4: duplicate-heavy vs unique extract throughput ----
        dup_started = time.perf_counter()
        for piece in _chunks(warehouse.views, INGEST_CHUNK):
            await client.post_extract(piece)
        dup_elapsed = time.perf_counter() - dup_started
        unique = _warehouse(VIEW_TIER, seed=SEED + 2)
        fresh = {
            f"c_{name}": sql.replace(name, f"c_{name}", 1)
            for name, sql in unique.views.items()
        }
        unique_elapsed = await _ingest(client, fresh)
        dup_rate = len(warehouse.views) / dup_elapsed
        unique_rate = len(fresh) / unique_elapsed
        metrics["dup_statements_per_s"] = round(dup_rate, 1)
        metrics["unique_statements_per_s"] = round(unique_rate, 1)
        metrics["dedupe_speedup"] = round(dup_rate / unique_rate, 2)

        # --- phase 5: warm-hit ratio from /stats ----------------------
        status, body = await client.get("/stats")
        assert status == 200
        stats = json.loads(body)
        ingest = stats["ingest"]
        skipped = ingest["duplicate"] + ingest["coalesced"]
        metrics["warm_hit_ratio"] = round(skipped / ingest["statements"], 4)
        metrics["snapshot_version"] = stats["snapshot"]["version"]
        metrics["store_entries"] = stats["store"]["entries"]

        await client.close()
    finally:
        await app.stop()
    return metrics


async def _bench_scale_tier(tmp_dir):
    warehouse = _warehouse(SCALE_TIER)
    app = LineageApp(
        cache_dir=os.path.join(tmp_dir, "scale-cache"),
        catalog=warehouse.catalog(),
        batch_window=0.002,
    )
    host, port = await app.start(port=0)
    try:
        client = _Client(host, port)
        await client.connect()
        elapsed = await _ingest(client, warehouse.views, chunk=500)
        status, body = await client.get("/health")
        assert status == 200
        health = json.loads(body)
        await client.close()
        return {
            "tier": SCALE_TIER,
            "ingest_seconds": round(elapsed, 2),
            "ingest_statements_per_s": round(len(warehouse.views) / elapsed, 1),
            "relations": health["relations"],
        }
    finally:
        await app.stop()


def test_serving_benchmark(tmp_path):
    view_metrics = asyncio.run(_bench_view_tier(str(tmp_path)))
    scale_metrics = (
        {"tier": SCALE_TIER, "skipped": "BENCH_SERVE_QUICK"}
        if QUICK
        else asyncio.run(_bench_scale_tier(str(tmp_path)))
    )

    payload = {
        "view_tier": view_metrics,
        "scale_tier": scale_metrics,
        "quick": QUICK,
        "gates": {
            "dedupe_speedup_min": 5.0,
            "busy_read_p99_ms_max": 50.0,
        },
        # pinned on first emit (emit_root_json keeps the existing value):
        # the trajectory file records where the daemon started
        "baseline": dict(view_metrics),
    }
    emit_json("serve", payload)
    emit_root_json("serve", payload)

    rows = [[key, value] for key, value in sorted(view_metrics.items())]
    emit(
        "serve",
        f"Serving daemon @ {VIEW_TIER} views "
        f"({'quick' if QUICK else 'full'} scale)",
        table(["metric", "value"], rows)
        + [
            "",
            f"scale tier: {scale_metrics}",
        ],
    )

    # correctness-side assertions always run: the dedupe path must have
    # actually engaged and every phase must have produced samples
    assert view_metrics["warm_hit_ratio"] > 0.2
    assert view_metrics["busy_read_requests"] > 0
    assert view_metrics["snapshot_version"] > 2

    if GATES_ON:
        assert view_metrics["dedupe_speedup"] >= 5.0, (
            "duplicate-heavy /extract throughput must be at least 5x the "
            f"unique-statement workload, got {view_metrics['dedupe_speedup']}x"
        )
        assert view_metrics["busy_read_p99_ms"] < 50.0, (
            "p99 /impact latency during active ingest must stay under 50 ms, "
            f"got {view_metrics['busy_read_p99_ms']} ms"
        )
