"""FIG2 — LineageX vs SQLLineage-like / SQLGlot-like baselines on Example 1.

Figure 2 of the paper contrasts the correct lineage (yellow) with what
SQLLineage returns: four wrong columns for ``webact`` (solid red), a
``webact.* -> info.*`` wildcard entry, missing columns for ``info`` (dashed
red) and no ``webact -> info`` column edges at all.  This benchmark
regenerates that comparison quantitatively: per-tool column precision/recall
on the affected views and edge precision/recall/F1 against the hand-written
ground truth.
"""

import pytest

from repro.analysis.metrics import column_metrics, edge_metrics
from repro.baselines import SingleFileBaseline, SQLLineageBaseline
from repro.core.runner import lineagex
from repro.datasets import example1

from _report import emit, table


def _lineagex_graph():
    return lineagex(example1.QUERY_LOG).graph


def _sqllineage_graph():
    return SQLLineageBaseline().run(example1.QUERY_LOG)


def _sqlglot_graph():
    return SingleFileBaseline().run(example1.QUERY_LOG)


TOOLS = [
    ("LineageX (this work)", _lineagex_graph),
    ("SQLLineage-like baseline", _sqllineage_graph),
    ("SQLGlot-like baseline", _sqlglot_graph),
]


@pytest.mark.parametrize("tool_name,builder", TOOLS, ids=[name for name, _ in TOOLS])
def test_fig2_tool_extraction(benchmark, tool_name, builder):
    graph = benchmark(builder)
    assert "webact" in graph


def test_fig2_accuracy_report(benchmark):
    truth = example1.ground_truth()
    graphs = {name: builder() for name, builder in TOOLS}
    benchmark(lambda: edge_metrics(graphs["LineageX (this work)"], truth))

    rows = []
    for name, graph in graphs.items():
        webact_cols = len(graph["webact"].output_columns) if "webact" in graph else 0
        info_cols = len(graph["info"].output_columns) if "info" in graph else 0
        col_report = column_metrics(graph, truth)
        edge_report = edge_metrics(graph, truth)
        webact_info_edges = sum(
            1
            for edge in graph.edges()
            if edge.source.table == "webact" and edge.target.table == "info"
            and edge.source.column != "*"
        )
        rows.append(
            (
                name,
                webact_cols,
                info_cols,
                webact_info_edges,
                f"{col_report.precision:.2f}",
                f"{col_report.recall:.2f}",
                f"{edge_report.precision:.2f}",
                f"{edge_report.recall:.2f}",
                f"{edge_report.f1:.2f}",
            )
        )
    lines = table(
        [
            "tool",
            "webact cols (truth: 4)",
            "info cols (truth: 7)",
            "webact->info edges",
            "col P",
            "col R",
            "edge P",
            "edge R",
            "edge F1",
        ],
        rows,
    )
    lines.append("")
    lines.append("Paper claim: SQLLineage adds 4 wrong webact columns, returns webact.* -> info.*,")
    lines.append("misses the webact -> info column edges; LineageX recovers all of them.")
    emit("fig2_comparison", "Figure 2 — column lineage accuracy on Example 1", lines)

    lineagex_row = rows[0]
    sqllineage_row = rows[1]
    assert lineagex_row[1] == 4 and lineagex_row[2] == 7
    assert float(lineagex_row[7]) == 1.0
    assert sqllineage_row[1] == 8            # four extra columns
    assert sqllineage_row[3] == 0            # no real webact -> info edges
    assert float(sqllineage_row[6]) < 1.0 or float(sqllineage_row[7]) < 1.0
