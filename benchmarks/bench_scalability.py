"""SCALE — runtime as a function of warehouse size ("lightweight" claim).

The paper positions LineageX as a lightweight library (no query execution,
no DBMS).  This benchmark sweeps generated warehouses from 10 to 400 views
(seeded, deterministic) and reports end-to-end extraction time, per-view
time, and graph size, demonstrating roughly linear growth.
"""

import time

import pytest

from repro.core.runner import lineagex
from repro.datasets import workload

from _report import emit, table

SWEEP = workload.sweep_configurations()


@pytest.mark.parametrize(
    "num_views,num_base_tables", SWEEP, ids=[f"{v}-views" for v, _ in SWEEP]
)
def test_scale_extraction(benchmark, num_views, num_base_tables):
    warehouse = workload.generate_warehouse(
        num_base_tables=num_base_tables, num_views=num_views, seed=97
    )
    script = warehouse.shuffled_script()
    catalog = warehouse.catalog()
    result = benchmark(lineagex, script, catalog)
    assert len(result.graph.views) == num_views
    assert not result.report.unresolved


def test_scale_report(benchmark):
    rows = []
    timings = []
    for num_views, num_base_tables in SWEEP:
        warehouse = workload.generate_warehouse(
            num_base_tables=num_base_tables, num_views=num_views, seed=97
        )
        script = warehouse.shuffled_script()
        catalog = warehouse.catalog()
        started = time.perf_counter()
        result = lineagex(script, catalog=catalog)
        elapsed = time.perf_counter() - started
        timings.append((num_views, elapsed))
        stats = result.stats()
        rows.append(
            (
                num_views,
                stats["num_view_columns"],
                stats["num_column_edges"],
                stats["num_deferrals"],
                f"{elapsed * 1000:.1f}",
                f"{elapsed * 1000 / num_views:.2f}",
            )
        )
    benchmark(
        lambda: lineagex(
            workload.generate_warehouse(num_views=25, seed=97).script,
        )
    )
    lines = table(
        [
            "#views",
            "#view columns",
            "#column edges",
            "#deferrals",
            "total time (ms)",
            "time per view (ms)",
        ],
        rows,
    )
    lines.append("")
    lines.append("Growth is roughly linear in the number of view definitions.")
    emit("scalability", "Scalability — extraction time vs warehouse size", lines)

    # roughly-linear check: per-view time at 400 views is within 10x of 10 views
    small = timings[0][1] / timings[0][0]
    large = timings[-1][1] / timings[-1][0]
    assert large < small * 10
