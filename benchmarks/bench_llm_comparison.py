"""CMP-LLM — LineageX vs an LLM assistant for impact analysis (Section IV).

The paper reports that GPT-4o, asked the Step 4 question, "is able to
correctly identify all contributing columns impacted by changes to page ...
but it is not able to reveal the columns that are referenced (not directly
contributing to) in the SQL (such as the webact.wcid in the JOIN
condition)".

Calling a hosted LLM is not possible offline, so the comparison uses the
deterministic simulated assistant (``repro.baselines.llm_sim``) that has
exactly that capability profile; the benchmark quantifies the recall gap and
shows how LineageX's reference edges close it.
"""

from repro.analysis.impact import impact_analysis
from repro.analysis.metrics import impact_metrics
from repro.baselines import SimulatedLLMAssistant
from repro.core.runner import lineagex
from repro.datasets import example1

from _report import emit, table


def _lineagex_impact():
    graph = lineagex(example1.QUERY_LOG).graph
    return {str(c) for c in impact_analysis(graph, "web.page").all_columns}


def _llm_impact():
    assistant = SimulatedLLMAssistant(example1.QUERY_LOG)
    return {str(c) for c in assistant.impacted_columns("web.page")}


def test_llm_assistant_impact(benchmark):
    answer = benchmark(_llm_impact)
    assert answer == example1.CONTRIBUTED_IMPACT_OF_WEB_PAGE


def test_lineagex_impact(benchmark):
    answer = benchmark(_lineagex_impact)
    assert answer == example1.IMPACT_OF_WEB_PAGE


def test_llm_comparison_report(benchmark):
    truth_all = example1.IMPACT_OF_WEB_PAGE
    truth_contributing = example1.CONTRIBUTED_IMPACT_OF_WEB_PAGE
    truth_referenced_only = truth_all - truth_contributing

    lineagex_answer = _lineagex_impact()
    llm_answer = benchmark(_llm_impact)

    def row(name, answer):
        overall = impact_metrics(answer, truth_all)
        contributing = impact_metrics(answer & truth_contributing, truth_contributing)
        referenced = impact_metrics(answer & truth_referenced_only, truth_referenced_only)
        return (
            name,
            len(answer),
            f"{contributing.recall:.2f}",
            f"{referenced.recall:.2f}",
            f"{overall.recall:.2f}",
            f"{overall.precision:.2f}",
        )

    rows = [
        row("LineageX (this work)", lineagex_answer),
        row("LLM assistant (simulated GPT-4o)", llm_answer),
    ]
    lines = table(
        [
            "method",
            "#columns reported",
            "recall (contributing)",
            "recall (referenced-only)",
            "recall (all impacted)",
            "precision",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        "Paper claim: the LLM finds the wpage chain (contributing columns) but misses"
    )
    lines.append(
        "referenced-only columns like webact.wcid; LineageX reports both kinds."
    )
    emit("llm_comparison", "Section IV — impact analysis: LineageX vs LLM", lines)

    assert rows[0][2] == "1.00" and rows[0][3] == "1.00"
    assert rows[1][2] == "1.00" and rows[1][3] == "0.00"
