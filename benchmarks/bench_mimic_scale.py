"""MIMIC — the Section IV demonstration dataset at scale.

The paper demonstrates LineageX on the MIMIC schema: "more than 300 columns
in 26 base tables and 700 columns in 70 view definitions".  The real MIMIC
data is access-controlled, so this benchmark runs the synthetic MIMIC-like
warehouse (same table names, 26 tables, 70 views; see
``repro.datasets.mimic``) end to end and reports the achieved scale,
coverage (every view resolved, no wildcard columns), and runtime.
"""

from repro.analysis.impact import impact_analysis
from repro.core.runner import lineagex
from repro.datasets import mimic

from _report import emit, table


def test_mimic_full_extraction(benchmark, mimic_script):
    result = benchmark(lineagex, mimic_script)
    stats = result.stats()

    counts = mimic.expected_counts()
    rows = [
        ("base tables", 26, stats["num_base_tables"]),
        ("base-table columns", ">300 (paper)", stats["num_base_columns"]),
        ("views", 70, stats["num_views"]),
        ("view columns", "~700 (paper)", stats["num_view_columns"]),
        ("column-level edges", "-", stats["num_column_edges"]),
        ("queries resolved", counts["views"], counts["views"] - stats["num_unresolved"]),
        ("stack deferrals", "-", stats["num_deferrals"]),
    ]
    lines = table(["quantity", "paper / target", "this reproduction"], rows)
    lines.append("")
    lines.append(
        "Coverage: every one of the 70 view definitions is resolved to concrete "
        "column lineage (no unresolved queries, no wildcard '*' outputs)."
    )
    emit("mimic_scale", "Section IV — MIMIC-scale extraction", lines)

    assert stats["num_views"] == 70
    assert stats["num_base_tables"] == 26
    assert stats["num_unresolved"] == 0
    assert stats["num_view_columns"] > 500
    wildcard_columns = [
        view.name for view in result.graph.views if "*" in view.output_columns
    ]
    assert not wildcard_columns


def test_mimic_impact_analysis_on_large_graph(benchmark, mimic_result):
    result = benchmark(impact_analysis, mimic_result.graph, "admissions.hadm_id")
    # hadm_id feeds the admissions staging view, the patient/ICU cohort views
    # and their downstream reports — a double-digit table closure
    assert len(result.impacted_tables()) >= 15


def test_mimic_json_serialisation(benchmark, mimic_result):
    text = benchmark(mimic_result.to_json)
    assert len(text) > 10_000


def test_mimic_html_rendering(benchmark, mimic_result):
    html = benchmark(mimic_result.to_html)
    assert "research_cohort" in html
