"""DBCONN — the database-connection (EXPLAIN) mode of Section III.

"When the database connection is available ... LineageX uses PostgreSQL's
EXPLAIN command to obtain the physical query plan instead of the AST from
the parser ... an error may occur due to missing dependencies when running
the EXPLAIN command.  This requires the stack mechanism and performing an
additional step to create the views first."

This benchmark runs the simulated-EXPLAIN mode over Example 1, the retail
warehouse and the MIMIC warehouse, checks it produces exactly the same
lineage as the static mode (given the same base-table metadata), reports the
view-creation deferrals it performed, and compares the runtimes of the two
modes.
"""

import time

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.plan_extractor import lineagex_with_connection
from repro.core.runner import lineagex
from repro.datasets import example1, mimic, retail

from _report import emit, table

WORKLOADS = [
    (
        "example1",
        lambda: example1.QUERY_LOG,
        example1.base_table_catalog,
    ),
    (
        "retail",
        lambda: retail.VIEW_SCRIPT,
        retail.base_table_catalog,
    ),
    (
        "mimic",
        lambda: mimic.view_script(shuffle_seed=11),
        mimic.base_table_catalog,
    ),
]


@pytest.mark.parametrize(
    "name,script_builder,catalog_builder", WORKLOADS, ids=[n for n, _, _ in WORKLOADS]
)
def test_dbconn_extraction(benchmark, name, script_builder, catalog_builder):
    script = script_builder()
    result = benchmark(lineagex_with_connection, script, catalog_builder())
    assert not result.report.unresolved


def test_dbconn_agreement_report(benchmark):
    rows = []
    for name, script_builder, catalog_builder in WORKLOADS:
        script = script_builder()

        started = time.perf_counter()
        static_result = lineagex(script, catalog=catalog_builder())
        static_time = time.perf_counter() - started

        started = time.perf_counter()
        connected_result = lineagex_with_connection(script, catalog=catalog_builder())
        connected_time = time.perf_counter() - started

        diff = diff_graphs(connected_result.graph, static_result.graph)
        rows.append(
            (
                name,
                len(static_result.graph.views),
                connected_result.report.deferral_count,
                "identical" if diff.is_identical else "DIFFERS",
                f"{static_time * 1000:.1f}",
                f"{connected_time * 1000:.1f}",
            )
        )
    benchmark(lambda: lineagex_with_connection(example1.QUERY_LOG, example1.base_table_catalog()))
    lines = table(
        [
            "workload",
            "#views",
            "view-creation deferrals",
            "lineage vs static mode",
            "static mode (ms)",
            "EXPLAIN mode (ms)",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        "With exact metadata from the (simulated) DBMS, the EXPLAIN-based extraction"
    )
    lines.append(
        "agrees with the static extraction on every workload; missing dependencies are"
    )
    lines.append("resolved by creating the views first (LIFO stack), as in the paper.")
    emit("dbconn_mode", "Section III — database-connection (EXPLAIN) mode", lines)

    assert all(status == "identical" for _, _, _, status, _, _ in rows)
    assert rows[0][2] == 2  # Example 1 needs exactly two deferrals (webact, webinfo)
