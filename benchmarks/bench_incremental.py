"""INCR — incremental re-extraction vs full re-run (interactivity claim).

The paper positions LineageX as interactive: a user edits one query and the
UI refreshes.  With the dependency DAG the runner can re-extract only the
changed Query Dictionary entry plus its transitive dependents, splicing the
cached lineage for everything else.  This benchmark edits a single view in
generated warehouses of increasing size and reports full-run vs
single-change-update wall time; the update must touch only the dirty set
and be at least 5x faster than the full run at scale.
"""

import os
import time

import pytest

from repro.analysis.diff import diff_graphs
from repro.core.dag import DependencyDAG
from repro.core.preprocess import preprocess
from repro.core.runner import LineageXRunner
from repro.datasets import workload

from _report import emit, table

SWEEP = [50, 100, 200, 400]
SEED = 97


def _setup(num_views):
    """Build a warehouse, a baseline result, and a one-view change delta."""
    warehouse = workload.generate_warehouse(
        num_base_tables=max(3, num_views // 10), num_views=num_views, seed=SEED
    )
    sources = dict(warehouse.views)
    runner = LineageXRunner(catalog=warehouse.catalog())
    baseline = runner.run(sources)
    # edit a view from the first quarter of the pipeline (it has downstream
    # dependents) into a projection of a base table — a realistic "rewrote
    # one staging view" change
    target = f"view_{num_views // 4}"
    changes = {target: f"CREATE VIEW {target} AS SELECT b.id FROM base_0 b"}
    merged = dict(sources)
    merged.update(changes)
    return runner, baseline, changes, merged, target


def test_incremental_report():
    rows = []
    speedups = []
    for num_views in SWEEP:
        runner, baseline, changes, merged, target = _setup(num_views)

        started = time.perf_counter()
        full = runner.run(merged)
        full_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        incremental = runner.run_incremental(baseline, changes)
        incremental_elapsed = time.perf_counter() - started

        # correctness: the spliced graph equals the full re-run
        diff = diff_graphs(incremental.graph, full.graph)
        assert diff.is_identical, diff.summary()

        # the update re-extracts exactly the changed entry + DAG dependents
        dag = DependencyDAG.from_query_dictionary(preprocess(merged))
        expected_dirty = {target} | dag.transitive_dependents({target})
        assert set(incremental.report.order) == expected_dirty
        assert len(incremental.report.reused) == num_views - len(expected_dirty)

        speedup = full_elapsed / max(incremental_elapsed, 1e-9)
        speedups.append((num_views, speedup))
        rows.append(
            (
                num_views,
                len(expected_dirty),
                len(incremental.report.reused),
                f"{full_elapsed * 1000:.1f}",
                f"{incremental_elapsed * 1000:.1f}",
                f"{speedup:.1f}x",
            )
        )

    lines = table(
        [
            "#views",
            "#re-extracted",
            "#reused",
            "full run (ms)",
            "update (ms)",
            "speedup",
        ],
        rows,
    )
    lines.append("")
    lines.append(
        "A single-view edit re-extracts only the changed entry and its DAG "
        "dependents; everything else is spliced from the cached graph."
    )
    emit("incremental", "Incremental — single-change update vs full re-run", lines)

    # the headline claim: at the largest size the update is >= 5x faster.
    # Wall-clock assertions are inherently flaky on shared CI runners, so
    # there the structural checks above (exact dirty set, graph equality)
    # stand in; the timing gate runs locally and under BENCH_STRICT=1.
    if not os.environ.get("CI") or os.environ.get("BENCH_STRICT"):
        assert speedups[-1][1] >= 5.0, (
            f"incremental update only {speedups[-1][1]:.1f}x faster at "
            f"{speedups[-1][0]} views"
        )


@pytest.mark.parametrize("num_views", [200], ids=["200-views"])
def test_incremental_update_benchmark(benchmark, num_views):
    runner, baseline, changes, _, _ = _setup(num_views)
    result = benchmark(runner.run_incremental, baseline, changes)
    assert result.report.reused


@pytest.mark.parametrize("num_views", [200], ids=["200-views"])
def test_full_rerun_benchmark(benchmark, num_views):
    runner, _, _, merged, _ = _setup(num_views)
    result = benchmark(runner.run, merged)
    assert not result.report.unresolved
