"""FIG4 — Post-order AST traversal of Q3 (Figure 4).

Figure 4 shows the traversal order for Example 1's Q3 (the ``webinfo``
view): (1) scan of ``customers``, (2) scan of ``web``, (3) the JOIN node,
(4) the WHERE (sigma) node, (5) the final SELECT (pi) projection, each with
the rule it triggers.  This benchmark re-runs the traced extraction of Q3,
reports the recorded step sequence, and checks that it matches the figure.
"""

from repro.core.extractor import (
    RULE_FROM_TABLE,
    RULE_OTHER,
    RULE_SELECT,
    LineageExtractor,
)
from repro.core.preprocess import preprocess
from repro.datasets import example1

from _report import emit, table


def _trace_q3():
    entry = list(preprocess(example1.Q3))[0]
    extractor = LineageExtractor(collect_trace=True)
    return extractor.extract(entry.identifier, entry.query)


def test_fig4_traversal_trace(benchmark):
    lineage, trace = benchmark(_trace_q3)

    rows = [(step.order, step.rule, step.node, step.detail) for step in trace.steps]
    lines = table(["step", "rule (Table I)", "node", "detail"], rows)
    lines.append("")
    lines.append("Resulting lineage for webinfo:")
    for column in lineage.output_columns:
        sources = ", ".join(sorted(str(s) for s in lineage.contributions[column]))
        lines.append(f"  {column} <- {sources}")
    lines.append(
        "  referenced: "
        + ", ".join(sorted(str(s) for s in lineage.referenced))
    )
    emit("fig4_traversal", "Figure 4 — traversal of Q3 (CREATE VIEW webinfo)", lines)

    rules_in_order = [step.rule for step in trace.steps]
    # (1)-(2): the two base-table scans fire the FROM rule first.
    assert rules_in_order[0] == RULE_FROM_TABLE
    assert rules_in_order[1] == RULE_FROM_TABLE
    # (3)-(4): the JOIN condition and the WHERE filter fire Other Keywords.
    assert rules_in_order[2] == RULE_OTHER
    assert RULE_OTHER in rules_in_order[2:4]
    # (5): the projection (pi) fires the SELECT rule once per output column.
    assert rules_in_order.count(RULE_SELECT) == 4
    assert rules_in_order[-1] == RULE_SELECT or RULE_SELECT in rules_in_order[-5:]
    # and the lineage matches the example walked through in Section III:
    # "wcid has C_con of customers.cid".
    assert {str(s) for s in lineage.contributions["wcid"]} == {"customers.cid"}
    assert {str(s) for s in lineage.referenced} >= {"customers.cid", "web.cid", "web.date"}


def test_fig4_traversal_scales_linearly_with_query_size(benchmark):
    """Sanity check: tracing is cheap even for a much larger query."""
    big_query = (
        "SELECT "
        + ", ".join(f"t.col_{i}" for i in range(60))
        + " FROM big_table t WHERE "
        + " AND ".join(f"t.col_{i} > {i}" for i in range(30))
    )
    entry = list(preprocess(big_query))[0]
    extractor = LineageExtractor(collect_trace=True)
    lineage, trace = benchmark(extractor.extract, entry.identifier, entry.query)
    assert len(lineage.output_columns) == 60
    assert len(trace.steps) >= 60
