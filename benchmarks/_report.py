"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (a figure, a table,
or a demonstration claim) and reports the corresponding rows/series.  The
report is printed to stdout (visible with ``pytest -s`` or on failure) and
also written to ``benchmarks/results/<name>.txt`` so the numbers survive the
run and can be pasted into EXPERIMENTS.md.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_json(name, payload):
    """Persist machine-readable results as ``benchmarks/results/<name>.json``.

    CI uploads ``benchmarks/results/*.json`` as workflow artifacts, so the
    numbers of every run are downloadable without scraping logs.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def emit(name, title, lines):
    """Print a report block and persist it under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    block = [f"=== {title} ==="]
    block.extend(str(line) for line in lines)
    text = "\n".join(block)
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text


def table(headers, rows):
    """Format a fixed-width text table."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(row):
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines
