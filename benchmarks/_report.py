"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts (a figure, a table,
or a demonstration claim) and reports the corresponding rows/series.  The
report is printed to stdout (visible with ``pytest -s`` or on failure) and
also written to ``benchmarks/results/<name>.txt`` so the numbers survive the
run and can be pasted into EXPERIMENTS.md.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: the repository root, where the committed ``BENCH_*.json`` trajectory lives.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def root_bench_path(name):
    """Path of the committed trajectory file ``BENCH_<name>.json``."""
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def load_root_json(name):
    """The committed ``BENCH_<name>.json`` payload, or ``None`` if absent."""
    try:
        with open(root_bench_path(name), "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def emit_root_json(name, payload, keep=("baseline",)):
    """Write ``BENCH_<name>.json`` at the repo root (the perf trajectory).

    Unlike :func:`emit_json` these files are *committed*: they record the
    machine-readable performance trajectory across PRs.  Keys named in
    ``keep`` are preserved from the existing file (the pinned baseline a
    regression gate compares against); everything else is replaced by
    ``payload``.  The first emit — no existing file — seeds the kept keys
    from ``payload`` itself, so a fresh checkout records its own baseline.
    """
    existing = load_root_json(name) or {}
    merged = dict(payload)
    for key in keep:
        if key in existing:
            merged[key] = existing[key]
    path = root_bench_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def emit_json(name, payload):
    """Persist machine-readable results as ``benchmarks/results/<name>.json``.

    CI uploads ``benchmarks/results/*.json`` as workflow artifacts, so the
    numbers of every run are downloadable without scraping logs.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def emit(name, title, lines):
    """Print a report block and persist it under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    block = [f"=== {title} ==="]
    block.extend(str(line) for line in lines)
    text = "\n".join(block)
    print("\n" + text)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return text


def table(headers, rows):
    """Format a fixed-width text table."""
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(row):
        return "  ".join(str(cell).ljust(widths[index]) for index, cell in enumerate(row))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines
