"""COLD PATH — first-contact extraction speed and its regression gate.

PR 3 made *warm* sessions splice from the persistent store; this bench
tracks the other half of the story: the **cold path** every first-contact
corpus pays — tokenize, parse, canonical-print + content-hash, and
schema-resolved extraction, with no store and no parse cache.

Two artifacts:

* a stage-level report (``benchmarks/results/cold_path.*``) breaking one
  cold run into lex / parse / preprocess / extract;
* the committed trajectory file ``BENCH_cold_path.json`` at the repo root.
  Its ``baseline`` section is pinned to the pre-optimisation numbers (the
  state before the master-pattern lexer, slotted AST, fused print+hash and
  memoized resolution landed) and is *never* overwritten by re-runs; the
  ``current`` section is refreshed every run.

Gates (skipped on shared CI runners unless ``BENCH_STRICT=1``, like every
other wall-clock assertion in this suite):

* **speedup** — cold extraction at 400 views must be >= 2.5x faster than
  the pinned ``baseline``;
* **regression** — a fresh run must not be >20% slower than the committed
  ``current`` reference (the number recorded when the optimisation PR
  landed), so later PRs cannot quietly give the win back.

``BENCH_COLD_QUICK=1`` shrinks the sweep for the CI smoke step (artifact
upload only — no timing gates fire there).
"""

import gc
import os
import time

from repro.core.preprocess import preprocess
from repro.core.runner import LineageXRunner
from repro.core.scheduler import AutoInferenceScheduler
from repro.datasets import workload
from repro.sqlparser.lexer import tokenize
from repro.sqlparser.parser import parse

from _report import emit, emit_root_json, load_root_json, table

SEED = 97
QUICK = bool(os.environ.get("BENCH_COLD_QUICK"))
SWEEP = [50, 100] if QUICK else [50, 100, 200, 400]
# best-of-N; 7 repeats at full scale so one noisy co-tenant burst on a
# shared host does not poison the measured floor
REPEATS = 3 if QUICK else 7
#: the scale the acceptance and regression gates are evaluated at.
GATE_VIEWS = SWEEP[-1]
#: BENCH_COLD_EXTENDED=1 additionally measures the warehouse-DML workload
#: (MERGE / ON CONFLICT / QUALIFY / GROUPING SETS / unnest templates at
#: this probability).  The extended series is recorded alongside the
#: classic one in BENCH_cold_path.json; the pinned baseline/regression
#: gates keep comparing the classic corpus only, so enabling this never
#: disturbs the trajectory comparison.
EXTENDED = bool(os.environ.get("BENCH_COLD_EXTENDED"))
EXTENDED_PROBABILITY = 0.3


def _corpus(num_views, extended_probability=0.0):
    warehouse = workload.generate_warehouse(
        num_base_tables=max(3, num_views // 10),
        num_views=num_views,
        seed=SEED,
        extended_probability=extended_probability,
    )
    return dict(warehouse.views), warehouse.catalog()


def _best_ms(function, repeats=REPEATS):
    """Best-of-N wall clock in milliseconds (min is robust to noise).

    The collector is paused across the timed region (one collect first, so
    no run inherits another's garbage) — standard benchmarking hygiene;
    without it, whether a gen-2 collection lands inside a timing window
    depends on how much the host process (pytest vs a bare interpreter)
    has allocated before the bench even starts.  The committed baseline in
    ``BENCH_cold_path.json`` was recorded under this same protocol.
    """
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            function()
            best = min(best, time.perf_counter() - started)
    finally:
        gc.enable()
    return best * 1000.0


def measure_cold(num_views, repeats=REPEATS, extended_probability=0.0):
    """Stage timings of one fully cold run at ``num_views`` scale."""
    sources, catalog = _corpus(num_views, extended_probability)
    script = ";\n".join(sources.values()) + ";"

    lex_ms = _best_ms(lambda: tokenize(script), repeats)
    parse_ms = _best_ms(lambda: parse(script), repeats)
    preprocess_ms = _best_ms(lambda: preprocess(sources), repeats)

    dictionary = preprocess(sources)

    def extract_only():
        AutoInferenceScheduler(dictionary, catalog=catalog).run()

    extract_ms = _best_ms(extract_only, repeats)
    cold_ms = _best_ms(
        lambda: LineageXRunner(catalog=catalog).run(sources), repeats
    )
    return {
        "num_views": num_views,
        "lex_ms": round(lex_ms, 2),
        "parse_ms": round(parse_ms, 2),
        "preprocess_ms": round(preprocess_ms, 2),
        "extract_ms": round(extract_ms, 2),
        "cold_ms": round(cold_ms, 2),
    }


def _gates_active():
    """Wall-clock gates run locally and under BENCH_STRICT, never in quick mode.

    The committed baseline/reference numbers are absolute wall-clock values
    from the machine that recorded them; on different hardware set
    ``BENCH_NO_GATES=1`` to measure without asserting (or re-seed the
    trajectory by deleting ``BENCH_cold_path.json`` and re-running on the
    old and new code in turn).
    """
    if QUICK or os.environ.get("BENCH_NO_GATES"):
        return False
    return not os.environ.get("CI") or os.environ.get("BENCH_STRICT")


def test_cold_path_report():
    series = [measure_cold(num_views) for num_views in SWEEP]
    gate_row = series[-1]

    # quick mode shrinks the sweep below the committed gate scale, so the
    # baseline/reference numbers (measured at 400 views) are not comparable
    # to this run at all — no speedup math, no gates, no trajectory write
    committed = {} if QUICK else (load_root_json("cold_path") or {})
    baseline = committed.get("baseline")
    reference = committed.get("current")

    payload = {
        "config": {"seed": SEED, "repeats": REPEATS, "gate_views": GATE_VIEWS},
        "current": {"series": series, "cold_ms_at_gate": gate_row["cold_ms"]},
        # pinned on first emit, preserved by emit_root_json() ever after
        "baseline": {"series": series, "cold_ms_at_gate": gate_row["cold_ms"]},
    }
    if EXTENDED:
        # the richer warehouse-DML grammar, tracked but never gated: the
        # pinned baseline was measured over the classic corpus and stays
        # comparable only to the classic series above
        extended_series = [
            measure_cold(num_views, extended_probability=EXTENDED_PROBABILITY)
            for num_views in SWEEP
        ]
        payload["extended"] = {
            "extended_probability": EXTENDED_PROBABILITY,
            "series": extended_series,
            "cold_ms_at_gate": extended_series[-1]["cold_ms"],
        }
    if baseline is not None:
        speedup = baseline["cold_ms_at_gate"] / max(gate_row["cold_ms"], 1e-9)
        payload["speedup_vs_baseline_at_gate"] = round(speedup, 2)

    rows = [
        (
            row["num_views"],
            row["lex_ms"],
            row["parse_ms"],
            row["preprocess_ms"],
            row["extract_ms"],
            row["cold_ms"],
        )
        for row in series
    ]
    lines = table(
        ["#views", "lex (ms)", "parse (ms)", "preprocess (ms)", "extract (ms)", "cold run (ms)"],
        rows,
    )
    lines.append("")
    if baseline is not None:
        lines.append(
            f"baseline cold run at {GATE_VIEWS} views: "
            f"{baseline['cold_ms_at_gate']:.1f} ms -> now {gate_row['cold_ms']:.1f} ms "
            f"({payload['speedup_vs_baseline_at_gate']:.2f}x)"
        )
    emit("cold_path", "Cold-path extraction — stage breakdown", lines)

    if _gates_active() and baseline is not None:
        assert payload["speedup_vs_baseline_at_gate"] >= 2.5, (
            f"cold extraction at {GATE_VIEWS} views is only "
            f"{payload['speedup_vs_baseline_at_gate']:.2f}x faster than the "
            f"pre-optimisation baseline ({baseline['cold_ms_at_gate']:.1f} ms "
            f"-> {gate_row['cold_ms']:.1f} ms); the tentpole promise is >= 2.5x"
        )
    if _gates_active() and reference is not None:
        limit = reference["cold_ms_at_gate"] * 1.2
        assert gate_row["cold_ms"] <= limit, (
            f"cold extraction regressed: {gate_row['cold_ms']:.1f} ms at "
            f"{GATE_VIEWS} views vs committed {reference['cold_ms_at_gate']:.1f} ms "
            f"(>20% slower than the BENCH_cold_path.json reference)"
        )

    if not QUICK:
        # refresh the trajectory only after the gates pass — a failing
        # regression run must not rewrite the very reference it compares
        # against (that would let the next run "pass" by self-healing).
        # A classic-only run preserves any previously recorded extended
        # series rather than silently dropping it.
        keep = ("baseline",) if EXTENDED else ("baseline", "extended")
        emit_root_json("cold_path", payload, keep=keep)


def test_cold_path_output_unchanged_by_scale():
    """Sanity: the corpus the timings are taken over actually resolves."""
    sources, catalog = _corpus(SWEEP[0])
    result = LineageXRunner(catalog=catalog).run(sources)
    assert not result.report.unresolved
    assert len(result.graph.views) == SWEEP[0]


def test_extended_corpus_resolves():
    """Sanity: the warehouse-DML corpus (BENCH_COLD_EXTENDED) resolves too."""
    sources, catalog = _corpus(SWEEP[0], EXTENDED_PROBABILITY)
    result = LineageXRunner(catalog=catalog).run(sources)
    assert not result.report.unresolved
    assert len(result.graph.views) == SWEEP[0]
