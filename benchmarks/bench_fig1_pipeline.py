"""FIG1 — Lineage extraction from query logs without a database connection.

Figure 1 of the paper shows the headline workflow: a query log goes in, a
column-level lineage graph comes out, with no DBMS in the loop.  This
benchmark times the full pipeline on Example 1 and reports the graph that
Figure 1 (and the yellow portion of Figure 2) depicts.
"""

from repro.core.runner import lineagex
from repro.datasets import example1

from _report import emit, table


def test_fig1_end_to_end_extraction(benchmark):
    result = benchmark(lineagex, example1.QUERY_LOG)
    graph = result.graph

    rows = []
    for relation in sorted(graph, key=lambda entry: (entry.is_base_table, entry.name)):
        kind = "base table" if relation.is_base_table else "view"
        rows.append(
            (
                relation.name,
                kind,
                len(relation.output_columns),
                ", ".join(sorted(relation.source_tables)) or "-",
            )
        )
    stats = result.stats()
    lines = table(["relation", "kind", "#columns", "reads"], rows)
    lines.append("")
    lines.append(
        f"column edges: {stats['num_column_edges']} "
        f"(contribute {stats['num_contribute_edges']}, reference {stats['num_reference_edges']})"
    )
    lines.append(f"deferrals performed by the auto-inference stack: {stats['num_deferrals']}")
    emit("fig1_pipeline", "Figure 1 — lineage extraction from the Example 1 query log", lines)

    assert stats["num_views"] == 3
    assert stats["num_base_tables"] == 3
    assert stats["num_unresolved"] == 0
