"""Setup shim.

The environment used for this reproduction has no ``wheel`` package and no
network access, so PEP 517 editable installs (which build a wheel) fail.
Keeping a classic ``setup.py`` lets ``pip install -e . --no-build-isolation
--no-use-pep517`` (and plain ``python setup.py develop``) work offline.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
