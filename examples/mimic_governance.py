"""MIMIC-scale governance — tracking sensitive clinical columns.

Section I of the paper motivates column lineage with compliance: "identify
how sensitive data flows throughout the entire pipeline ... validating data
compliance with regulations, such as GDPR and HIPAA".  Section IV
demonstrates on the MIMIC clinical dataset (26 base tables, 70 views).

This example runs LineageX over the synthetic MIMIC-like warehouse and
produces a sensitive-data flow report: for each protected attribute
(date of birth, date of death, ethnicity, insurance, free-text notes), every
downstream view column it reaches — the starting point of a PHI audit.

Run with:  python examples/mimic_governance.py
"""

import time

import repro
from repro.analysis.impact import impact_analysis
from repro.datasets import mimic

#: Protected attributes a HIPAA/GDPR audit would start from.
SENSITIVE_COLUMNS = [
    "patients.dob",
    "patients.dod",
    "admissions.ethnicity",
    "admissions.insurance",
    "noteevents.text",
]


def main():
    script = mimic.full_script(shuffle_seed=11)
    started = time.perf_counter()
    result = repro.lineagex(script)
    elapsed = time.perf_counter() - started

    stats = result.stats()
    print(
        f"MIMIC-like warehouse: {stats['num_base_tables']} base tables "
        f"({stats['num_base_columns']} columns), {stats['num_views']} views "
        f"({stats['num_view_columns']} columns) extracted in {elapsed:.2f}s.\n"
    )

    print("Sensitive-data flow report")
    print("=" * 60)
    for column in SENSITIVE_COLUMNS:
        impact = impact_analysis(result.graph, column)
        print(f"\n{column}")
        if not impact.all_columns:
            print("   not used by any view")
            continue
        for table in impact.impacted_tables():
            reached = sorted(
                f"{c.column} [{impact.kind_of(c)}]"
                for c in impact.all_columns
                if c.table == table
            )
            print(f"   -> {table}: {', '.join(reached)}")

    # Summarise exposure: how many views touch each sensitive column at all.
    print("\nExposure summary")
    print("=" * 60)
    for column in SENSITIVE_COLUMNS:
        impact = impact_analysis(result.graph, column)
        print(f"   {column:<28s} reaches {len(impact.impacted_tables()):>3d} views, "
              f"{len(impact.all_columns):>4d} columns")


if __name__ == "__main__":
    main()
