"""Database-connection mode — extraction through simulated EXPLAIN plans.

Section III: when a DBMS is reachable, LineageX sends each query to
PostgreSQL's EXPLAIN to obtain exact column metadata instead of relying on
static inference; missing dependencies surface as ``undefined_table`` errors
and are resolved by creating the views first (the same stack mechanism).

This example uses the bundled DBMS substitute (an in-memory catalog plus a
logical planner) to run that workflow on Example 1, shows a plan, and checks
the result agrees with the purely static extraction.

Run with:  python examples/db_connection_mode.py
"""

import repro
from repro.analysis.diff import diff_graphs
from repro.catalog import ExplainSimulator
from repro.datasets import example1


def main():
    catalog = example1.base_table_catalog()

    # What the DBMS would answer for a single view definition.
    simulator = ExplainSimulator(catalog.copy())
    print("EXPLAIN for Q3 (CREATE VIEW webinfo ...):\n")
    print(simulator.explain_text(example1.Q3))
    print()

    # Full run in database-connection mode: EXPLAIN validates each query,
    # missing views are created first, lineage uses exact metadata.
    connected = repro.lineagex_with_connection(example1.QUERY_LOG, catalog=catalog)
    print("Processing order (connection mode):", " -> ".join(connected.report.order))
    print("View-creation deferrals:", connected.report.deferral_count)
    print("Views now registered in the catalog:",
          ", ".join(sorted(t.name for t in connected.catalog.views())))
    print()

    # The static mode (no DBMS at all) gives the same lineage when the base
    # table schemas are known.
    static = repro.lineagex(example1.QUERY_LOG, catalog=example1.base_table_catalog())
    diff = diff_graphs(connected.graph, static.graph)
    print("Agreement with static extraction:",
          "identical" if diff.is_identical else f"DIFFERS\n{diff.summary()}")


if __name__ == "__main__":
    main()
