"""Retail warehouse governance — storage refactoring and metric auditing.

The paper's introduction motivates column lineage with data-governance tasks:
impact analysis for schema changes, storage refactoring, and debugging data
quality.  This example runs LineageX over a realistic retail warehouse
(8 base tables, 13 staging/mart views) and answers three governance
questions:

1. *Refactoring*: which views break if we drop ``order_items.discount``?
2. *Metric audit*: which physical columns feed ``customer_ltv.lifetime_value``?
3. *Dead columns*: which base-table columns are never used by any view?

Run with:  python examples/retail_pipeline.py
"""

import repro
from repro.analysis.impact import impact_analysis, upstream_columns
from repro.datasets import retail


def main():
    result = repro.lineagex(retail.FULL_SCRIPT)
    graph = result.graph
    stats = result.stats()
    print(
        f"Extracted {stats['num_views']} views over {stats['num_base_tables']} base tables "
        f"({stats['num_column_edges']} column edges) — "
        f"{stats['num_deferrals']} auto-inference deferrals.\n"
    )

    # 1. Refactoring: what depends on order_items.discount?
    print("1. Impact of dropping order_items.discount")
    impact = impact_analysis(graph, "order_items.discount")
    for table in impact.impacted_tables():
        columns = sorted(c.column for c in impact.all_columns if c.table == table)
        print(f"   {table}: {', '.join(columns)}")
    print()

    # 2. Metric audit: where does lifetime_value come from?
    print("2. Physical columns feeding customer_ltv.lifetime_value")
    upstream = upstream_columns(graph, "customer_ltv.lifetime_value")
    base_tables = {entry.name for entry in graph.base_tables}
    physical = sorted(str(c) for c in upstream if c.table in base_tables)
    print("   " + ", ".join(physical))
    print()

    # 3. Dead columns: catalog columns never referenced by any view.
    print("3. Base-table columns never used by any view (candidates for cleanup)")
    catalog = retail.base_table_catalog()
    used = set()
    for view in graph.views:
        for sources in view.contributions.values():
            used |= {str(s) for s in sources}
        used |= {str(s) for s in view.referenced}
    for table in sorted(catalog.relation_names()):
        unused = [
            column
            for column in catalog.columns_of(table)
            if f"{table}.{column}" not in used
        ]
        if unused:
            print(f"   {table}: {', '.join(unused)}")

    # Export a Graphviz rendering for documentation.
    dot = result.to_dot()
    print(f"\nGraphviz DOT export: {len(dot.splitlines())} lines "
          "(pipe into `dot -Tsvg` to render).")


if __name__ == "__main__":
    main()
