"""dbt integration — lineage for a dbt-style project (paper footnote 1).

dbt models are bare SELECT statements stored one per file and wired together
with ``{{ ref() }}`` / ``{{ source() }}`` macros.  This example materialises
a small dbt project on disk, runs the dbt wrapper, and prints model-level
and column-level lineage.

Run with:  python examples/dbt_project.py
"""

import os
import tempfile

from repro import Catalog, lineagex_dbt
from repro.output.text_output import graph_to_text

#: models/<name>.sql contents for a small web-analytics project.
MODELS = {
    "stg_web_events": """
        {{ config(materialized='view') }}
        SELECT w.event_id, w.cid, w.event_time, w.page, w.session_id
        FROM {{ source('raw', 'web_events') }} w
        WHERE w.page IS NOT NULL
    """,
    "stg_customers": """
        SELECT c.cid, c.name, lower(c.email) AS email, c.country
        FROM {{ source('raw', 'customers') }} c
    """,
    "sessions": """
        SELECT e.session_id, e.cid, min(e.event_time) AS started_at,
               max(e.event_time) AS ended_at, count(*) AS page_views
        FROM {{ ref('stg_web_events') }} e
        GROUP BY e.session_id, e.cid
    """,
    "customer_engagement": """
        {# one row per customer with session statistics #}
        SELECT c.cid, c.name, c.country,
               count(s.session_id) AS session_count,
               sum(s.page_views) AS total_page_views
        FROM {{ ref('stg_customers') }} c
        LEFT JOIN {{ ref('sessions') }} s ON c.cid = s.cid
        GROUP BY c.cid, c.name, c.country
    """,
}


def write_project(root):
    models_dir = os.path.join(root, "models")
    os.makedirs(models_dir, exist_ok=True)
    for name, sql in MODELS.items():
        with open(os.path.join(models_dir, f"{name}.sql"), "w", encoding="utf-8") as handle:
            handle.write(sql.strip() + "\n")
    return root


def main():
    project_dir = write_project(tempfile.mkdtemp(prefix="lineagex_dbt_"))
    print(f"dbt project written to {project_dir}")

    # Source tables, as dbt's sources.yml would declare them.
    catalog = Catalog()
    catalog.create_table(
        "raw.web_events",
        ["event_id", "cid", "event_time", "page", "referrer", "session_id"],
    )
    catalog.create_table("raw.customers", ["cid", "name", "email", "country"])

    result = lineagex_dbt(project_dir, catalog=catalog)

    print("\nModel-level dependencies:")
    for source, target in sorted(result.graph.table_edges()):
        print(f"   {source} -> {target}")

    print("\nColumn-level lineage:")
    print(graph_to_text(result.graph))

    engagement = result.graph["customer_engagement"]
    print("\nWhere does customer_engagement.total_page_views come from?")
    for source in sorted(map(str, engagement.contributions["total_page_views"])):
        print(f"   {source}")


if __name__ == "__main__":
    main()
