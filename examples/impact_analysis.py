"""Impact analysis — the paper's Section IV walkthrough (Steps 2-4).

Scenario (Example 1): the online shop owner wants to edit the ``page``
column of the ``web`` table and asks which downstream columns are impacted.
This script replays the demonstration:

* Step 2: locate the ``web`` table;
* Step 3: explore its downstream tables hop by hop;
* Step 4: compute the full impact set of ``web.page`` with
  contribute/reference/both labels;
* and finally compare against the SQLLineage-like baseline and the simulated
  LLM assistant, as in the demo's "Comparison with existing methods".

Run with:  python examples/impact_analysis.py
"""

import repro
from repro.analysis.impact import explore, impact_analysis, impact_report
from repro.baselines import SimulatedLLMAssistant, SQLLineageBaseline
from repro.datasets import example1


def main():
    result = repro.lineagex(example1.QUERY_LOG)
    graph = result.graph

    # Step 2: locate the table of interest.
    print("Step 2 — locating table 'web':")
    print(f"  columns: {', '.join(graph.columns_of('web'))}")
    print()

    # Step 3: explore downstream tables (data flows left to right).
    print("Step 3 — exploring downstream tables of 'web':")
    _, first_hop = explore(graph, "web", hops=1)
    _, second_hop = explore(graph, "web", hops=2)
    print(f"  first explore:  {sorted(first_hop)}")
    print(f"  second explore: {sorted(second_hop - first_hop)} (no further downstreams)")
    print()

    # Step 4: solve the case.
    print("Step 4 — impact of editing web.page:")
    print(impact_report(graph, "web.page"))
    print()

    # Comparison with existing methods.
    print("Comparison with a SQLLineage-like tool:")
    baseline_graph = SQLLineageBaseline().run(example1.QUERY_LOG)
    baseline_impact = impact_analysis(baseline_graph, "web.page")
    print(f"  baseline finds {len(baseline_impact.all_columns)} impacted columns "
          f"(LineageX finds {len(impact_analysis(graph, 'web.page').all_columns)})")
    print(f"  baseline webact columns: {baseline_graph['webact'].output_columns}")
    print()

    print("Comparison with an LLM assistant (simulated GPT-4o):")
    assistant = SimulatedLLMAssistant(example1.QUERY_LOG)
    print(" ", assistant.answer("web.page"))
    missed = example1.IMPACT_OF_WEB_PAGE - {
        str(c) for c in assistant.impacted_columns("web.page")
    }
    print(f"  referenced-only columns the assistant misses: {sorted(missed)}")


if __name__ == "__main__":
    main()
