"""Quickstart — extract column lineage from a SQL query log in one call.

This reproduces Step 1 of the paper's demonstration: the Example 1 query log
(the ``customer.sql`` file of the paper) goes in, a JSON lineage document and
an interactive HTML lineage graph come out.

Run with:  python examples/quickstart.py
"""

import os
import tempfile

import repro
from repro.datasets import example1
from repro.output.text_output import graph_to_text


def main():
    # The query log: three CREATE VIEW statements, in the order the paper
    # lists them (the view `info` is defined before its dependencies —
    # LineageX's auto-inference stack handles that).
    sql = example1.QUERY_LOG
    print("Input query log:")
    print(sql)

    # One call, no database connection required.
    output_dir = os.path.join(tempfile.gettempdir(), "lineagex_quickstart")
    result = repro.lineagex(sql, output_dir=output_dir)

    print("Extracted lineage graph:")
    print(graph_to_text(result.graph))
    print()

    stats = result.stats()
    print(f"Relations: {stats['num_relations']} "
          f"({stats['num_views']} views, {stats['num_base_tables']} base tables)")
    print(f"Column-level edges: {stats['num_column_edges']}")
    print(f"Auto-inference deferrals: {stats['num_deferrals']}")
    print()
    print(f"JSON + HTML written to: {output_dir}")
    print("Open lineagex.html in a browser to explore the graph interactively.")


if __name__ == "__main__":
    main()
